"""X4 — ablation: chunk-level vs page-level dirty tracking (§IV).

The paper rejects page-granular pre-copy for application-initiated
checkpoints: 'handling a page protection fault can take 6-12 usec, and
3 sec for 1 GB of data. Specifically ... since most checkpoint data
structures fully change, using page level pre-copy will not be
beneficial.'  This ablation runs the same pre-copy pipeline under both
granularities and measures the protection-fault bill."""

import dataclasses

from conftest import once, run_cluster

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.config import PrecopyPolicy
from repro.metrics import Table
from repro.units import GB, GB_per_sec, PAGE_SIZE

ITERS = 6
NODES = 2
RANKS = 8


def app():
    return SyntheticModel(
        checkpoint_mb_per_rank=400,
        chunk_mb=50,
        iteration_compute_time=40.0,
    )


def config(granularity):
    base = precopy_config(40, 1e6)
    return dataclasses.replace(
        base,
        precopy=dataclasses.replace(base.precopy, granularity=granularity),
    )


def test_ablation_tracking_granularity(benchmark, report):
    def experiment():
        return {
            g: run_cluster(app(), config(g), iterations=ITERS, nodes=NODES,
                           ranks_per_node=RANKS,
                           nvm_write_bandwidth=GB_per_sec(1.0), with_remote=False)
            for g in ("chunk", "page")
        }

    results = once(benchmark, experiment)
    chunk_r, page_r = results["chunk"], results["page"]
    table = Table(
        "X4 — dirty-tracking granularity (fully-rewritten 400 MB/rank)",
        ["granularity", "exec time (s)", "fault time total (s)",
         "fault time / rank / iter (s)"],
    )
    n = ITERS * chunk_r.n_ranks
    for g, r in results.items():
        table.add_row(g, f"{r.total_time:.1f}", f"{r.fault_time_total:.2f}",
                      f"{r.fault_time_total / n:.4f}")
    # the paper's arithmetic: 9 us/fault * (1 GB / 4 KiB pages) ~ 2.4 s/GB
    per_gb = page_r.fault_time_total / (
        ITERS * page_r.n_ranks * 400 / 1024
    )
    table.add_note(
        f"page-level fault handling costs {per_gb:.1f} s per GB of rewritten "
        "data (paper: '6-12 usec [per fault], and 3 sec for 1 GB')"
    )
    table.add_note(
        f"chunk-level tracking pays {chunk_r.fault_time_total:.2f} s of faults "
        f"for the whole 48-checkpoint run — {page_r.fault_time_total / max(1e-9, chunk_r.fault_time_total):.0f}x less"
    )
    report(table.render())

    # the paper's band: ~1.5-3 s of fault handling per GB at 6-12 us
    assert 1.0 <= per_gb <= 3.5
    assert page_r.fault_time_total > 100 * chunk_r.fault_time_total
    assert page_r.total_time > chunk_r.total_time
