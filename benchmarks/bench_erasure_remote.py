"""X6 — extension: XOR-parity remote redundancy vs full replication.

The related work (Plank et al., erasure coding) offers the classic
answer to replication's space cost.  This bench quantifies the trade
on our substrate for parity groups of K = 2..6 ranks:

* remote space and per-round interconnect volume fall as 1/K;
* recovery must read K x the lost member's data (survivors + parity);
* exactness is verified on real payloads every round.
"""

import numpy as np
from conftest import once

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, XorParityGroup, make_standalone_context
from repro.metrics import Table
from repro.sim import Engine
from repro.units import MB, to_MB

CHUNK = MB(8)
GROUP_SIZES = [2, 3, 4, 6]


def build_group(k, engine, seed0=0):
    allocs, datas = [], []
    for i in range(k):
        ctx = make_standalone_context(name=f"g{k}m{i}", engine=engine)
        a = NVAllocator(f"g{k}m{i}", ctx.nvmm, ctx.dram)
        ch = a.nvalloc("grid", CHUNK)
        d = np.random.default_rng(seed0 + i).integers(0, 256, CHUNK).astype(np.uint8)
        ch.write(0, d)
        ck = LocalCheckpointer(ctx, a, PrecopyPolicy(mode="none"))
        p = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert p.ok
        allocs.append(a)
        datas.append(d)
    parity_ctx = make_standalone_context(name=f"g{k}parity", engine=engine)
    return allocs, datas, XorParityGroup(allocs, parity_ctx, group_id=f"g{k}")


def test_erasure_vs_replication(benchmark, report):
    def experiment():
        out = {}
        for k in GROUP_SIZES:
            engine = Engine()
            allocs, datas, group = build_group(k, engine, seed0=k * 10)
            group.update_parity()
            group.commit()
            # verify exactness for a middle member
            victim = k // 2
            rebuilt = group.reconstruct(allocs[victim], "grid")
            exact = bool(np.array_equal(rebuilt, datas[victim]))
            out[k] = {
                "round_bytes": group.parity_bytes_per_round,
                "replication_round_bytes": k * CHUNK,
                "recovery_bytes": group.recovery_read_bytes,
                "replication_recovery_bytes": CHUNK,
                "exact": exact,
            }
        return out

    results = once(benchmark, experiment)
    table = Table(
        "X6 — XOR parity groups vs full replication (8 MB chunk per member)",
        ["group K", "remote volume/round (MB)", "replication (MB)",
         "space ratio", "recovery reads (MB)", "exact rebuild"],
    )
    for k, r in results.items():
        table.add_row(
            k,
            f"{to_MB(r['round_bytes']):.0f}",
            f"{to_MB(r['replication_round_bytes']):.0f}",
            f"1/{k}",
            f"{to_MB(r['recovery_bytes']):.0f}",
            str(r["exact"]),
        )
    table.add_note("parity cuts remote space and interconnect volume K-fold; "
                   "recovery reads K x the lost data (survivors + parity), and a "
                   "second in-group failure before re-protection is unrecoverable "
                   "— replication (the paper's buddy scheme) trades space for "
                   "simpler, single-read recovery")
    report(table.render())

    for k, r in results.items():
        assert r["exact"]
        assert r["round_bytes"] * k == r["replication_round_bytes"]
        assert r["recovery_bytes"] == k * r["replication_recovery_bytes"]
