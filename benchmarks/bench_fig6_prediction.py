"""Figure 6 — the DCPCP prediction state machine, learned from the
LAMMPS workload.

Runs a rank through several compute intervals with the pre-copy engine
attached, then dumps the learned per-chunk modification counts and a
slice of the modification-order state machine (the paper shows 3 of
Lammps' 31 chunks)."""

from conftest import once

from repro.alloc import NVAllocator
from repro.apps import LammpsModel, RankBinding
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, make_standalone_context
from repro.metrics import Table


def test_fig6_prediction_state_machine(benchmark, report):
    def experiment():
        ctx = make_standalone_context(name="fig6")
        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True,
                            clock=lambda: ctx.engine.now)
        app = LammpsModel()
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
        app.allocate(binding, 0)
        ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="dcpcp"))
        ck.start_background()

        def driver():
            for it in range(5):
                yield from app.compute_iteration(binding, it)
                yield from ck.checkpoint(blocking=False)
            ck.stop_background()

        ctx.engine.process(driver())
        ctx.engine.run()
        return ck, alloc

    ck, alloc = once(benchmark, experiment)
    pred = ck.prediction
    assert pred is not None
    snapshot = pred.snapshot()
    names = {c.chunk_id: c.name for c in alloc.chunks()}

    # the three chunks the paper's figure shows: the hot result array
    # and two staged companions
    table = Table(
        "Figure 6 — learned chunk modification counts (LAMMPS, 5 intervals)",
        ["chunk", "pattern size (MB)", "expected mods/interval", "next (state machine)"],
    )
    shown = ["x_positions", "f_forces", "neigh_list", "aux_0", "aux_10"]
    for name in shown:
        chunk = alloc.chunk(name)
        nxt = pred.machine.predict_next(chunk.chunk_id)
        table.add_row(
            name,
            f"{chunk.nbytes / 2**20:.0f}",
            f"{snapshot.get(chunk.chunk_id, 0.0):.1f}",
            names.get(nxt, "-"),
        )
    table.add_note(f"prediction accuracy over the run: {pred.accuracy()*100:.0f}%")
    table.add_note("DOT rendering of the full machine available via "
                   "PredictionTable.machine.to_dot()")
    dot = pred.machine.to_dot(names)
    report(table.render(),
           "state machine (first lines of DOT):\n" + "\n".join(dot.splitlines()[:8]) + "\n...")

    # the hot chunk's count matches its 4 writes per interval
    hot = alloc.chunk("x_positions")
    assert snapshot[hot.chunk_id] == 4.0
    # post-learning prediction holds copies until the final write:
    # accuracy well above a no-prediction strawman
    assert pred.accuracy() >= 0.6
    assert len(pred.machine.transitions) > 10
