"""Table V — checkpoint helper core average CPU utilization.

Per-node helper utilization for 370/472/588 MB of checkpoint data per
core, pre-copy vs no-pre-copy.  Paper: pre-copy roughly doubles the
helper core's utilization (12.9->24.5%, 13.4->25.1%, 14.8->28.3%) but
stays small next to node-wide CPU (~2.5%)."""

import dataclasses

from conftest import once, run_cluster

from repro.apps import SyntheticModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Table
from repro.units import GB, GB_per_sec

DATA_PER_CORE_MB = [370, 472, 588]
PAPER = {370: (12.85, 24.48), 472: (13.40, 25.12), 588: (14.82, 28.31)}
ITERS = 9
NODES = 4
RANKS = 12


def app_for(mb):
    return SyntheticModel(
        checkpoint_mb_per_rank=mb,
        chunk_mb=40.0,
        iteration_compute_time=40.0,
        comm_mb_per_iteration=200.0,
    )


def test_table5_helper_core_utilization(benchmark, report):
    def experiment():
        out = {}
        for mb in DATA_PER_CORE_MB:
            # 588 MB/core x 12 ranks x (2 local + 2 hosted remote
            # versions) exceeds the default 24 GB NVM part; size the
            # node's NVM like the paper's 48 GB machines
            pre = run_cluster(app_for(mb), precopy_config(40, 120), iterations=ITERS,
                              nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(2.0),
                              nvm_capacity=GB(48))
            nop = run_cluster(app_for(mb), async_noprecopy_config(40, 120),
                              iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(2.0),
                              nvm_capacity=GB(48))
            out[mb] = (pre, nop)
        return out

    results = once(benchmark, experiment)
    table = Table(
        "Table V — checkpoint helper core average CPU utilization (%)",
        ["data/core (MB)", "no-pre-copy (paper)", "no-pre-copy (ours)",
         "pre-copy (paper)", "pre-copy (ours)", "ratio (ours)"],
    )
    ratios = []
    for mb, (pre, nop) in results.items():
        p_nop, p_pre = PAPER[mb]
        u_pre = pre.helper_utilization * 100
        u_nop = nop.helper_utilization * 100
        ratio = u_pre / u_nop if u_nop else float("inf")
        ratios.append(ratio)
        table.add_row(mb, f"{p_nop:.2f}", f"{u_nop:.2f}", f"{p_pre:.2f}",
                      f"{u_pre:.2f}", f"{ratio:.2f}")
    # node-wide share: one helper core of 12
    any_pre = results[DATA_PER_CORE_MB[0]][0]
    node_share = any_pre.helper_utilization / 12 * 100
    table.add_note(
        f"node-wide CPU share of the helper: ~{node_share:.1f}% "
        "(paper: ~2.5% of node-wide CPU)"
    )
    report(table.render())

    # shape: pre-copy roughly doubles helper utilization, and the
    # absolute values sit in Table V's band
    for r in ratios:
        assert 1.3 <= r <= 3.2
    for mb, (pre, nop) in results.items():
        assert 0.04 <= nop.helper_utilization <= 0.30
        assert 0.10 <= pre.helper_utilization <= 0.50
        assert pre.helper_utilization > nop.helper_utilization
