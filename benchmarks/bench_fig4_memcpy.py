"""Figure 4 — memcpy bandwidth for parallel processes.

Two reproductions:

1. the *model* curve used by the simulator (per-core effective DRAM
   copy bandwidth vs concurrent processes, calibrated to the paper's
   ~67% drop at 12 processes for 33 MB blocks);
2. a *live host measurement*: numpy block copies from concurrent
   threads (numpy releases the GIL, so threads genuinely contend on
   this machine's memory bus) — expect the same monotone decline.
"""

from conftest import once

from repro.config import BandwidthModelConfig, DRAM_CONFIG
from repro.memory import CoreContentionModel
from repro.memory.bandwidth import measure_host_parallel_memcpy
from repro.metrics import Series, Table, render_series
from repro.units import MB

PROCS = [1, 2, 4, 8, 12]
BLOCK = MB(33)


def test_fig4_model_curve(benchmark, report):
    def experiment():
        model = CoreContentionModel(DRAM_CONFIG, BandwidthModelConfig())
        return {n: BLOCK / model.copy_time(BLOCK, n) for n in PROCS}

    curve = once(benchmark, experiment)
    series = Series("per-core copy bandwidth (model)")
    table = Table(
        "Figure 4 — parallel memcpy, per-core bandwidth (33 MB blocks)",
        ["processes", "per-core MB/s", "normalized"],
    )
    base = curve[1]
    for n in PROCS:
        series.add(n, curve[n] / 2**20)
        table.add_row(n, f"{curve[n] / 2**20:.0f}", f"{curve[n] / base:.2f}")
    drop = 1 - curve[12] / curve[1]
    table.add_note(f"per-core drop 1 -> 12 processes: {drop*100:.0f}% (paper: ~67%)")
    report(render_series("Figure 4 (model)", [series], "processes", "MB/s"), table.render())
    assert 0.55 <= drop <= 0.80


def test_fig4_host_measurement(benchmark, report):
    def experiment():
        return measure_host_parallel_memcpy(
            proc_counts=(1, 2, 4), block_bytes=MB(16), repeats=2
        )

    host = once(benchmark, experiment)
    table = Table(
        "Figure 4 — live host rerun (numpy threads, 16 MB blocks)",
        ["threads", "per-thread MB/s"],
    )
    for n, bw in host.items():
        table.add_row(n, f"{bw / 2**20:.0f}")
    table.add_note("host measurement: absolute numbers depend on this machine; "
                   "the monotone per-thread decline is the reproduced shape")
    report(table.render())
    # weak shape assertion (host-dependent): more threads never help
    assert host[4] <= host[1] * 1.15
