"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` regenerates one table or figure of the paper.
Benchmarks run the experiment once (``benchmark.pedantic`` with one
round — the simulations are deterministic, re-running them only burns
time) and print the reproduced rows/series uncaptured so
``pytest benchmarks/ --benchmark-only`` output contains the artifacts.
"""

from __future__ import annotations

import pytest

from repro.apps.base import ApplicationModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.cluster import Cluster, ClusterRunner, RunResult
from repro.config import CheckpointConfig, ClusterConfig
from repro.units import GB_per_sec


@pytest.fixture
def report(capsys):
    """Print a reproduction artifact past pytest's capture."""

    def _report(*blocks):
        with capsys.disabled():
            print()
            for block in blocks:
                print(block)
                print()

    return _report


def run_cluster(
    app: ApplicationModel,
    ckpt_config: CheckpointConfig,
    *,
    iterations: int = 6,
    nodes: int = 4,
    ranks_per_node: int = 12,
    nvm_write_bandwidth: float = GB_per_sec(2.0),
    nvm_capacity: int | None = None,
    with_remote: bool = True,
    local_checkpoints: bool = True,
    seed: int = 1,
) -> RunResult:
    """One deterministic cluster experiment."""
    cluster_config = ClusterConfig(nodes=nodes)
    if nvm_capacity is not None:
        import dataclasses

        node = cluster_config.node
        cluster_config = dataclasses.replace(
            cluster_config,
            node=dataclasses.replace(
                node, nvm=dataclasses.replace(node.nvm, capacity=nvm_capacity)
            ),
        )
    cluster = Cluster(
        cluster_config, nvm_write_bandwidth=nvm_write_bandwidth, seed=seed
    )
    cluster.build(app, ckpt_config, ranks_per_node=ranks_per_node, with_remote=with_remote)
    runner = ClusterRunner(cluster, local_checkpoints=local_checkpoints)
    result = runner.run(iterations)
    result.cluster = cluster  # type: ignore[attr-defined]
    return result


def run_ideal(app: ApplicationModel, *, iterations: int = 6, nodes: int = 4,
              ranks_per_node: int = 12, seed: int = 1) -> RunResult:
    """The paper's 'ideal runtime': no checkpoints at all."""
    return run_cluster(
        app,
        precopy_config(app.iteration_compute_time, 10 * app.iteration_compute_time),
        iterations=iterations,
        nodes=nodes,
        ranks_per_node=ranks_per_node,
        with_remote=False,
        local_checkpoints=False,
        seed=seed,
    )


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
