"""X3 — ablation: chunk-size sensitivity of the pre-copy benefit.

The paper's §VI analysis ('We analyze the impact of chunk sizes on
pre-copy performance for a fixed checkpoint size (400 MB)') explains
why GTC/LAMMPS gain more than CM1.  This ablation fixes D = 400 MB and
the write schedule, sweeping only the chunk granularity; late-written
bytes are what the coordinated step must still absorb, and chunk
granularity sets how much of the remaining data pre-copy can overlap
and how much fault/bookkeeping overhead it pays."""

from conftest import once, run_cluster

from repro.apps import SyntheticModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Series, Table, render_series
from repro.units import GB_per_sec

ITERS = 6
NODES = 2
RANKS = 8
CHUNK_SIZES_MB = [1, 10, 50, 100, 200]


def app(chunk_mb):
    return SyntheticModel(
        checkpoint_mb_per_rank=400,
        chunk_mb=chunk_mb,
        hot_fraction=0.25,
        iteration_compute_time=40.0,
    )


def test_ablation_chunk_size(benchmark, report):
    def experiment():
        out = {}
        for mb in CHUNK_SIZES_MB:
            pre = run_cluster(app(mb), precopy_config(40, 1e6), iterations=ITERS,
                              nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(1.0), with_remote=False)
            nop = run_cluster(app(mb), async_noprecopy_config(40, 1e6),
                              iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(1.0), with_remote=False)
            out[mb] = (pre, nop)
        return out

    results = once(benchmark, experiment)
    series = Series("pre-copy benefit %")
    table = Table(
        "X3 — chunk-size sensitivity (D = 400 MB/rank fixed)",
        ["chunk size (MB)", "chunks/rank", "pre-copy exec (s)",
         "no-pre-copy exec (s)", "benefit %", "fault time (s)"],
    )
    for mb, (pre, nop) in results.items():
        benefit = (nop.total_time - pre.total_time) / nop.total_time * 100
        series.add(mb, benefit)
        table.add_row(mb, 400 // mb, f"{pre.total_time:.1f}", f"{nop.total_time:.1f}",
                      f"{benefit:.1f}", f"{pre.fault_time_total:.2f}")
    table.add_note("pre-copy always helps; tiny chunks pay more tracking/fault "
                   "overhead per byte, matching the paper's observation that the "
                   "bandwidth relief matters most for large-chunk workloads")
    report(render_series("X3 benefit vs chunk size", [series],
                         "chunk MB", "benefit %"), table.render())

    benefits = {mb: (nop.total_time - pre.total_time) / nop.total_time
                for mb, (pre, nop) in results.items()}
    for mb, b in benefits.items():
        assert b > 0.0  # pre-copy never loses
    # small chunks carry more per-chunk overhead (faults, bookkeeping)
    assert results[1][0].fault_time_total >= results[200][0].fault_time_total
