"""CM1 local checkpointing (§VI text, 'not shown for brevity').

The paper reports CM1 benefits from pre-copy by **less than 5%** and
explains it with Table IV: CM1 has (almost) no chunk above 100 MB, so
the NVM-bandwidth contention that pre-copy alleviates never builds up
at the coordinated step the way it does for GTC/LAMMPS."""

from conftest import once, run_cluster, run_ideal

from repro.apps import CM1Model, LammpsModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Table
from repro.units import GB_per_sec

ITERS = 6
NODES = 4
RANKS = 12
BW = GB_per_sec(1.0)
SMALL_CHUNKS = 24


def test_cm1_gets_smaller_precopy_benefit(benchmark, report):
    def experiment():
        def arms(app_factory):
            pre = run_cluster(app_factory(), precopy_config(40, 120), iterations=ITERS,
                              nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=BW, with_remote=False)
            nop = run_cluster(app_factory(), async_noprecopy_config(40, 120),
                              iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=BW, with_remote=False)
            ideal = run_ideal(app_factory(), iterations=ITERS, nodes=NODES,
                              ranks_per_node=RANKS)
            return pre, nop, ideal

        return {
            "cm1": arms(lambda: CM1Model(small_chunks=SMALL_CHUNKS)),
            "lammps": arms(LammpsModel),
        }

    results = once(benchmark, experiment)
    table = Table(
        "CM1 vs LAMMPS — pre-copy benefit by chunk-size mix (1 GB/s NVM)",
        ["application", "pre-copy exec (s)", "no-pre-copy exec (s)",
         "benefit %", "largest chunk (MB)"],
    )
    benefits = {}
    for app, (pre, nop, ideal) in results.items():
        benefit = (nop.total_time - pre.total_time) / nop.total_time * 100
        benefits[app] = benefit
        if app == "cm1":
            largest = max(s.nbytes for s in CM1Model(small_chunks=SMALL_CHUNKS).chunk_specs(0))
        else:
            largest = max(s.nbytes for s in LammpsModel().chunk_specs(0))
        table.add_row(app, f"{pre.total_time:.1f}", f"{nop.total_time:.1f}",
                      f"{benefit:.1f}", f"{largest / 2**20:.0f}")
    table.add_note(
        f"paper: CM1 '< 5%' benefit vs LAMMPS' larger gain; ours: "
        f"cm1 {benefits['cm1']:.1f}% vs lammps {benefits['lammps']:.1f}%"
    )
    report(table.render())

    assert benefits["cm1"] < benefits["lammps"]
    assert benefits["cm1"] <= 8.0  # paper: < 5%
