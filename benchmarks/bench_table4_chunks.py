"""Table IV — checkpoint chunk size distribution per application.

Regenerates the byte-share distribution across the paper's size
buckets from the workload models' actual chunk layouts."""

from conftest import once

from repro.apps import CM1Model, GTCModel, LammpsModel
from repro.metrics import Table

PAPER = {
    # the paper's rows (weights; LAMMPS's row does not sum to 100 —
    # we normalize byte-shares over the listed buckets)
    "cm1": {"500K-1MB": 40, "10-20MB": 0, "50-100MB": 54, "above 100MB": 4},
    "gtc": {"500K-1MB": 45, "10-20MB": 9, "50-100MB": 0, "above 100MB": 45},
    "lammps": {"500K-1MB": 15, "10-20MB": 0, "50-100MB": 20, "above 100MB": 25},
}


def test_table4_chunk_distribution(benchmark, report):
    def experiment():
        out = {}
        for model in (CM1Model(), GTCModel(), LammpsModel()):
            out[model.name] = (
                model.chunk_size_distribution(0),
                len(model.chunk_specs(0)),
                model.checkpoint_bytes(0),
            )
        return out

    measured = once(benchmark, experiment)
    table = Table(
        "Table IV — chunk size distribution (byte shares, %)",
        ["application", "bucket", "paper", "ours", "chunks", "D/rank (MB)"],
    )
    for app, (dist, n_chunks, total) in measured.items():
        paper_row = PAPER[app]
        norm = 100.0 / max(1, sum(paper_row.values()))
        for bucket in ("500K-1MB", "10-20MB", "50-100MB", "above 100MB"):
            table.add_row(
                app,
                bucket,
                f"{paper_row[bucket] * norm:.0f}",
                f"{dist.get(bucket, 0):.0f}",
                n_chunks,
                f"{total / 2**20:.0f}",
            )
        if dist.get("other", 0):
            table.add_row(app, "other", "-", f"{dist['other']:.0f}", n_chunks,
                          f"{total / 2**20:.0f}")
    table.add_note("paper column normalized over listed buckets; 'ours' from the "
                   "generated layouts (LAMMPS 'other' = the 28 staged aux chunks, "
                   "~3.7MB each — the paper's own LAMMPS row sums to 60).")
    report(table.render())

    # shape assertions: the properties the evaluation relies on
    cm1 = measured["cm1"][0]
    gtc = measured["gtc"][0]
    lammps = measured["lammps"][0]
    assert cm1["above 100MB"] <= 5          # CM1: pre-copy helps < 5%
    # GTC: large chunks dominate (zion >100MB plus the equilibrium
    # profile just under; together ~45% of bytes)
    assert gtc["above 100MB"] >= 20
    assert gtc["above 100MB"] + gtc["50-100MB"] >= 40
    assert lammps["above 100MB"] >= 30      # LAMMPS: hot 3-D array
    assert measured["lammps"][1] == 31      # the paper's 31 chunks
