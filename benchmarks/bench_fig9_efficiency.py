"""Figure 9 — GTC application efficiency with remote checkpointing.

Efficiency = ideal runtime / actual runtime — the ideal run does not
checkpoint at all (§VI), so the overhead includes *both* local and
remote checkpointing.  Local interval fixed at 40 s; remote interval
swept (the paper sweeps 47-180 s).  The arms are the paper's:
full NVM-checkpoints (local pre-copy + remote pre-copy stream) vs the
asynchronous no-pre-copy approach (blocking local checkpoints, whole
checkpoint pushed at each remote round).

Paper's findings to match in shape: pre-copy consistently higher
efficiency, approaching 0.98 at long intervals / full bandwidth; the
average overhead drops from ~10.6% (no pre-copy) to ~6.2% (pre-copy),
i.e. ~40% less — the abstract's '40% faster application execution'."""

from conftest import once, run_cluster, run_ideal

from repro.apps import GTCModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Series, Table, render_series
from repro.units import GB_per_sec

REMOTE_INTERVALS = [60.0, 120.0, 180.0]
ITERS = 9
NODES = 4
RANKS = 12
SMALL_CHUNKS = 24
#: evaluated at reduced per-core NVM bandwidth (the regime Fig. 9's
#: x-axis emphasizes; at full Table-I bandwidth both arms are cheap)
NVM_BW = GB_per_sec(1.0)


def gtc():
    return GTCModel(small_chunks=SMALL_CHUNKS)


def arm_config(remote_interval, with_stream):
    if with_stream:
        return precopy_config(40.0, remote_interval)
    return async_noprecopy_config(40.0, remote_interval)


def test_fig9_remote_efficiency(benchmark, report):
    def experiment():
        ideal = run_ideal(gtc(), iterations=ITERS, nodes=NODES, ranks_per_node=RANKS)
        out = {}
        for ri in REMOTE_INTERVALS:
            pre = run_cluster(gtc(), arm_config(ri, True), iterations=ITERS,
                              nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=NVM_BW)
            nop = run_cluster(gtc(), arm_config(ri, False), iterations=ITERS,
                              nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=NVM_BW)
            out[ri] = (pre, nop)
        return ideal, out

    ideal, results = once(benchmark, experiment)
    s_pre, s_nop = Series("remote pre-copy"), Series("async no-pre-copy")
    table = Table(
        "Figure 9 — GTC efficiency vs remote checkpoint interval "
        "(local interval 40 s, 1 GB/s NVM)",
        ["remote interval (s)", "arm", "exec time (s)", "efficiency",
         "remote overhead %"],
    )
    overheads = {"pre": [], "nop": []}
    for ri, (pre, nop) in results.items():
        for key, label, r in (("pre", "pre-copy", pre), ("nop", "no-pre-copy", nop)):
            eff = ideal.total_time / r.total_time
            ovh = (r.total_time - ideal.total_time) / ideal.total_time * 100
            overheads[key].append(ovh)
            table.add_row(ri, label, f"{r.total_time:.1f}", f"{eff:.3f}", f"{ovh:.1f}")
            (s_pre if key == "pre" else s_nop).add(ri, eff)
    avg_pre = sum(overheads["pre"]) / len(overheads["pre"])
    avg_nop = sum(overheads["nop"]) / len(overheads["nop"])
    reduction = (avg_nop - avg_pre) / avg_nop * 100
    table.add_note(
        f"average overhead: pre-copy {avg_pre:.1f}% vs no-pre-copy {avg_nop:.1f}% "
        f"-> {reduction:.0f}% less (paper: 6.2% vs 10.6%, ~40% less)"
    )
    best_eff = max(s_pre.ys)
    table.add_note(f"best pre-copy efficiency: {best_eff:.3f} (paper: up to ~0.98)")
    report(
        render_series("Figure 9 efficiency", [s_pre, s_nop],
                      "remote interval (s)", "efficiency"),
        table.render(),
    )

    # shape assertions
    for ri, (pre, nop) in results.items():
        assert ideal.total_time / pre.total_time >= ideal.total_time / nop.total_time - 1e-9
    assert reduction >= 15.0      # pre-copy clearly reduces the overhead
    assert best_eff >= 0.90       # approaches the paper's 0.98
