"""Figure 8 — GTC local checkpointing: pre-copy vs no-pre-copy.

Same harness as Fig. 7, on the GTC model (~433 MB/proc, 48 procs).
The distinguishing GTC behaviour: large write-once chunks (the static
equilibrium profile) are checkpointed once — chunk-level dirty
tracking *shrinks* the checkpoint data volume vs the no-pre-copy
baseline (the paper's ~10% combined improvement)."""

from conftest import once, run_cluster, run_ideal

from repro.apps import GTCModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Series, Table, render_series
from repro.units import GB_per_sec, to_GB

BW_POINTS = [0.5, 1.0, 2.0]
ITERS = 6
NODES = 4
RANKS = 12
#: the GTC model's faithful layout has ~230 small chunks/rank; the
#: bench uses 24 representative small chunks to keep the sweep quick —
#: the byte shares (what drives pre-copy behaviour) are unchanged.
SMALL_CHUNKS = 24


def gtc():
    return GTCModel(small_chunks=SMALL_CHUNKS)


def test_fig8_gtc_local_checkpoint(benchmark, report):
    def experiment():
        out = {}
        for bw in BW_POINTS:
            pre = run_cluster(
                gtc(), precopy_config(40, 120), iterations=ITERS, nodes=NODES,
                ranks_per_node=RANKS, nvm_write_bandwidth=GB_per_sec(bw),
                with_remote=False,
            )
            nop = run_cluster(
                gtc(), async_noprecopy_config(40, 120), iterations=ITERS,
                nodes=NODES, ranks_per_node=RANKS,
                nvm_write_bandwidth=GB_per_sec(bw), with_remote=False,
            )
            out[bw] = (pre, nop)
        ideal = run_ideal(gtc(), iterations=ITERS, nodes=NODES, ranks_per_node=RANKS)
        return out, ideal

    results, ideal = once(benchmark, experiment)
    t_pre, t_nop = Series("pre-copy exec time"), Series("no-pre-copy exec time")
    d_pre, d_nop = Series("pre-copy data to NVM"), Series("no-pre-copy data to NVM")
    table = Table(
        "Figure 8 — GTC, 48 procs, ~433 MB/proc",
        ["NVM GB/s", "arm", "exec time (s)", "ckpt overhead %", "data to NVM (GB)"],
    )
    for bw, (pre, nop) in results.items():
        for label, r in (("pre-copy", pre), ("no-pre-copy", nop)):
            ovh = (r.total_time - ideal.total_time) / ideal.total_time * 100
            table.add_row(bw, label, f"{r.total_time:.1f}", f"{ovh:.1f}",
                          f"{to_GB(r.total_nvm_bytes):.1f}")
        t_pre.add(bw, pre.total_time)
        t_nop.add(bw, nop.total_time)
        d_pre.add(bw, to_GB(pre.total_nvm_bytes))
        d_nop.add(bw, to_GB(nop.total_nvm_bytes))
    pre_l, nop_l = results[BW_POINTS[0]]
    improvement = 1 - pre_l.total_time / nop_l.total_time
    shrink = 1 - results[2.0][0].total_nvm_bytes / results[2.0][1].total_nvm_bytes
    table.add_note(
        f"@{BW_POINTS[0]} GB/s: pre-copy improves execution time by "
        f"{improvement*100:.1f}% (paper: ~10%)"
    )
    table.add_note(
        f"checkpoint data volume shrinks {shrink*100:.0f}% under dirty "
        "tracking: the write-once equilibrium chunk is persisted once "
        "(the paper's 'reduction in checkpoint size for the pre-copy case')"
    )
    report(
        render_series("Figure 8 exec time", [t_pre, t_nop], "NVM GB/s", "seconds"),
        render_series("Figure 8 data copied", [d_pre, d_nop], "NVM GB/s", "GB"),
        table.render(),
    )

    assert improvement >= 0.03  # paper: ~10%
    assert shrink > 0.10        # write-once chunks leave the ckpt set
    for bw, (pre, nop) in results.items():
        assert pre.total_time <= nop.total_time
        assert pre.total_nvm_bytes < nop.total_nvm_bytes
