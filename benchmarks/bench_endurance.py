"""X7 — extension: PCM write endurance under checkpoint workloads.

The paper flags PCM's 1e8-cycle write endurance (vs DRAM's 1e16) as a
key hardware limitation but does not quantify it for checkpointing.
The device models track every NVM write, so we can: this bench runs
LAMMPS at several local checkpoint intervals and projects device
lifetime under ideal wear leveling — showing both that checkpointing
at sane intervals is endurance-safe for years, and how aggressively
short intervals eat the budget.  Dirty tracking (pre-copy) also writes
*less* than the blocking baseline, extending lifetime."""

from conftest import once, run_cluster

from repro.apps import GTCModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Table
from repro.units import GB_per_sec, hours

ITERS = 6
NODES = 2
RANKS = 12
INTERVALS = [10.0, 40.0, 120.0]


def gtc(interval):
    app = GTCModel(small_chunks=24)
    app.iteration_compute_time = interval
    return app


def lifetime_years(res):
    """Worst node's projected lifetime in years."""
    worst = float("inf")
    for node in res.cluster.active_nodes:  # type: ignore[attr-defined]
        lt = node.ctx.nvm.estimated_lifetime_seconds(res.total_time)
        worst = min(worst, lt)
    return worst / hours(24 * 365)


def test_pcm_endurance_projection(benchmark, report):
    def experiment():
        out = {}
        for interval in INTERVALS:
            pre = run_cluster(gtc(interval), precopy_config(interval, 10 * interval),
                              iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(2.0), with_remote=False)
            nop = run_cluster(gtc(interval),
                              async_noprecopy_config(interval, 10 * interval),
                              iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(2.0), with_remote=False)
            out[interval] = (pre, nop)
        return out

    results = once(benchmark, experiment)
    table = Table(
        "X7 — PCM lifetime under GTC checkpointing (1e8 cycles, ideal wear leveling)",
        ["ckpt interval (s)", "arm", "NVM GB written", "GB/hour",
         "projected lifetime (years)"],
    )
    lifetimes = {}
    for interval, (pre, nop) in results.items():
        for label, r in (("pre-copy", pre), ("no-pre-copy", nop)):
            written = sum(
                n.ctx.nvm.wear.bytes_written for n in r.cluster.active_nodes  # type: ignore[attr-defined]
            )
            years = lifetime_years(r)
            lifetimes[(interval, label)] = years
            table.add_row(
                f"{interval:.0f}", label, f"{written / 2**30:.1f}",
                f"{written / 2**30 / (r.total_time / 3600):.0f}",
                f"{years:,.0f}",
            )
    table.add_note("even 10 s checkpoint intervals leave decades of ideal-wear "
                   "lifetime on a 24 GB part; real (imperfect) wear leveling "
                   "divides these numbers by the leveling inefficiency")
    table.add_note("dirty tracking writes less than the blocking baseline "
                   "(write-once chunks persist once), extending lifetime")
    report(table.render())

    # shorter intervals burn endurance faster
    assert lifetimes[(10.0, "no-pre-copy")] < lifetimes[(120.0, "no-pre-copy")]
    # pre-copy's dirty tracking never writes more than the baseline
    for interval in INTERVALS:
        assert lifetimes[(interval, "pre-copy")] >= lifetimes[(interval, "no-pre-copy")] * 0.99
    # all projections are finite (writes actually recorded)
    assert all(y != float("inf") for y in lifetimes.values())
