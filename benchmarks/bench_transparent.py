"""X9 — extension: application-initiated vs transparent checkpointing.

§II: transparent mechanisms "incur high storage cost and space" when
the footprint is large, which is why the paper scopes itself to
application-initiated checkpoints; §VIII claims the design generalizes
to transparent checkpointing.  This bench runs both through the same
substrate for a LAMMPS-sized process whose address space is ~2.5x its
declared checkpoint set, plus the page-tracking transparent variant
(§IV's costly alternative to application knowledge)."""

from conftest import once

from repro.alloc import NVAllocator
from repro.apps import LammpsModel, RankBinding
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, TransparentCheckpointer, make_standalone_context
from repro.metrics import Table
from repro.units import GB_per_sec, MB, to_GB, to_MB

INTERVALS = 5
#: address space = declared checkpoint data + working buffers, code,
#: stacks, communication buffers... (a conservative 2.5x)
SPACE_FACTOR = 2.5


def test_transparent_vs_application_initiated(benchmark, report):
    def experiment():
        app = LammpsModel()
        declared = int(MB(app.checkpoint_mb_per_rank))
        space = int(declared * SPACE_FACTOR)

        # -- application-initiated with DCPCP pre-copy ------------------
        ctx = make_standalone_context(name="appinit", nvm_write_bandwidth=GB_per_sec(2.0))
        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True,
                            clock=lambda: ctx.engine.now)
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
        app.allocate(binding, 0)
        ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="dcpcp"))
        ck.start_background()

        def drive_app():
            for it in range(INTERVALS):
                yield from app.compute_iteration(binding, it)
                yield from ck.checkpoint(blocking=False)
            ck.stop_background()

        ctx.engine.process(drive_app())
        ctx.engine.run()
        app_arm = {
            "volume": ck.total_bytes_to_nvm,
            "blocking": ck.total_checkpoint_time,
            "fault_s": binding.fault_time,
            "ckpt_bytes": declared,
        }

        # -- transparent variants ---------------------------------------
        def drive_transparent(page_tracking):
            ctx2 = make_standalone_context(
                name=f"xp{page_tracking}", nvm_write_bandwidth=GB_per_sec(2.0)
            )
            t = TransparentCheckpointer(ctx2, "r0", space, page_tracking=page_tracking)
            fault_time = 0.0

            def drive():
                nonlocal fault_time
                for _ in range(INTERVALS):
                    yield ctx2.engine.timeout(app.iteration_compute_time)
                    faults = t.mark_activity()
                    cost = faults * PrecopyPolicy().fault_cost
                    fault_time += cost
                    if cost:
                        yield ctx2.engine.timeout(cost)
                    yield from t.checkpoint(blocking=False)

            ctx2.engine.process(drive())
            ctx2.engine.run()
            return {
                "volume": t.total_bytes_to_nvm,
                "blocking": sum(s.duration for s in t.history),
                "fault_s": fault_time,
                "ckpt_bytes": space,
            }

        return {
            "application-initiated": app_arm,
            "transparent": drive_transparent(False),
            "transparent+page-tracking": drive_transparent(True),
        }

    results = once(benchmark, experiment)
    table = Table(
        f"X9 — checkpoint transparency (address space = {SPACE_FACTOR}x declared data)",
        ["approach", "ckpt size (MB)", "NVM volume, 5 ckpts (GB)",
         "blocking time (s)", "fault time (s)"],
    )
    for label, r in results.items():
        table.add_row(label, f"{to_MB(r['ckpt_bytes']):.0f}",
                      f"{to_GB(r['volume']):.1f}", f"{r['blocking']:.2f}",
                      f"{r['fault_s']:.2f}")
    app_arm = results["application-initiated"]
    xp = results["transparent"]
    table.add_note(
        f"transparent checkpoints move {xp['volume'] / app_arm['volume']:.1f}x the "
        "data and block "
        f"{xp['blocking'] / max(1e-9, app_arm['blocking']):.0f}x longer — §II's "
        "'high storage cost and space' argument, quantified"
    )
    table.add_note(
        "page tracking restores incrementality without application "
        "knowledge but pays the §IV fault bill "
        f"({results['transparent+page-tracking']['fault_s']:.1f} s here)"
    )
    report(table.render())

    assert xp["ckpt_bytes"] == int(app_arm["ckpt_bytes"] * SPACE_FACTOR)
    assert xp["volume"] > 1.5 * app_arm["volume"]
    assert xp["blocking"] > 3 * app_arm["blocking"]
    assert results["transparent+page-tracking"]["fault_s"] > 1.0
