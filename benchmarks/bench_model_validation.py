"""X1 — §III model validation: the analytic 2-level model against the
simulator.

Feeds the model the simulator's own measured parameters (checkpoint
time, intervals, failure rates) and compares predicted vs simulated
total runtime under injected failures.  The model makes the paper's
simplifying assumptions (failures strike mid-interval on average,
restart ∝ checkpoint time), so agreement within tens of percent over a
multi-failure run validates both sides."""

from conftest import once

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig, FailureConfig
from repro.metrics import Table
from repro.models import ModelParams, MultilevelModel
from repro.units import GB_per_sec, MB

ITERS = 12
NODES = 2
RANKS = 4
LOCAL_I = 20.0
REMOTE_I = 60.0
CKPT_MB = 80.0


def test_model_vs_simulation(benchmark, report):
    def experiment():
        fc = FailureConfig(mtbf_local=400.0, mtbf_remote=1600.0, seed=13)
        cluster = Cluster(ClusterConfig(nodes=NODES),
                          nvm_write_bandwidth=GB_per_sec(1.0), seed=13)
        app = SyntheticModel(checkpoint_mb_per_rank=CKPT_MB, chunk_mb=20,
                             iteration_compute_time=LOCAL_I,
                             comm_mb_per_iteration=20)
        cluster.build(app, precopy_config(LOCAL_I, REMOTE_I), ranks_per_node=RANKS)
        runner = ClusterRunner(cluster, failure_config=fc)
        sim = runner.run(ITERS)
        return sim, fc

    sim, fc = once(benchmark, experiment)

    # model parameters measured from the simulated system
    t_lcl_measured = sim.local_ckpt_time_avg
    compute_time = ITERS * LOCAL_I
    # express the measured blocking checkpoint via an effective
    # bandwidth, then let the model derive everything else
    eff_bw = MB(CKPT_MB) / max(1e-9, t_lcl_measured)
    params = ModelParams(
        compute_time=compute_time,
        checkpoint_bytes=MB(CKPT_MB),
        nvm_bw_per_core=eff_bw,
        remote_bw=MB(400),
        local_interval=LOCAL_I,
        remote_interval=REMOTE_I,
        # per-JOB failure rates: the injector draws cluster-wide
        mtbf_local=fc.mtbf_local / NODES,
        mtbf_remote=fc.mtbf_remote / NODES,
    )
    predicted = MultilevelModel(params).solve()

    table = Table(
        "X1 — §III analytic model vs discrete-event simulation",
        ["quantity", "model", "simulated"],
    )
    table.add_row("compute time (s)", f"{params.compute_time:.0f}", f"{sim.ideal_time:.0f}")
    table.add_row("T_lcl total (s)",
                  f"{MultilevelModel(params).local_checkpoint_time():.1f}",
                  f"{sim.local_ckpt_time_total:.1f}")
    n_fail_model = (
        params.compute_time / params.mtbf_local
        + predicted.total / params.mtbf_remote
    )
    table.add_row("expected failures", f"{n_fail_model:.1f}",
                  f"{sim.soft_failures + sim.hard_failures}")
    table.add_row("restart+recompute (s)",
                  f"{predicted.restart_total + predicted.recompute_total:.0f}",
                  f"{sim.recovery_time + sim.iterations_recomputed * LOCAL_I:.0f}")
    table.add_row("T_total (s)", f"{predicted.total:.0f}", f"{sim.total_time:.0f}")
    err = abs(predicted.total - sim.total_time) / sim.total_time
    table.add_note(f"total-time prediction error: {err*100:.0f}% "
                   "(single stochastic run vs expectation model)")
    report(table.render())

    # the model tracks the simulation within a loose band: a single
    # run's failure draw vs the model's expectation
    assert err <= 0.5
    assert predicted.total >= params.compute_time
