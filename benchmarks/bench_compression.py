"""X10 — extension: remote checkpoint compression (mcrengine-style).

Related work cites Islam et al.'s mcrengine: compress checkpoint data
before shipping it.  This bench adds an LZ-class codec to the remote
path and measures the interconnect-volume / helper-CPU trade at
several compressibility levels (HPC state ranges from near-random to
highly regular)."""

from conftest import once, run_cluster

from repro.apps import LammpsModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig
from repro.core import CompressionModel
from repro.metrics import Table
from repro.units import GB_per_sec, to_GB

ITERS = 6
NODES = 4
RANKS = 12
RATIOS = [None, 0.8, 0.6, 0.4]  # None = no compression


def run_arm(ratio):
    cluster = Cluster(ClusterConfig(nodes=NODES),
                      nvm_write_bandwidth=GB_per_sec(2.0), seed=6)
    compression = CompressionModel(phantom_ratio=ratio) if ratio else None
    cluster.build(LammpsModel(), precopy_config(40, 120), ranks_per_node=RANKS,
                  compression=compression)
    res = ClusterRunner(cluster).run(ITERS)
    res.fabric_total = cluster.fabric.total_bytes(":rckpt") + cluster.fabric.total_bytes(":rprecopy")  # type: ignore[attr-defined]
    return res


def test_compression_volume_cpu_trade(benchmark, report):
    def experiment():
        return {ratio: run_arm(ratio) for ratio in RATIOS}

    results = once(benchmark, experiment)
    table = Table(
        "X10 — remote checkpoint compression (LAMMPS, 48 ranks)",
        ["compress ratio", "ckpt bytes on fabric (GB)", "helper util %",
         "exec time (s)"],
    )
    base = results[None]
    for ratio, r in results.items():
        label = "off" if ratio is None else f"{ratio:.1f}"
        table.add_row(label, f"{to_GB(r.fabric_total):.1f}",
                      f"{r.helper_utilization * 100:.1f}", f"{r.total_time:.1f}")
    best = results[0.4]
    table.add_note(
        f"at 0.4 compressibility the fabric carries "
        f"{(1 - best.fabric_total / base.fabric_total) * 100:.0f}% less checkpoint "
        f"data for {(best.helper_utilization / base.helper_utilization - 1) * 100:+.0f}% "
        "helper CPU — the mcrengine trade on our substrate"
    )
    report(table.render())

    # volume falls with the ratio; CPU rises
    vols = [results[r].fabric_total for r in RATIOS]
    assert vols == sorted(vols, reverse=True)
    assert best.fabric_total < 0.55 * base.fabric_total
    assert best.helper_utilization > base.helper_utilization
