"""Table I — NVM vs DRAM hardware performance.

Regenerates the paper's device-parameter table from the emulated
devices by *measuring* them (page read/write latency and sustained
write bandwidth on the virtual clock), not by echoing the config."""

from conftest import once

from repro.config import DRAM_CONFIG, PCM_CONFIG
from repro.memory import MemoryDevice, make_device_bus
from repro.config import BandwidthModelConfig
from repro.metrics import Table
from repro.sim import Engine
from repro.units import GB, PAGE_SIZE, to_GB


def measure_device(config):
    """Cell latencies (device parameters) + measured sustained
    bandwidth; the note records the page-transfer floor that the
    bandwidth term imposes on whole-page copies."""
    dev = MemoryDevice(config)
    page_write = config.page_write_latency
    page_read = config.page_read_latency
    # sustained bandwidth: one big transfer through the device bus at
    # full (single-flow uncapped) device rate
    engine = Engine()
    from repro.sim import BandwidthResource

    bus = BandwidthResource(engine, config.write_bandwidth)

    def xfer():
        yield bus.transfer(GB(1))
        return engine.now

    proc = engine.process(xfer())
    engine.run()
    sustained = GB(1) / proc.value
    return page_read, page_write, sustained


def test_table1_device_parameters(benchmark, report):
    def experiment():
        return {name: measure_device(cfg) for name, cfg in
                [("DRAM", DRAM_CONFIG), ("PCM", PCM_CONFIG)]}

    measured = once(benchmark, experiment)
    table = Table(
        "Table I — NVM vs DRAM hardware performance (measured on the emulated devices)",
        ["attribute", "DRAM (paper)", "DRAM (ours)", "PCM (paper)", "PCM (ours)"],
    )
    d_read, d_write, d_bw = measured["DRAM"]
    p_read, p_write, p_bw = measured["PCM"]
    table.add_row("write bandwidth (GB/s)", "~8", f"{to_GB(d_bw):.1f}", "~2", f"{to_GB(p_bw):.1f}")
    table.add_row("page write latency", "20-50 ns", f"{d_write*1e9:.0f} ns",
                  "~1 us", f"{p_write*1e6:.1f} us")
    table.add_row("page read latency", "20-50 ns", f"{d_read*1e9:.0f} ns",
                  "~50 ns", f"{p_read*1e9:.0f} ns")
    table.add_row("write endurance (cycles)", "1e16", f"{DRAM_CONFIG.write_endurance:.0e}",
                  "1e8", f"{PCM_CONFIG.write_endurance:.0e}")
    table.add_row("write energy vs DRAM", "1x", "1x", "40x",
                  f"{PCM_CONFIG.write_energy_per_bit / DRAM_CONFIG.write_energy_per_bit:.0f}x")
    table.add_note("PCM page write includes the bandwidth term: a 4 KiB page at 2 GB/s "
                   "cannot complete faster than ~1.9 us even with 1 us cell latency.")
    report(table.render())

    assert 1.8 <= to_GB(p_bw) <= 2.2
    assert 7.5 <= to_GB(d_bw) <= 8.5
    assert p_write >= 1e-6
