"""§IV motivation — MADBench2: ramdisk vs in-memory checkpointing.

The experiment that justifies NVM-as-memory: both paths store bytes in
DRAM, yet the VFS/ramdisk path is up to 46% slower at 300 MB/core with
3x the kernel synchronization calls and ~31% more lock-wait time."""

from conftest import once

from repro.apps import MADBench
from repro.metrics import Series, Table, render_series

SIZES = [50, 100, 150, 200, 250, 300]


def test_madbench_ramdisk_vs_memory(benchmark, report):
    def experiment():
        return MADBench().sweep(SIZES, writers=12)

    results = once(benchmark, experiment)
    table = Table(
        "MADBench2 — checkpoint path comparison (12 cores/node)",
        ["MB/core", "memory (s)", "ramdisk (s)", "slowdown %", "sync calls x", "lock wait x"],
    )
    mem_series = Series("in-memory")
    ram_series = Series("ramdisk")
    for r in results:
        table.add_row(
            f"{r.data_mb:.0f}",
            f"{r.memory.total:.3f}",
            f"{r.ramdisk.total:.3f}",
            f"{r.slowdown * 100:.0f}",
            f"{r.sync_call_ratio:.1f}",
            f"{r.lock_wait_ratio:.2f}",
        )
        mem_series.add(r.data_mb, r.memory.total)
        ram_series.add(r.data_mb, r.ramdisk.total)
    final = results[-1]
    table.add_note(
        f"paper at 300 MB/core: 46% slower, 3x sync calls, 31% more lock wait; "
        f"ours: {final.slowdown*100:.0f}%, {final.sync_call_ratio:.1f}x, "
        f"{(final.lock_wait_ratio-1)*100:+.0f}%"
    )
    report(
        render_series("MADBench2 checkpoint time", [mem_series, ram_series],
                      "MB/core", "seconds"),
        table.render(),
    )

    assert 0.40 <= final.slowdown <= 0.52
    assert final.sync_call_ratio == 3.0
    assert 1.2 <= final.lock_wait_ratio <= 1.45
    # the gap widens with data size
    slowdowns = [r.slowdown for r in results]
    assert slowdowns == sorted(slowdowns)
