"""Figure 10 — LAMMPS peak interconnect usage over the application
timeline.

Checkpoint traffic (remote rounds + the pre-copy stream) per window of
application time, for the asynchronous no-pre-copy baseline vs remote
pre-copy.  Paper's findings: the no-pre-copy arm bursts the whole
checkpoint at once while pre-copy spreads it — peak usage roughly
halves (abstract: up to 46% reduction), with a visible early spike in
the pre-copy arm during the learning phase."""

from conftest import once, run_cluster

from repro.apps import LammpsModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Series, Table, render_series
from repro.units import GB_per_sec, to_MB

ITERS = 9
NODES = 4
RANKS = 12
WINDOW = 5.0  # seconds per timeline bucket


def test_fig10_peak_interconnect_usage(benchmark, report):
    def experiment():
        pre = run_cluster(LammpsModel(), precopy_config(40, 120), iterations=ITERS,
                          nodes=NODES, ranks_per_node=RANKS,
                          nvm_write_bandwidth=GB_per_sec(2.0))
        nop = run_cluster(LammpsModel(), async_noprecopy_config(40, 120),
                          iterations=ITERS, nodes=NODES, ranks_per_node=RANKS,
                          nvm_write_bandwidth=GB_per_sec(2.0))
        kinds = ["rckpt", "rprecopy"]
        pre_series = pre.cluster.fabric.windowed_usage(WINDOW, pre.total_time, kinds=kinds)
        nop_series = nop.cluster.fabric.windowed_usage(WINDOW, nop.total_time, kinds=kinds)
        return pre, nop, pre_series, nop_series

    pre, nop, pre_series, nop_series = once(benchmark, experiment)
    s_pre = Series("pre-copy ckpt traffic")
    s_nop = Series("no-pre-copy ckpt traffic")
    for t, v in pre_series:
        s_pre.add(t, to_MB(v))
    for t, v in nop_series:
        s_nop.add(t, to_MB(v))

    pre_peak = max(v for _, v in pre_series)
    nop_peak = max(v for _, v in nop_series)
    reduction = (1 - pre_peak / nop_peak) * 100
    # steady state: after the learning phase (first round ~120 s +
    # slack), where the paper's 'almost half' statement applies
    steady_start = 130.0
    pre_steady = max((v for t, v in pre_series if t > steady_start), default=0.0)
    nop_steady = max((v for t, v in nop_series if t > steady_start), default=0.0)
    steady_reduction = (1 - pre_steady / nop_steady) * 100 if nop_steady else 0.0
    pre_1s = pre.fabric_ckpt_peak_window_bytes
    nop_1s = nop.fabric_ckpt_peak_window_bytes

    table = Table(
        f"Figure 10 — checkpoint bytes on the fabric per {WINDOW:.0f}s window",
        ["metric", "no-pre-copy", "pre-copy", "reduction %"],
    )
    table.add_row(f"peak {WINDOW:.0f}s-window volume (MB)",
                  f"{to_MB(nop_peak):.0f}", f"{to_MB(pre_peak):.0f}",
                  f"{reduction:.0f}")
    table.add_row(f"steady-state peak, t>{steady_start:.0f}s (MB)",
                  f"{to_MB(nop_steady):.0f}", f"{to_MB(pre_steady):.0f}",
                  f"{steady_reduction:.0f}")
    table.add_row("peak 1s-window volume (MB)",
                  f"{to_MB(nop_1s):.0f}", f"{to_MB(pre_1s):.0f}",
                  f"{(1 - pre_1s / nop_1s) * 100:.0f}")
    table.add_row("total remote volume (GB)",
                  f"{(nop.remote_round_bytes + nop.remote_precopy_bytes)/2**30:.1f}",
                  f"{(pre.remote_round_bytes + pre.remote_precopy_bytes)/2**30:.1f}",
                  "-")
    # the learning-phase spike: pre-copy's first round moves ~everything
    first_round_pre = max(
        (v for t, v in pre_series if t <= steady_start), default=0.0
    )
    steady_pre = pre_steady
    table.add_note(
        f"learning-phase spike: pre-copy peak before the 2nd round is "
        f"{to_MB(first_round_pre):.0f} MB/window vs {to_MB(steady_pre):.0f} after "
        "(the paper's 'high peak resource usage in the initial application stages')"
    )
    table.add_note(f"paper: peak usage 'almost half' / up to 46% lower; ours: "
                   f"{steady_reduction:.0f}% lower steady-state "
                   f"({reduction:.0f}% including the learning spike)")
    report(
        render_series("Figure 10 timeline", [s_pre, s_nop], "time (s)",
                      f"MB per {WINDOW:.0f}s window", width=90, height=14),
        table.render(),
    )

    assert steady_reduction >= 30.0
    assert first_round_pre > steady_pre  # the learning spike exists
    # volumes comparable (the stream coalesces, it does not balloon)
    pre_total = pre.remote_round_bytes + pre.remote_precopy_bytes
    nop_total = nop.remote_round_bytes + nop.remote_precopy_bytes
    assert pre_total <= 1.5 * nop_total
