"""Figure 7 — LAMMPS local checkpointing: pre-copy vs no-pre-copy.

48 MPI processes, ~410 MB checkpoint per process (RhodoSpin), local
checkpoint every iteration; the x-axis sweeps the NVM device bandwidth
(which sets the effective per-core NVMBW).  Left axis: application
execution time.  Right axis: total data copied to NVM.

Paper's findings to match in shape: pre-copy holds the checkpoint
overhead to ~6.5% of execution time where no-pre-copy pays ~15%; the
pre-copy arm moves slightly more data (~+3%); overall ~15% better than
a ramdisk path."""

from conftest import once, run_cluster, run_ideal

from repro.apps import LammpsModel
from repro.baselines import RamdiskPathModel, async_noprecopy_config, precopy_config
from repro.metrics import Series, Table, render_series
from repro.units import GB_per_sec, MB, to_GB

BW_POINTS = [0.5, 1.0, 1.5, 2.0]  # NVM device GB/s (2.0 = Table I)
ITERS = 6
NODES = 4
RANKS = 12  # 48 total, as in the paper


def test_fig7_lammps_local_checkpoint(benchmark, report):
    def experiment():
        out = {}
        for bw in BW_POINTS:
            app_pre = LammpsModel()
            app_nop = LammpsModel()
            pre = run_cluster(
                app_pre, precopy_config(40, 120), iterations=ITERS, nodes=NODES,
                ranks_per_node=RANKS, nvm_write_bandwidth=GB_per_sec(bw),
                with_remote=False,
            )
            nop = run_cluster(
                app_nop, async_noprecopy_config(40, 120), iterations=ITERS,
                nodes=NODES, ranks_per_node=RANKS,
                nvm_write_bandwidth=GB_per_sec(bw), with_remote=False,
            )
            out[bw] = (pre, nop)
        ideal = run_ideal(LammpsModel(), iterations=ITERS, nodes=NODES, ranks_per_node=RANKS)
        return out, ideal

    results, ideal = once(benchmark, experiment)
    t_pre = Series("pre-copy exec time")
    t_nop = Series("no-pre-copy exec time")
    d_pre = Series("pre-copy data to NVM")
    d_nop = Series("no-pre-copy data to NVM")
    table = Table(
        "Figure 7 — LAMMPS (Rhodo), 48 procs, ~410 MB/proc",
        ["NVM GB/s", "arm", "exec time (s)", "ckpt overhead %",
         "data to NVM (GB)", "avg coord ckpt (s)"],
    )
    for bw, (pre, nop) in results.items():
        for label, r in (("pre-copy", pre), ("no-pre-copy", nop)):
            ovh = (r.total_time - ideal.total_time) / ideal.total_time * 100
            table.add_row(
                bw, label, f"{r.total_time:.1f}", f"{ovh:.1f}",
                f"{to_GB(r.total_nvm_bytes):.1f}", f"{r.local_ckpt_time_avg:.2f}",
            )
        t_pre.add(bw, pre.total_time)
        t_nop.add(bw, nop.total_time)
        d_pre.add(bw, to_GB(pre.total_nvm_bytes))
        d_nop.add(bw, to_GB(nop.total_nvm_bytes))

    # headline shape numbers at the lowest-bandwidth point
    pre_l, nop_l = results[BW_POINTS[0]]
    ovh_pre = (pre_l.total_time - ideal.total_time) / ideal.total_time
    ovh_nop = (nop_l.total_time - ideal.total_time) / ideal.total_time
    # ramdisk comparison: NVM-as-ramdisk = the no-pre-copy arm plus
    # the per-checkpoint VFS tax (serialization, syscalls, lock waits)
    # the MADBench model measured — vs NVM-as-memory with pre-copy
    from repro.baselines import MemoryPathModel

    pre_2, nop_2 = results[2.0]
    vfs_extra = (
        RamdiskPathModel().checkpoint_time(MB(410), RANKS)
        - MemoryPathModel().checkpoint_time(MB(410), RANKS)
    )
    ramdisk_exec = nop_l.total_time + vfs_extra * ITERS
    ramdisk_gain = 1 - pre_l.total_time / ramdisk_exec
    table.add_note(
        f"@{BW_POINTS[0]} GB/s: overhead pre-copy {ovh_pre*100:.1f}% vs "
        f"no-pre-copy {ovh_nop*100:.1f}% (paper: 6.5% vs 15%)"
    )
    table.add_note(
        f"@{BW_POINTS[0]} GB/s: exec time {pre_l.total_time:.1f}s (NVM-as-memory + "
        f"pre-copy) vs {ramdisk_exec:.1f}s (NVM-as-ramdisk, VFS tax "
        f"{vfs_extra:.2f}s/ckpt) -> {ramdisk_gain*100:.0f}% better (paper: ~15%, "
        "of which 8-10 points from pre-copy)"
    )
    report(
        render_series("Figure 7 exec time", [t_pre, t_nop], "NVM GB/s", "seconds"),
        render_series("Figure 7 data copied", [d_pre, d_nop], "NVM GB/s", "GB"),
        table.render(),
    )

    # --- shape assertions ---
    assert ovh_pre < 0.6 * ovh_nop          # pre-copy at least ~40% less overhead
    for bw, (pre, nop) in results.items():
        assert pre.total_time <= nop.total_time
    # pre-copy data volume within a modest factor of the baseline
    assert pre_2.total_nvm_bytes <= 1.25 * nop_2.total_nvm_bytes
    assert 0.05 <= ramdisk_gain <= 0.30  # paper: ~15%
