"""X8 — extension: eager vs lazy restart (§VIII future work).

The paper: 'Considering the fact that read speeds of NVMs are
comparable to DRAM, we plan to further optimize our recovery mechanism'
— and §IV already describes the mechanism: restarted applications can
read write-protected NVM in place, migrating chunks back to DRAM on
first write.

This bench restarts a checkpointed GTC-sized process both ways and
measures (a) restart latency (time until the application can resume),
(b) the first compute interval's added migration cost, and (c) the
break-even: lazy restart wins on time-to-resume by orders of magnitude
and spreads the copy cost over the first interval, touching only the
chunks actually written."""

import numpy as np
from conftest import once

from repro.core import NVMCheckpoint
from repro.memory import InMemoryStore
from repro.metrics import Table
from repro.units import MB, to_MB

N_CHUNKS = 12
CHUNK = MB(32)  # ~384 MB process, GTC-scale


def build_checkpointed_store():
    store = InMemoryStore()
    app = NVMCheckpoint("p", store=store, phantom=True)
    for i in range(N_CHUNKS):
        app.nvalloc(f"c{i}", CHUNK).touch()
    app.nvchkptall()
    app.crash()
    return store


def test_lazy_vs_eager_restart(benchmark, report):
    def experiment():
        out = {}
        # eager: copy everything back before resuming
        store = build_checkpointed_store()
        app, rep = NVMCheckpoint.restart("p", store)
        out["eager"] = {
            "restart_s": rep.duration,
            "migrated_mb": 0.0,
            "bytes_back": rep.bytes_local,
        }
        # lazy: resume immediately; the first interval writes half the
        # chunks (the common case: not all state is touched right away)
        store = build_checkpointed_store()
        app, rep = NVMCheckpoint.restart("p", store, lazy=True)
        migrated = 0
        for i in range(N_CHUNKS // 2):
            chunk = app.chunk(f"c{i}")
            chunk.touch()
            migrated += chunk.take_migration_bytes()
        out["lazy"] = {
            "restart_s": rep.duration,
            "migrated_mb": to_MB(migrated),
            "bytes_back": rep.bytes_local,
        }
        return out

    results = once(benchmark, experiment)
    table = Table(
        f"X8 — restart strategies ({N_CHUNKS} x {to_MB(CHUNK):.0f} MB chunks, "
        "first interval writes half of them)",
        ["strategy", "time to resume (s)", "copied at restart (MB)",
         "migrated on first writes (MB)"],
    )
    for label, r in results.items():
        table.add_row(label, f"{r['restart_s']:.4f}",
                      f"{to_MB(r['bytes_back']):.0f}", f"{r['migrated_mb']:.0f}")
    speedup = results["eager"]["restart_s"] / max(1e-9, results["lazy"]["restart_s"])
    table.add_note(
        f"lazy restart resumes {speedup:.0f}x sooner and ultimately copies only "
        f"{results['lazy']['migrated_mb']:.0f} MB (the written half) instead of "
        f"{to_MB(results['eager']['bytes_back']):.0f} MB — NVM's near-DRAM reads "
        "(Table I) serve the untouched chunks in place"
    )
    report(table.render())

    assert results["lazy"]["restart_s"] < results["eager"]["restart_s"] / 2
    assert results["lazy"]["bytes_back"] == 0
    assert results["lazy"]["migrated_mb"] == to_MB(CHUNK) * (N_CHUNKS // 2)
