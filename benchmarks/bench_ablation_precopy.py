"""X2 — ablation: CPC vs DCPC vs DCPCP (§IV's three pre-copy variants).

On a hot-chunk-heavy synthetic workload, measures what each refinement
buys: CPC re-copies hot chunks after every write; DCPC delays the
start of pre-copy to the learned threshold; DCPCP additionally holds
each chunk until its predicted last write.  Expectations from §IV:
successive variants reduce redundant copies, protection faults, and
total data movement, without giving up the coordinated-step savings."""

from conftest import once, run_cluster

from repro.apps import SyntheticModel
from repro.baselines import async_noprecopy_config
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.metrics import Table
from repro.units import GB_per_sec, to_GB

ITERS = 8
NODES = 2
RANKS = 8
MODES = ["none", "cpc", "dcpc", "dcpcp"]


def app():
    return SyntheticModel(
        checkpoint_mb_per_rank=300,
        chunk_mb=25,
        hot_fraction=0.5,  # half the data is Lammps-style hot chunks
        iteration_compute_time=30.0,
    )


def config(mode):
    if mode == "none":
        return async_noprecopy_config(30, 1e6)
    return CheckpointConfig(
        local_interval=30.0, remote_interval=1e6,
        precopy=PrecopyPolicy(mode=mode), remote_precopy=False,
    )


def test_ablation_precopy_variants(benchmark, report):
    def experiment():
        return {
            mode: run_cluster(app(), config(mode), iterations=ITERS, nodes=NODES,
                              ranks_per_node=RANKS,
                              nvm_write_bandwidth=GB_per_sec(1.0),
                              with_remote=False)
            for mode in MODES
        }

    results = once(benchmark, experiment)
    table = Table(
        "X2 — pre-copy variant ablation (50% hot chunks, 1 GB/s NVM)",
        ["variant", "exec time (s)", "coord ckpt avg (s)", "data to NVM (GB)",
         "fault time (s)"],
    )
    for mode in MODES:
        r = results[mode]
        table.add_row(
            mode, f"{r.total_time:.1f}", f"{r.local_ckpt_time_avg:.2f}",
            f"{to_GB(r.total_nvm_bytes):.1f}", f"{r.fault_time_total:.2f}",
        )
    cpc, dcpc, dcpcp = results["cpc"], results["dcpc"], results["dcpcp"]
    none = results["none"]
    table.add_note(
        "CPC eagerly re-copies hot chunks (highest data volume); DCPC's "
        "threshold trims early wasted copies; DCPCP's prediction holds hot "
        "chunks until their last write (fewest redundant copies)."
    )
    report(table.render())

    # every pre-copy variant beats the blocking baseline on exec time
    for mode in ("cpc", "dcpc", "dcpcp"):
        assert results[mode].total_time < none.total_time
        assert results[mode].local_ckpt_time_avg < none.local_ckpt_time_avg
    # refinement reduces data movement: CPC >= DCPC >= DCPCP
    assert cpc.total_nvm_bytes >= dcpc.total_nvm_bytes
    assert dcpc.total_nvm_bytes >= dcpcp.total_nvm_bytes * 0.99
    # prediction reduces fault churn vs eager CPC
    assert dcpcp.fault_time_total <= cpc.fault_time_total
