"""X5 — multilevel NVM checkpointing vs the traditional PFS baseline.

The paper's introduction motivates multi-level checkpointing with the
established 30-40% gains over PFS-based checkpointing (Moody et al.,
SC'10) and the PFS's fundamental problem: its I/O bandwidth is shared
by the whole job, while node-local NVM bandwidth scales with nodes.
This bench runs the same application three ways:

1. **PFS-only** — every rank writes its checkpoint through one shared
   4 GB/s storage system (blocking, the traditional approach);
2. **NVM multilevel, no pre-copy** — local NVM checkpoints + async
   remote rounds;
3. **NVM-checkpoints (pre-copy)** — the paper's full system.
"""

from conftest import once, run_ideal

from repro.apps import LammpsModel
from repro.baselines import PfsModel, async_noprecopy_config, precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig
from repro.core import ArchiveTier
from repro.metrics import Table
from repro.units import GB_per_sec, to_GB

ITERS = 6
NODES = 4
RANKS = 12
PFS_BW = GB_per_sec(1.5)  # a small cluster partition's Lustre share


def run_arm(label, *, pfs=False, precopy=False, archive=False):
    cluster = Cluster(ClusterConfig(nodes=NODES),
                      nvm_write_bandwidth=GB_per_sec(2.0), seed=5)
    app = LammpsModel()
    cfg = precopy_config(40, 120) if precopy else async_noprecopy_config(40, 120)
    pfs_model = PfsModel(cluster.engine, aggregate_bandwidth=PFS_BW) if pfs else None
    cluster.build(app, cfg, ranks_per_node=RANKS,
                  with_remote=not pfs, pfs=pfs_model)
    tier = None
    if archive:
        archive_pfs = PfsModel(cluster.engine, aggregate_bandwidth=PFS_BW)
        tier = ArchiveTier(cluster.engine, cluster.helpers(), archive_pfs, interval=150.0)
    res = ClusterRunner(cluster, archive=tier).run(ITERS)
    res.pfs_model = pfs_model  # type: ignore[attr-defined]
    res.archive_tier = tier  # type: ignore[attr-defined]
    return res


def test_multilevel_vs_pfs(benchmark, report):
    def experiment():
        ideal = run_ideal(LammpsModel(), iterations=ITERS, nodes=NODES,
                          ranks_per_node=RANKS)
        return {
            "ideal": ideal,
            "pfs": run_arm("pfs", pfs=True),
            "multilevel": run_arm("multilevel"),
            "nvm-checkpoints": run_arm("nvm-checkpoints", precopy=True),
            "nvm-ckpt+archive": run_arm("nvm-ckpt+archive", precopy=True, archive=True),
        }

    results = once(benchmark, experiment)
    ideal = results["ideal"]
    table = Table(
        "X5 — PFS-only vs multilevel NVM checkpointing (LAMMPS, 48 ranks)",
        ["approach", "exec time (s)", "overhead %", "avg blocking ckpt (s)"],
    )
    overheads = {}
    for label in ("pfs", "multilevel", "nvm-checkpoints", "nvm-ckpt+archive"):
        r = results[label]
        ovh = (r.total_time - ideal.total_time) / ideal.total_time * 100
        overheads[label] = ovh
        table.add_row(label, f"{r.total_time:.1f}", f"{ovh:.1f}",
                      f"{r.local_ckpt_time_avg:.2f}")
    gain_multi = 1 - results["multilevel"].total_time / results["pfs"].total_time
    gain_full = 1 - results["nvm-checkpoints"].total_time / results["pfs"].total_time
    ckpt_cut = 1 - results["multilevel"].local_ckpt_time_avg / results["pfs"].local_ckpt_time_avg
    table.add_note(
        f"multilevel cuts blocking checkpoint time {ckpt_cut*100:.0f}% and "
        f"execution time {gain_multi*100:.0f}% vs PFS-only; with pre-copy "
        f"{gain_full*100:.0f}% (the paper cites 30-40% multilevel gains over "
        "PFS [Moody et al.])"
    )
    table.add_note(
        f"PFS wrote {to_GB(results['pfs'].pfs_model.total_bytes):.1f} GB through a "
        f"{PFS_BW/2**30:.0f} GB/s shared pipe ({results['pfs'].pfs_model.file_ops} file ops); "
        "node-local NVM bandwidth scales with nodes instead"
    )
    tier = results["nvm-ckpt+archive"].archive_tier
    table.add_note(
        f"the 3rd level (buddy->PFS archival every 150 s) shipped "
        f"{to_GB(tier.total_bytes):.1f} GB off the critical path for "
        f"{overheads['nvm-ckpt+archive'] - overheads['nvm-checkpoints']:+.1f} points "
        "of overhead — the full §II hierarchy"
    )
    report(table.render())

    # shape: PFS is the worst, full NVM-checkpoints the best
    assert overheads["pfs"] > overheads["multilevel"] > overheads["nvm-checkpoints"]
    # the archive tier stays off the critical path
    assert overheads["nvm-ckpt+archive"] <= overheads["nvm-checkpoints"] + 2.0
    assert tier.total_bytes > 0
    # checkpoint-time reduction vs PFS in the 30%+ regime the paper cites
    assert ckpt_cut >= 0.3
    assert gain_full >= 0.10
