"""Figures 1 & 5 — multilevel checkpoint timing diagrams.

Renders the measured phase timeline of a short run as the paper's
C/L/R diagrams and quantifies the overlap that pre-copy creates:

* Fig. 5a (no pre-copy): compute and local checkpoint strictly
  sequential; the remote round bursts after it;
* Fig. 5b/c (pre-copy): local pre-copy and the remote stream overlap
  the compute phase, shrinking the blocking L step.
"""

from conftest import once, run_cluster

from repro.apps import SyntheticModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.metrics import Table
from repro.metrics import timeline as tl
from repro.units import GB_per_sec

ITERS = 4
NODES = 2
RANKS = 2


def app():
    return SyntheticModel(
        checkpoint_mb_per_rank=200,
        chunk_mb=25,
        iteration_compute_time=30.0,
        comm_mb_per_iteration=50,
    )


def test_fig5_timing_diagrams(benchmark, report):
    def experiment():
        pre = run_cluster(app(), precopy_config(30, 60), iterations=ITERS,
                          nodes=NODES, ranks_per_node=RANKS,
                          nvm_write_bandwidth=GB_per_sec(0.5))
        nop = run_cluster(app(), async_noprecopy_config(30, 60), iterations=ITERS,
                          nodes=NODES, ranks_per_node=RANKS,
                          nvm_write_bandwidth=GB_per_sec(0.5))
        return pre, nop

    pre, nop = once(benchmark, experiment)
    actors = ["r0", "n0:helper"]
    art_nop = nop.timeline.ascii_art(width=100, actors=actors)
    art_pre = pre.timeline.ascii_art(width=100, actors=actors)

    table = Table(
        "Figure 5 — phase accounting (rank r0 + node-0 helper)",
        ["metric", "no-pre-copy (5a)", "pre-copy (5b/c)"],
    )
    for label, kind in (("blocking local ckpt time (s)", tl.LOCAL_CKPT),):
        table.add_row(label,
                      f"{nop.timeline.total(kind, actor='r0'):.2f}",
                      f"{pre.timeline.total(kind, actor='r0'):.2f}")
    table.add_row(
        "remote stream phases",
        nop.timeline.count(tl.REMOTE_PRECOPY),
        pre.timeline.count(tl.REMOTE_PRECOPY),
    )
    table.add_row("total time (s)", f"{nop.total_time:.1f}", f"{pre.total_time:.1f}")
    report(
        "Figure 5a — asynchronous no-pre-copy (C=compute, L=local ckpt, "
        "R=remote ckpt):\n" + art_nop,
        "Figure 5b/c — NVM-checkpoint pre-copy (r=remote pre-copy stream):\n" + art_pre,
        table.render(),
    )

    # shape: pre-copy shrinks the blocking L step and streams remotely
    assert (
        pre.timeline.total(tl.LOCAL_CKPT, actor="r0")
        < nop.timeline.total(tl.LOCAL_CKPT, actor="r0")
    )
    assert pre.timeline.count(tl.REMOTE_PRECOPY) > 0
    assert nop.timeline.count(tl.REMOTE_PRECOPY) == 0
    assert pre.total_time <= nop.total_time
