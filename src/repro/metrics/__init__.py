"""Measurement: phase timelines (Figs. 1/5), resource-usage collectors
(Fig. 10, Table V) and the table/series renderer used by the benchmark
harness.
"""

from .timeline import Phase, Timeline
from .collectors import InterconnectUsage, CpuUtilization, DataVolume, CrashOutcomeCounter
from .report import Table, Series, render_table, render_series

__all__ = [
    "Phase",
    "Timeline",
    "InterconnectUsage",
    "CpuUtilization",
    "DataVolume",
    "CrashOutcomeCounter",
    "Table",
    "Series",
    "render_table",
    "render_series",
]
