"""Plain-text table and series rendering for the benchmark harness.

Every ``benchmarks/bench_*.py`` prints the rows/series the paper's
corresponding table or figure reports, through these helpers, so the
output is uniform and diffable (EXPERIMENTS.md quotes it verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Table", "Series", "render_table", "render_series", "fmt"]


def fmt(value: Any, precision: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table with aligned plain-text rendering."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return render_table(self)

    def __str__(self) -> str:
        return self.render()


def render_table(table: Table) -> str:
    cells = [[fmt(c) for c in row] for row in table.rows]
    headers = [str(c) for c in table.columns]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {table.title} ==",
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"  * {note}")
    return "\n".join(lines)


@dataclass
class Series:
    """A named (x, y) series, e.g. one line of a figure."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


def render_series(
    title: str,
    series: Iterable[Series],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 72,
    height: int = 16,
) -> str:
    """ASCII scatter/line rendering of one or more series, with a
    tabular dump of the exact values underneath (the numbers are the
    deliverable; the plot is orientation)."""
    series = list(series)
    all_pts = [p for s in series for p in s.points]
    if not all_pts:
        return f"== {title} ==\n(no data)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    for si, s in enumerate(series):
        m = marks[si % len(marks)]
        for x, y in s.points:
            cx = int((x - x0) / (x1 - x0) * (width - 1))
            cy = int((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - cy][cx] = m
    lines = [f"== {title} ==", f"   {y_label} (top={fmt(y1)}, bottom={fmt(y0)})"]
    for row in grid:
        lines.append("   |" + "".join(row) + "|")
    lines.append(f"   {x_label}: {fmt(x0)} .. {fmt(x1)}")
    for si, s in enumerate(series):
        lines.append(f"   [{marks[si % len(marks)]}] {s.name}")
    # exact values
    lines.append("")
    for s in series:
        pts = "  ".join(f"({fmt(x)}, {fmt(y)})" for x, y in s.points)
        lines.append(f"   {s.name}: {pts}")
    return "\n".join(lines)
