"""Structured trace bus: typed checkpoint-pipeline events, pluggable sinks.

Every layer of the checkpoint pipeline — the engine's chunk walk, the
policy's per-chunk decisions, commits, the resilience layer's retries
and failovers — emits a typed event to a process-global
:class:`TraceBus`.  Sinks subscribe to the bus:

* :class:`RingBufferSink` — bounded in-memory tail for tests/debugging;
* :class:`JsonlSink` — newline-delimited JSON stream (``bench --trace``);
* :class:`CounterSink` — event/decision counters (bench baseline record);
* :class:`TimelineSink` — adapts copy spans onto a
  :class:`~repro.metrics.timeline.Timeline`.

Emission with zero sinks attached is a single truthiness check, so the
simulation hot path pays nothing when tracing is off.  The bus is
per-process: fork-pool executor workers inherit a *snapshot* of the
parent's sinks at fork time but their writes never reach the parent,
so attach sinks only around in-process (serial) runs.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, IO, Iterator, List, Optional

from .timeline import Timeline

__all__ = [
    "TraceEvent",
    "PolicyDecisionEvent",
    "ChunkCopiedEvent",
    "CommitEvent",
    "RetryEvent",
    "FailoverEvent",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "TimelineSink",
    "TraceBus",
    "BUS",
]


# ---------------------------------------------------------------------------
# Events.  All frozen, all JSON-serializable via dataclasses.asdict.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEvent:
    """Base event: simulated timestamp plus the emitting actor."""

    t: float
    actor: str

    @property
    def kind(self) -> str:
        """Stable wire name, e.g. ``policy.decision``."""
        return _KINDS[type(self)]

    def to_record(self) -> Dict[str, Any]:
        rec = {"kind": self.kind}
        rec.update(asdict(self))
        return rec


@dataclass(frozen=True)
class PolicyDecisionEvent(TraceEvent):
    """One ``CheckpointPolicy.decide`` outcome for one chunk."""

    chunk: str
    decision: str  # Decision.value: precopy | copy_at_checkpoint | skip
    policy: str  # policy registry name: none | cpc | dcpc | dcpcp


@dataclass(frozen=True)
class ChunkCopiedEvent(TraceEvent):
    """One chunk's data landed at a destination (t is the span end)."""

    chunk: str
    nbytes: int
    start: float  # span begin (t is the end)
    stream: str  # local | remote
    phase: str  # coordinated | precopy
    destination: str = ""
    #: pages moved by this copy (page-granular mode counts only the
    #: stale extents; chunk-granular mode counts the whole chunk)
    pages: int = 0
    #: chunk bytes NOT moved thanks to incremental extents (0 for
    #: whole-chunk copies)
    bytes_saved: int = 0


@dataclass(frozen=True)
class CommitEvent(TraceEvent):
    """A commit point: staged versions flipped and metadata persisted."""

    chunks_committed: int
    bytes_committed: int
    flush_cost: float
    destination: str = ""


@dataclass(frozen=True)
class RetryEvent(TraceEvent):
    """The resilience transport re-attempting a failed transfer."""

    target: str
    attempt: int
    delay: float
    reason: str = ""


@dataclass(frozen=True)
class FailoverEvent(TraceEvent):
    """A buddy/destination switch (orphan re-pair, degraded entry...)."""

    from_target: str
    to_target: str
    reason: str = ""


_KINDS: Dict[type, str] = {
    PolicyDecisionEvent: "policy.decision",
    ChunkCopiedEvent: "chunk.copied",
    CommitEvent: "commit",
    RetryEvent: "retry",
    FailoverEvent: "failover",
}


# ---------------------------------------------------------------------------
# Sinks.
# ---------------------------------------------------------------------------


class TraceSink:
    """Receives every event emitted while attached to the bus."""

    def handle(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; detaching does not call this."""


class RingBufferSink(TraceSink):
    """Keeps the last *capacity* events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink(TraceSink):
    """Streams each event as one JSON line to a file or file object."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def handle(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_record(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CounterSink(TraceSink):
    """Counts events by kind; policy decisions also by decision value."""

    def __init__(self) -> None:
        self.by_kind: Dict[str, int] = {}
        self.decisions: Dict[str, int] = {}

    def handle(self, event: TraceEvent) -> None:
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        if isinstance(event, PolicyDecisionEvent):
            self.decisions[event.decision] = self.decisions.get(event.decision, 0) + 1


class TimelineSink(TraceSink):
    """Adapts :class:`ChunkCopiedEvent` spans onto a Timeline, so a
    trace-driven run can render the same Figure-5 diagrams as the
    directly-instrumented paths."""

    #: (stream, phase) -> timeline kind
    _PHASE_KINDS = {
        ("local", "coordinated"): "local_ckpt",
        ("local", "precopy"): "precopy",
        ("remote", "coordinated"): "remote_ckpt",
        ("remote", "precopy"): "remote_precopy",
    }

    def __init__(self, timeline: Optional[Timeline] = None) -> None:
        self.timeline = timeline if timeline is not None else Timeline()

    def handle(self, event: TraceEvent) -> None:
        if not isinstance(event, ChunkCopiedEvent):
            return
        kind = self._PHASE_KINDS.get((event.stream, event.phase), event.phase)
        self.timeline.record(event.actor, kind, event.start, event.t)


# ---------------------------------------------------------------------------
# The bus.
# ---------------------------------------------------------------------------


class TraceBus:
    """Fan-out of trace events to the attached sinks.

    ``emit`` is called from simulation hot paths, so the no-sink case
    must stay one attribute load and one truthiness test.
    """

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []

    @property
    def active(self) -> bool:
        """True when at least one sink is attached — lets emitters skip
        building event objects entirely."""
        return bool(self._sinks)

    def emit(self, event: TraceEvent) -> None:
        if not self._sinks:
            return
        for sink in self._sinks:
            sink.handle(event)

    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @contextmanager
    def capture(self, sink: Optional[TraceSink] = None) -> Iterator[TraceSink]:
        """Attach *sink* (default: a fresh ring buffer) for the scope of
        a ``with`` block."""
        s = sink if sink is not None else RingBufferSink()
        self.attach(s)
        try:
            yield s
        finally:
            self.detach(s)


#: the process-global bus every pipeline layer emits to
BUS = TraceBus()
