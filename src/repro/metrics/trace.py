"""Structured trace bus: typed checkpoint-pipeline events, pluggable sinks.

Every layer of the checkpoint pipeline — the engine's chunk walk, the
policy's per-chunk decisions, commits, the resilience layer's retries
and failovers — emits a typed event to a process-global
:class:`TraceBus`.  Sinks subscribe to the bus:

* :class:`RingBufferSink` — bounded in-memory tail for tests/debugging;
* :class:`JsonlSink` — newline-delimited JSON stream (``bench --trace``);
* :class:`CounterSink` — event/decision counters (bench baseline record);
* :class:`TimelineSink` — adapts copy spans onto a
  :class:`~repro.metrics.timeline.Timeline`.

Emission with zero sinks attached is a single truthiness check, so the
simulation hot path pays nothing when tracing is off.  The bus is
per-process: fork-pool executor workers inherit a *snapshot* of the
parent's sinks at fork time but their writes never reach the parent,
so attach sinks only around in-process (serial) runs.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import ConfigError
from .timeline import Timeline

__all__ = [
    "TRACE_VERSION",
    "TraceEvent",
    "PolicyDecisionEvent",
    "ChunkCopiedEvent",
    "CodecDecisionEvent",
    "CommitEvent",
    "RetryEvent",
    "FailoverEvent",
    "AutotuneSwitchEvent",
    "MembershipChangeEvent",
    "MigrationPlannedEvent",
    "MigrationBatchEvent",
    "MigrationCutoverEvent",
    "MigrationAbortEvent",
    "ResyncAbortedEvent",
    "TenantAdmissionEvent",
    "TenantPreemptEvent",
    "TenantThrottleEvent",
    "TenantSloEvent",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "CounterSink",
    "TimelineSink",
    "CallbackSink",
    "TraceBus",
    "BUS",
    "event_from_record",
    "read_trace",
]

#: schema version of the Jsonl wire format.  Bump when an event gains,
#: loses or renames a field; register an upgrader in
#: :data:`_UPGRADERS` when old traces can be mechanically converted.
#: Version 2 added the elastic-membership kinds (``membership.change``,
#: ``migration.*``, ``resync.aborted``); every version-1 kind is
#: unchanged, so the 1->2 upgrader is the identity.
#: Version 3 added the payload-codec layer: ``chunk.copied`` gained
#: ``codec`` (representation that crossed the wire) and
#: ``logical_bytes`` (pre-encoding size), plus the new
#: ``codec.decision`` kind.  The 2->3 upgrader stamps old copies as
#: ``codec="raw"`` with ``logical_bytes=nbytes``.
#: Version 4 added the multi-tenant QoS layer: ``chunk.copied`` and
#: ``commit`` gained ``tenant`` (empty for untenanted runs), plus the
#: new ``tenant.admission`` / ``tenant.preempt`` / ``tenant.throttle``
#: / ``tenant.slo`` kinds.  Old records parse unchanged (the field
#: defaults to ``""``), so the 3->4 upgrader is the identity.
TRACE_VERSION = 4


# ---------------------------------------------------------------------------
# Events.  All frozen, all JSON-serializable via dataclasses.asdict.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEvent:
    """Base event: simulated timestamp plus the emitting actor."""

    t: float
    actor: str

    @property
    def kind(self) -> str:
        """Stable wire name, e.g. ``policy.decision``."""
        return _KINDS[type(self)]

    def to_record(self) -> Dict[str, Any]:
        rec = {"kind": self.kind}
        rec.update(asdict(self))
        return rec


@dataclass(frozen=True)
class PolicyDecisionEvent(TraceEvent):
    """One ``CheckpointPolicy.decide`` outcome for one chunk."""

    chunk: str
    decision: str  # Decision.value: precopy | copy_at_checkpoint | skip
    policy: str  # policy registry name: none | cpc | dcpc | dcpcp


@dataclass(frozen=True)
class ChunkCopiedEvent(TraceEvent):
    """One chunk's data landed at a destination (t is the span end)."""

    chunk: str
    nbytes: int
    start: float  # span begin (t is the end)
    stream: str  # local | remote
    phase: str  # coordinated | precopy
    destination: str = ""
    #: pages moved by this copy (page-granular mode counts only the
    #: stale extents; chunk-granular mode counts the whole chunk)
    pages: int = 0
    #: chunk bytes NOT moved thanks to incremental extents (0 for
    #: whole-chunk copies)
    bytes_saved: int = 0
    #: payload representation that crossed the wire (raw | delta | dedup;
    #: "raw" for every copy made with the codec layer off)
    codec: str = "raw"
    #: pre-encoding size of the moved extents; ``nbytes`` is the wire
    #: size, so ``logical_bytes - nbytes`` is the codec's saving
    logical_bytes: int = 0
    #: owning tenant in multi-tenant runs ("" for untenanted runs)
    tenant: str = ""


@dataclass(frozen=True)
class CodecDecisionEvent(TraceEvent):
    """The per-chunk codec policy weighed the candidate representations
    and picked one (emitted only by the ``auto`` codec, which is the
    only codec that *has* alternatives to weigh)."""

    chunk: str
    #: winning representation: full | delta | dedup
    chosen: str
    #: candidate wire costs in bytes (what each representation would
    #: have moved for this chunk's dirty extents)
    raw_bytes: int
    delta_bytes: int
    dedup_bytes: int
    #: compressibility probe result (zlib ratio; -1.0 when unmeasured,
    #: e.g. phantom chunks with no readable content)
    entropy: float = -1.0
    #: dirty density: dirty bytes / chunk bytes
    density: float = 0.0


@dataclass(frozen=True)
class CommitEvent(TraceEvent):
    """A commit point: staged versions flipped and metadata persisted."""

    chunks_committed: int
    bytes_committed: int
    flush_cost: float
    destination: str = ""
    #: owning tenant in multi-tenant runs ("" for untenanted runs)
    tenant: str = ""


@dataclass(frozen=True)
class RetryEvent(TraceEvent):
    """The resilience transport re-attempting a failed transfer."""

    target: str
    attempt: int
    delay: float
    reason: str = ""


@dataclass(frozen=True)
class FailoverEvent(TraceEvent):
    """A buddy/destination switch (orphan re-pair, degraded entry...)."""

    from_target: str
    to_target: str
    reason: str = ""


@dataclass(frozen=True)
class AutotuneSwitchEvent(TraceEvent):
    """The online policy tuner changed (or nudged) the active policy
    between two checkpoint intervals."""

    from_policy: str
    to_policy: str
    #: "bandit" for a mode switch, "nudge" for a threshold-margin nudge
    reason: str = "bandit"
    #: reward (negative cost) the closing interval earned
    reward: float = 0.0


@dataclass(frozen=True)
class MembershipChangeEvent(TraceEvent):
    """A planned membership event was applied by the
    :class:`~repro.cluster.membership.MembershipController`."""

    node: int
    #: "join" | "drain" | "depart"
    action: str
    #: re-pairings / migrations the event triggered
    moves: int = 0


@dataclass(frozen=True)
class MigrationPlannedEvent(TraceEvent):
    """The planner derived one per-node migration from the live
    buddy directory (source node's copies move between buddies)."""

    node: int
    from_target: str
    to_target: str
    #: "join" | "drain" | "failover"
    reason: str
    chunks: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class MigrationBatchEvent(TraceEvent):
    """One bounded migration batch staged and committed on the new
    buddy (t is the span end)."""

    seq: int
    chunks: int
    nbytes: int
    start: float
    #: batch ran at reduced pace because latency neared the SLO
    throttled: bool = False


@dataclass(frozen=True)
class MigrationCutoverEvent(TraceEvent):
    """Atomic buddy-ownership switch after the final batch commit."""

    from_target: str
    to_target: str
    batches: int
    nbytes: int


@dataclass(frozen=True)
class MigrationAbortEvent(TraceEvent):
    """A migration gave up before cutover; ownership stays with the
    old buddy (or falls back to a full re-sync on failover)."""

    reason: str
    batches: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class ResyncAbortedEvent(TraceEvent):
    """A :class:`~repro.resilience.resync.ResyncTask` exhausted its
    failure budget: the node stays unprotected (degraded) until the
    next repair attempt."""

    failures: int
    bytes_sent: int = 0
    chunks_sent: int = 0


@dataclass(frozen=True)
class TenantAdmissionEvent(TraceEvent):
    """The admission controller ruled on one checkpoint-job request."""

    tenant: str
    #: "admit" | "queue" | "reject"
    decision: str
    #: partition the job was placed on ("" when queued/rejected)
    partition: str = ""
    #: why (capacity | slo_risk | queue_full | ...)
    reason: str = ""
    #: jobs waiting behind this decision
    queue_depth: int = 0


@dataclass(frozen=True)
class TenantPreemptEvent(TraceEvent):
    """A best-effort tenant's running job was preempted to protect a
    guaranteed tenant's SLO."""

    tenant: str
    victim_job: str = ""
    #: guaranteed tenant whose deadline forced the preemption
    beneficiary: str = ""
    reason: str = ""


@dataclass(frozen=True)
class TenantThrottleEvent(TraceEvent):
    """A tenant ran below its demand for *duration* seconds because the
    fair-share allocator capped it (contention, not idleness)."""

    tenant: str
    duration: float
    #: share of device bandwidth the tenant held while throttled
    share: float = 0.0


@dataclass(frozen=True)
class TenantSloEvent(TraceEvent):
    """Per-tenant SLO summary at scenario end."""

    tenant: str
    jobs: int
    met: int
    attainment: float
    #: the interval/RPO target the attainment was scored against
    target: float = 0.0


_KINDS: Dict[type, str] = {
    PolicyDecisionEvent: "policy.decision",
    ChunkCopiedEvent: "chunk.copied",
    CodecDecisionEvent: "codec.decision",
    CommitEvent: "commit",
    RetryEvent: "retry",
    FailoverEvent: "failover",
    AutotuneSwitchEvent: "autotune.switch",
    MembershipChangeEvent: "membership.change",
    MigrationPlannedEvent: "migration.planned",
    MigrationBatchEvent: "migration.batch",
    MigrationCutoverEvent: "migration.cutover",
    MigrationAbortEvent: "migration.aborted",
    ResyncAbortedEvent: "resync.aborted",
    TenantAdmissionEvent: "tenant.admission",
    TenantPreemptEvent: "tenant.preempt",
    TenantThrottleEvent: "tenant.throttle",
    TenantSloEvent: "tenant.slo",
}

#: kind -> event class (the reader's inverse of :data:`_KINDS`)
_CLASSES: Dict[str, type] = {kind: cls for cls, kind in _KINDS.items()}


# ---------------------------------------------------------------------------
# Reading traces back (the replay engine's input path).
# ---------------------------------------------------------------------------

#: header-record wire name (never an event kind)
_HEADER_KIND = "trace.header"

def _upgrade_1_to_2(record: Dict[str, Any]) -> Dict[str, Any]:
    """Version 2 only *added* event kinds; every version-1 record is
    already a valid version-2 record."""
    return record


def _upgrade_2_to_3(record: Dict[str, Any]) -> Dict[str, Any]:
    """Version-2 copies predate the codec layer: every byte that moved
    was a raw byte, so wire size and logical size coincide."""
    if record.get("kind") == "chunk.copied":
        record = dict(record)
        record.setdefault("codec", "raw")
        record.setdefault("logical_bytes", record.get("nbytes", 0))
    return record


def _upgrade_3_to_4(record: Dict[str, Any]) -> Dict[str, Any]:
    """Version 4 only *added* kinds and defaulted fields (``tenant``);
    every version-3 record is already a valid version-4 record."""
    return record


#: version -> record upgrader to the *next* version.  Old traces walk
#: the chain until they reach :data:`TRACE_VERSION`.
_UPGRADERS: Dict[int, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    1: _upgrade_1_to_2,
    2: _upgrade_2_to_3,
    3: _upgrade_3_to_4,
}


def event_from_record(record: Dict[str, Any]) -> TraceEvent:
    """Rebuild the typed event from one Jsonl record.

    Unknown kinds and unknown fields raise :class:`ConfigError` — a
    trace that does not round-trip losslessly must never be silently
    replayed.
    """
    rec = dict(record)
    kind = rec.pop("kind", None)
    cls = _CLASSES.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown trace event kind {kind!r}; known kinds: "
            f"{', '.join(sorted(_CLASSES))}"
        )
    names = {f.name for f in fields(cls)}
    unknown = set(rec) - names
    if unknown:
        raise ConfigError(
            f"trace record of kind {kind!r} carries unknown fields "
            f"{sorted(unknown)} (schema drift? re-capture the trace or "
            f"register an upgrader)"
        )
    return cls(**rec)


def read_trace(
    target: str | IO[str],
) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a Jsonl trace written by :class:`JsonlSink`.

    Returns ``(meta, events)`` where *meta* is the header's metadata
    dict (the capturing run's resolved config, if the writer recorded
    one).  The first line must be a ``trace.header`` record whose
    ``trace_version`` matches :data:`TRACE_VERSION` after any
    registered upgraders run; anything else raises a clear
    :class:`ConfigError` rather than replaying garbage.
    """
    if isinstance(target, str):
        with open(target, "r", encoding="utf-8") as fh:
            return read_trace(fh)
    first = target.readline()
    if not first.strip():
        raise ConfigError("empty trace stream (no trace.header line)")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"trace header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("kind") != _HEADER_KIND:
        raise ConfigError(
            "trace stream has no trace.header first line; this trace "
            "predates the versioned schema — re-capture it (bench "
            "--trace / experiment --trace write the header)"
        )
    version = header.get("trace_version")
    upgraders: List[Callable[[Dict[str, Any]], Dict[str, Any]]] = []
    while isinstance(version, int) and version != TRACE_VERSION:
        upgrade = _UPGRADERS.get(version)
        if upgrade is None:
            break
        upgraders.append(upgrade)
        version += 1
    if version != TRACE_VERSION:
        raise ConfigError(
            f"trace_version {header.get('trace_version')!r} is not "
            f"supported (reader speaks {TRACE_VERSION} and no upgrade "
            f"path is registered)"
        )
    meta = header.get("meta") or {}
    events: List[TraceEvent] = []
    for line in target:
        if not line.strip():
            continue
        rec = json.loads(line)
        for upgrade in upgraders:
            rec = upgrade(rec)
        events.append(event_from_record(rec))
    return meta, events


# ---------------------------------------------------------------------------
# Sinks.
# ---------------------------------------------------------------------------


class TraceSink:
    """Receives every event emitted while attached to the bus."""

    def handle(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; detaching does not call this."""


class RingBufferSink(TraceSink):
    """Keeps the last *capacity* events in memory (``capacity=None``
    keeps everything — replay captures must never truncate)."""

    def __init__(self, capacity: Optional[int] = 4096) -> None:
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink(TraceSink):
    """Streams each event as one JSON line to a file or file object.

    The first line written is always a ``trace.header`` record carrying
    :data:`TRACE_VERSION` and the optional *meta* dict (conventionally
    the capturing run's resolved config), so :func:`read_trace` can
    reject schema-mismatched streams instead of replaying garbage.
    """

    def __init__(
        self, target: str | IO[str], *, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        header = {
            "kind": _HEADER_KIND,
            "trace_version": TRACE_VERSION,
            "meta": meta or {},
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")

    def handle(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_record(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CounterSink(TraceSink):
    """Counts events by kind; policy decisions also by decision value."""

    def __init__(self) -> None:
        self.by_kind: Dict[str, int] = {}
        self.decisions: Dict[str, int] = {}

    def handle(self, event: TraceEvent) -> None:
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        if isinstance(event, PolicyDecisionEvent):
            self.decisions[event.decision] = self.decisions.get(event.decision, 0) + 1


class CallbackSink(TraceSink):
    """Feeds matching events to a callback — the bus's *subscriber*
    form, used by online consumers (e.g. the policy autotuner) that
    want live statistics, not storage.  ``kinds=None`` receives every
    event; otherwise only the listed wire names."""

    def __init__(
        self,
        callback: Callable[[TraceEvent], None],
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self._callback = callback
        self._kinds = frozenset(kinds) if kinds is not None else None

    def handle(self, event: TraceEvent) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self._callback(event)


class TimelineSink(TraceSink):
    """Adapts :class:`ChunkCopiedEvent` spans onto a Timeline, so a
    trace-driven run can render the same Figure-5 diagrams as the
    directly-instrumented paths."""

    #: (stream, phase) -> timeline kind
    _PHASE_KINDS = {
        ("local", "coordinated"): "local_ckpt",
        ("local", "precopy"): "precopy",
        ("remote", "coordinated"): "remote_ckpt",
        ("remote", "precopy"): "remote_precopy",
    }

    def __init__(self, timeline: Optional[Timeline] = None) -> None:
        self.timeline = timeline if timeline is not None else Timeline()

    def handle(self, event: TraceEvent) -> None:
        if not isinstance(event, ChunkCopiedEvent):
            return
        kind = self._PHASE_KINDS.get((event.stream, event.phase), event.phase)
        self.timeline.record(event.actor, kind, event.start, event.t)


# ---------------------------------------------------------------------------
# The bus.
# ---------------------------------------------------------------------------


class TraceBus:
    """Fan-out of trace events to the attached sinks.

    ``emit`` is called from simulation hot paths, so the no-sink case
    must stay one attribute load and one truthiness test.
    """

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []

    @property
    def active(self) -> bool:
        """True when at least one sink is attached — lets emitters skip
        building event objects entirely."""
        return bool(self._sinks)

    def emit(self, event: TraceEvent) -> None:
        if not self._sinks:
            return
        for sink in self._sinks:
            sink.handle(event)

    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def subscribe(
        self,
        callback: Callable[[TraceEvent], None],
        kinds: Optional[Iterable[str]] = None,
    ) -> CallbackSink:
        """Attach a callback subscriber for the given event kinds and
        return its sink handle (pass it to :meth:`unsubscribe`)."""
        sink = CallbackSink(callback, kinds)
        self.attach(sink)
        return sink

    def unsubscribe(self, sink: TraceSink) -> None:
        self.detach(sink)

    @contextmanager
    def capture(self, sink: Optional[TraceSink] = None) -> Iterator[TraceSink]:
        """Attach *sink* (default: a fresh ring buffer) for the scope of
        a ``with`` block."""
        s = sink if sink is not None else RingBufferSink()
        self.attach(s)
        try:
            yield s
        finally:
            self.detach(s)


#: the process-global bus every pipeline layer emits to
BUS = TraceBus()
