"""Phase timelines: who did what when (compute / local checkpoint /
remote checkpoint / pre-copy / restart), reproducing the timing
diagrams of Figures 1 and 5 as data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Phase", "Timeline"]

#: canonical phase names (the paper's C/L/R plus ours)
COMPUTE = "compute"
LOCAL_CKPT = "local_ckpt"
REMOTE_CKPT = "remote_ckpt"
PRECOPY = "precopy"
REMOTE_PRECOPY = "remote_precopy"
RESTART = "restart"
BLOCKED = "blocked"
#: resilience layer: no healthy remote target (local-only operation)
DEGRADED = "degraded"
#: resilience layer: paced re-send of committed chunks to a new buddy
RESYNC = "resync"
#: planned live migration of remote copies to a new buddy
MIGRATION = "migration"
#: transient link flap window on a node's checkpoint path
OUTAGE = "outage"


@dataclass(frozen=True)
class Phase:
    """One closed interval of activity by one actor."""

    actor: str
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Append-only phase log with per-actor/per-kind aggregation."""

    def __init__(self) -> None:
        self.phases: List[Phase] = []
        self._open: Dict[Tuple[str, str], float] = {}

    # -- recording ------------------------------------------------------------

    def record(self, actor: str, kind: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"phase ends before it starts: {start} > {end}")
        self.phases.append(Phase(actor, kind, start, end))

    def begin(self, actor: str, kind: str, now: float) -> None:
        """Open a phase; close it with :meth:`end`."""
        self._open[(actor, kind)] = now

    def end(self, actor: str, kind: str, now: float) -> None:
        start = self._open.pop((actor, kind), None)
        if start is None:
            raise ValueError(f"no open phase {kind!r} for actor {actor!r}")
        self.record(actor, kind, start, now)

    # -- aggregation --------------------------------------------------------------

    def total(self, kind: str, actor: Optional[str] = None) -> float:
        """Total time spent in *kind* (optionally for one actor)."""
        return sum(
            p.duration
            for p in self.phases
            if p.kind == kind and (actor is None or p.actor == actor)
        )

    def count(self, kind: str, actor: Optional[str] = None) -> int:
        return sum(
            1 for p in self.phases if p.kind == kind and (actor is None or p.actor == actor)
        )

    def actors(self) -> List[str]:
        return sorted({p.actor for p in self.phases})

    def kinds(self) -> List[str]:
        return sorted({p.kind for p in self.phases})

    def for_actor(self, actor: str) -> List[Phase]:
        return sorted((p for p in self.phases if p.actor == actor), key=lambda p: p.start)

    def span(self) -> Tuple[float, float]:
        if not self.phases:
            return (0.0, 0.0)
        return (min(p.start for p in self.phases), max(p.end for p in self.phases))

    def overlap(self, kind_a: str, kind_b: str) -> float:
        """Total time during which a *kind_a* phase (any actor) overlaps
        a *kind_b* phase — quantifies how much checkpointing was hidden
        under compute (the whole point of Figure 5)."""
        a = sorted(
            ((p.start, p.end) for p in self.phases if p.kind == kind_a), key=lambda t: t[0]
        )
        b = sorted(
            ((p.start, p.end) for p in self.phases if p.kind == kind_b), key=lambda t: t[0]
        )
        total = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total

    # -- rendering --------------------------------------------------------------------

    _GLYPHS = {
        COMPUTE: "C",
        LOCAL_CKPT: "L",
        REMOTE_CKPT: "R",
        PRECOPY: "p",
        REMOTE_PRECOPY: "r",
        RESTART: "X",
        BLOCKED: ".",
        DEGRADED: "D",
        RESYNC: "s",
        OUTAGE: "o",
        MIGRATION: "m",
    }

    def ascii_art(self, width: int = 100, actors: Optional[List[str]] = None) -> str:
        """The Figure-5 diagram as ASCII: one row per actor, one glyph
        per time bucket (C=compute, L=local ckpt, R=remote ckpt,
        p/r=local/remote pre-copy, X=restart)."""
        t0, t1 = self.span()
        if t1 <= t0:
            return "(empty timeline)"
        scale = width / (t1 - t0)
        rows = []
        for actor in actors or self.actors():
            row = [" "] * width
            for p in self.for_actor(actor):
                g = self._GLYPHS.get(p.kind, p.kind[:1])
                lo = int((p.start - t0) * scale)
                hi = max(lo + 1, int((p.end - t0) * scale))
                for k in range(lo, min(hi, width)):
                    row[k] = g
            rows.append(f"{actor:>12} |{''.join(row)}|")
        legend = "  ".join(f"{g}={k}" for k, g in self._GLYPHS.items())
        return "\n".join(rows) + f"\n{'':>12}  [{t0:.1f}s .. {t1:.1f}s]  {legend}"
