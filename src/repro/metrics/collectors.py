"""Resource-usage collectors built on the simulator's raw trackers.

* :class:`InterconnectUsage` — per-window transfer volumes and peaks on
  a fabric link (Figure 10's series);
* :class:`CpuUtilization` — busy-time based utilization per owner
  (Table V's helper-core numbers);
* :class:`DataVolume` — bytes moved per tag on any bandwidth resource
  (Figures 7/8's 'total data copied to NVM' right axis);
* :class:`CrashOutcomeCounter` — per-crash-point outcome tallies from
  fault-injection campaigns (the ``make faults`` matrix table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim.resources import BandwidthResource, CpuCores

__all__ = ["InterconnectUsage", "CpuUtilization", "DataVolume", "CrashOutcomeCounter"]


class InterconnectUsage:
    """Windowed view of traffic through one bandwidth resource."""

    def __init__(self, resource: BandwidthResource) -> None:
        self.resource = resource

    def series(self, window: float, t_end: float, t_start: float = 0.0) -> List[Tuple[float, float]]:
        """``(window_start, avg_bytes_per_sec)`` per window — the
        Fig. 10 timeline."""
        return self.resource.utilization.windowed_series(window, t_end, t_start)

    def peak_rate(self, t_start: float = 0.0, t_end: float = float("inf")) -> float:
        """Instantaneous peak aggregate rate (bytes/s)."""
        return self.resource.utilization.peak(t_start, t_end)

    def peak_window_volume(self, window: float, t_end: float, t_start: float = 0.0) -> float:
        """Largest per-window byte volume — the paper's 'peak
        interconnect usage' metric."""
        series = self.series(window, t_end, t_start)
        return max((v * window for _, v in series), default=0.0)

    def total_bytes(self, tag: str = "") -> float:
        if tag:
            return self.resource.bytes_by_tag.get(tag, 0.0)
        return self.resource.total_bytes


class CpuUtilization:
    """Busy-time utilization per owner over an observation span."""

    def __init__(self, cpu: CpuCores) -> None:
        self.cpu = cpu

    def utilization(self, owner: str, elapsed: float) -> float:
        """Fraction of one core *owner* kept busy over *elapsed*."""
        if elapsed <= 0:
            return 0.0
        return self.cpu.busy_time(owner) / elapsed

    def node_utilization(self, elapsed: float) -> float:
        """Node-wide utilization across all cores."""
        if elapsed <= 0:
            return 0.0
        return self.cpu.total_busy_time() / (elapsed * self.cpu.capacity)

    def by_owner(self, elapsed: float) -> Dict[str, float]:
        return {
            owner: self.cpu.busy_time(owner) / elapsed
            for owner in sorted(self.cpu._busy_time)
        }


@dataclass
class DataVolume:
    """Per-tag byte totals on a bandwidth resource."""

    resource: BandwidthResource

    def by_tag(self) -> Dict[str, float]:
        return dict(sorted(self.resource.bytes_by_tag.items()))

    def total(self, *tags: str) -> float:
        if not tags:
            return self.resource.total_bytes
        return sum(self.resource.bytes_by_tag.get(t, 0.0) for t in tags)

    def matching(self, prefix: str) -> float:
        """Total bytes across tags starting with *prefix* (tags are
        commonly ``'{rank}:{kind}'``)."""
        return sum(v for k, v in self.resource.bytes_by_tag.items() if k.startswith(prefix))

    def suffix(self, suffix: str) -> float:
        """Total bytes across tags ending with *suffix* (kind-level
        aggregation across ranks)."""
        return sum(v for k, v in self.resource.bytes_by_tag.items() if k.endswith(suffix))


@dataclass
class CrashOutcomeCounter:
    """Tally of fault-injection outcomes, keyed by crash point.

    Fed by the crash-point matrix (tests and ``tools/faultmatrix``):
    each run records ``(crash_point, outcome)`` where outcome is one of
    the :mod:`repro.faults.harness` outcome constants ('consistent',
    'consistent-inflight', 'recovered-remote', 'unrecoverable', ...).
    """

    #: (point, outcome) -> count; None point = run that never crashed.
    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, point: str, outcome: str) -> None:
        key = (point or "<none>", outcome)
        self.counts[key] = self.counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def by_point(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for (pt, outcome), n in sorted(self.counts.items()):
            out.setdefault(pt, {})[outcome] = n
        return out

    def by_outcome(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (_, outcome), n in self.counts.items():
            out[outcome] = out.get(outcome, 0) + n
        return dict(sorted(out.items()))

    def count(self, outcome: str) -> int:
        return sum(n for (_, oc), n in self.counts.items() if oc == outcome)

    def table(self) -> str:
        """Fixed-width outcome table, one row per crash point."""
        rows = self.by_point()
        if not rows:
            return "(no outcomes recorded)"
        width = max(len(pt) for pt in rows)
        lines = [f"{'crash point':<{width}}  outcome                n"]
        lines.append("-" * (width + 26))
        for pt, outcomes in rows.items():
            for outcome, n in sorted(outcomes.items()):
                lines.append(f"{pt:<{width}}  {outcome:<20} {n:>4}")
        totals = self.by_outcome()
        lines.append("-" * (width + 26))
        for outcome, n in totals.items():
            lines.append(f"{'TOTAL':<{width}}  {outcome:<20} {n:>4}")
        return "\n".join(lines)
