"""Hardware and experiment parameter sets.

The defaults encode the paper's assumptions:

* Table I   — PCM vs DRAM latency/bandwidth (5-year Numonyx projection);
* §VI       — 8 nodes x 12 x 2.8 GHz Xeon cores, 48 GB DRAM, 40 Gb/s IB,
              half of DRAM partitioned off as emulated NVM;
* §III/§VI  — failure-rate and checkpoint-interval choices (local
              interval 40 s, remote 47-180 s, Dong et al. MTBF ranges).

Everything is a frozen dataclass so that experiment sweeps construct
variants with :func:`dataclasses.replace` rather than mutating shared
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import (
    GB,
    GB_per_sec,
    Gbit_per_sec,
    PAGE_SIZE,
    nsec,
    usec,
)

__all__ = [
    "DeviceConfig",
    "DRAM_CONFIG",
    "PCM_CONFIG",
    "BandwidthModelConfig",
    "RamdiskConfig",
    "NodeConfig",
    "InterconnectConfig",
    "ClusterConfig",
    "PrecopyPolicy",
    "AutotuneConfig",
    "MigrationConfig",
    "ResilienceConfig",
    "CheckpointConfig",
    "FailureConfig",
]


# ---------------------------------------------------------------------------
# Memory devices (Table I).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceConfig:
    """Performance/capacity parameters of a memory device.

    ``write_bandwidth`` is the *device* (die) bandwidth; the effective
    per-core bandwidth under contention is derived by
    :class:`repro.memory.bandwidth.CoreContentionModel`.
    """

    name: str
    capacity: int
    read_bandwidth: float  # bytes/s, device peak
    write_bandwidth: float  # bytes/s, device peak
    page_read_latency: float  # seconds, per-page
    page_write_latency: float  # seconds, per-page
    byte_addressable: bool = True
    persistent: bool = False
    #: writes per cell before wear-out (1e8 PCM vs 1e16 DRAM).
    write_endurance: float = 1e16
    #: energy per written bit, joules (PCM ~40x DRAM per the paper).
    write_energy_per_bit: float = 1.0e-12
    page_size: int = PAGE_SIZE

    def scaled(self, write_bandwidth: float) -> "DeviceConfig":
        """A copy of this device with a different peak write bandwidth
        (used for NVM bandwidth sweeps in Figs. 7-9)."""
        return replace(self, write_bandwidth=write_bandwidth)


#: DRAM per Table I: ~8 GB/s write bandwidth, 20-50 ns page latencies.
DRAM_CONFIG = DeviceConfig(
    name="dram",
    capacity=GB(24),  # half of the 48 GB node (other half emulates NVM)
    read_bandwidth=GB_per_sec(8.0),
    write_bandwidth=GB_per_sec(8.0),
    page_read_latency=nsec(35.0),
    page_write_latency=nsec(35.0),
    persistent=False,
    write_endurance=1e16,
    write_energy_per_bit=1.0e-12,
)

#: PCM per Table I: ~2 GB/s write bandwidth, ~1 us page write, ~50 ns
#: page read, 1e8 endurance, 40x DRAM write energy.
PCM_CONFIG = DeviceConfig(
    name="pcm",
    capacity=GB(24),
    read_bandwidth=GB_per_sec(8.0),  # reads comparable to DRAM (Table I)
    write_bandwidth=GB_per_sec(2.0),
    page_read_latency=nsec(50.0),
    page_write_latency=usec(1.0),
    persistent=True,
    write_endurance=1e8,
    write_energy_per_bit=40.0e-12,
)


# ---------------------------------------------------------------------------
# Per-core bandwidth contention (Figure 4).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BandwidthModelConfig:
    """Calibration of the per-core effective-bandwidth contention curve.

    Figure 4 (LANL parallel memcpy) shows per-core copy bandwidth
    dropping ~67% from 1 to 12 concurrent processes even for 33 MB
    blocks.  We model the device bus as processor sharing with

    * a per-flow cap: one core drives at most ``single_core_fraction``
      of the device's peak bandwidth (a single thread cannot saturate a
      DDR bus);
    * an interference term shrinking usable capacity with concurrency:
      ``C_eff(n) = C / (1 + alpha * (n - 1))`` (bank conflicts, row
      misses).

    Per-core rate is ``min(single_core_fraction*C, C_eff(n)/n)``.  With
    the defaults (0.25, 0.01) the 1->12-process per-core drop is ~70%,
    matching Fig. 4's shape: flat up to ~4 writers, then ~1/n decay.
    """

    single_core_fraction: float = 0.25
    alpha: float = 0.01
    #: below this block size, per-transfer fixed overhead dominates.
    small_block_overhead: float = usec(10.0)


# ---------------------------------------------------------------------------
# Ramdisk/VFS baseline cost model (§IV MADBench2 analysis).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RamdiskConfig:
    """Cost model of the ramdisk (tmpfs + VFS) checkpoint path vs the
    in-memory (allocation + memcpy) path.

    Calibrated against the paper's MADBench2 profiling (§IV): at
    300 MB/core the ramdisk path is ~46% slower than the memcpy path,
    executes ~3x more kernel synchronization calls, spends ~31% more
    time waiting on kernel locks, and the gap *widens* with data size
    (lock hold times grow with the cached file size, hence the
    quadratic lock-wait term).
    """

    #: user->kernel transition per I/O syscall.
    syscall_latency: float = usec(0.8)
    #: write() granularity applications typically use on the I/O path.
    io_block_size: int = 512 * 1024
    #: VFS serialization (marshalling through the page cache): seconds
    #: per byte of checkpoint data.
    serialization_per_byte: float = 0.8 / GB(1)
    #: kernel synchronization calls per I/O syscall on the VFS path
    #: (vs 1 per block on the memory path) — the paper's '3x'.
    sync_calls_per_io: int = 3
    #: memory-path kernel overhead (minor faults on allocation),
    #: seconds per byte.
    memory_path_per_byte: float = 0.25 / GB(1)
    #: quadratic VFS lock-wait coefficient, seconds per GB^2 (kernel
    #: metadata lock hold times grow with cached file size).
    lock_wait_quadratic: float = 0.92
    #: lock-contention scaling with concurrent writers per node.
    lock_contention_alpha: float = 0.02


# ---------------------------------------------------------------------------
# Nodes and cluster (§VI methodology).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeConfig:
    """One compute node: cores + DRAM + node-local NVM."""

    cores: int = 12
    core_ghz: float = 2.8
    dram: DeviceConfig = DRAM_CONFIG
    nvm: DeviceConfig = PCM_CONFIG
    bandwidth_model: BandwidthModelConfig = BandwidthModelConfig()


@dataclass(frozen=True)
class InterconnectConfig:
    """Fabric parameters (40 Gb/s InfiniBand in the paper)."""

    link_bandwidth: float = Gbit_per_sec(40.0)
    rdma_latency: float = usec(2.0)
    #: per-message setup cost charged to the initiating CPU.
    message_overhead: float = usec(1.0)
    #: usable fraction of line rate (protocol efficiency).
    efficiency: float = 0.9

    @property
    def effective_bandwidth(self) -> float:
        """Usable bytes/second on one link."""
        return self.link_bandwidth * self.efficiency


@dataclass(frozen=True)
class ClusterConfig:
    """The evaluation testbed: 8 nodes, 12 cores each, 40 Gb/s IB."""

    nodes: int = 8
    node: NodeConfig = NodeConfig()
    interconnect: InterconnectConfig = InterconnectConfig()
    #: racks for buddy placement (remote checkpoints go cross-rack).
    racks: int = 2

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores


# ---------------------------------------------------------------------------
# Checkpoint policies (§IV).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrecopyPolicy:
    """Which pre-copy variant the runtime runs.

    * ``NONE``  — blocking checkpoint only (the 'no pre-copy' baseline);
    * ``CPC``   — chunk pre-copy from the start of each interval;
    * ``DCPC``  — delayed chunk pre-copy (threshold ``T_p = I - D/BW``);
    * ``DCPCP`` — delayed pre-copy with the per-chunk prediction table.
    """

    NONE = "none"
    CPC = "cpc"
    DCPC = "dcpc"
    DCPCP = "dcpcp"

    mode: str = "dcpcp"
    #: dirty-tracking granularity: "chunk" (the paper's design) or
    #: "page" (the strawman §IV rejects: every written page faults,
    #: ~3 s of fault handling per GB of fully-rewritten data).
    granularity: str = "chunk"
    #: safety margin multiplier on the computed copy time T_c when
    #: deriving the threshold T_p (adapts for estimate error).
    threshold_margin: float = 1.25
    #: exponential smoothing factor for interval/size re-estimation.
    adapt_smoothing: float = 0.5
    #: cost charged per protection fault (paper: 6-12 usec).
    fault_cost: float = usec(9.0)
    #: copy granularity: "chunk" copies whole dirty chunks (the
    #: pre-incremental behaviour, and the default); "page" copies only
    #: the coalesced dirty-page extents recorded since each version
    #: slot was last refreshed (the kernel nvdirty path, §V).
    copy_granularity: str = "chunk"
    #: payload representation on the wire: "raw" ships extent bytes
    #: verbatim (the golden baseline); "delta" XORs against the
    #: committed shadow version; "dedup" references a content-addressed
    #: block store; "auto" picks the cheapest per chunk per round and
    #: emits ``codec.decision`` trace events.
    codec: str = "raw"
    #: content block size for digesting/delta (bytes; power of two).
    codec_block: int = 4096

    def __post_init__(self) -> None:
        valid = {self.NONE, self.CPC, self.DCPC, self.DCPCP}
        if self.mode not in valid:
            raise ConfigError(
                f"unknown pre-copy mode {self.mode!r}; expected one of {sorted(valid)}"
            )
        if self.granularity not in ("chunk", "page"):
            raise ConfigError(f"unknown granularity {self.granularity!r}")
        if self.copy_granularity not in ("chunk", "page"):
            raise ConfigError(
                f"unknown copy granularity {self.copy_granularity!r}"
            )
        if self.codec not in ("raw", "delta", "dedup", "auto"):
            raise ConfigError(
                f"unknown codec {self.codec!r}; expected one of "
                "['auto', 'dedup', 'delta', 'raw']"
            )
        if self.codec_block <= 0 or self.codec_block & (self.codec_block - 1):
            raise ConfigError(
                f"codec_block must be a positive power of two, got {self.codec_block}"
            )

    @property
    def incremental(self) -> bool:
        """True when page-granular incremental copy is on."""
        return self.copy_granularity == "page"

    @property
    def codec_enabled(self) -> bool:
        """True when a non-raw payload codec is on the wire."""
        return self.codec != "raw"


@dataclass(frozen=True)
class AutotuneConfig:
    """Knobs for the online policy tuner
    (:class:`repro.core.autotune.OnlinePolicyTuner`): a per-rank bandit
    over the pre-copy modes plus optional threshold-margin nudging.
    Off by default — a run without autotuning stays byte-identical to
    the pre-tuner pipeline."""

    enabled: bool = False
    #: "epsilon" (decaying epsilon-greedy) or "ucb" (UCB1 on costs).
    strategy: str = "epsilon"
    #: candidate policy modes the bandit pulls from.
    arms: tuple = (
        PrecopyPolicy.NONE,
        PrecopyPolicy.CPC,
        PrecopyPolicy.DCPC,
        PrecopyPolicy.DCPCP,
    )
    #: initial exploration probability (epsilon-greedy strategy).
    epsilon: float = 0.3
    #: per-interval multiplicative epsilon decay.
    epsilon_decay: float = 0.95
    #: UCB exploration coefficient.
    ucb_c: float = 0.5
    #: weight of wasted pre-copy traffic (seconds of bus time) in the
    #: per-interval cost next to the blocking checkpoint duration.
    waste_weight: float = 0.5
    #: also nudge the DCPC threshold margin while a threshold policy
    #: holds the arm.
    nudge_margin: bool = False
    #: margin step per nudge (clamped to [1.0, 4.0]).
    margin_step: float = 0.1
    #: RNG seed for exploration draws (per-rank tuners derive from it).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("epsilon", "ucb"):
            raise ConfigError(
                f"unknown autotune strategy {self.strategy!r}; "
                "expected 'epsilon' or 'ucb'"
            )
        if not self.arms:
            raise ConfigError("autotune needs at least one arm")
        valid = {
            PrecopyPolicy.NONE,
            PrecopyPolicy.CPC,
            PrecopyPolicy.DCPC,
            PrecopyPolicy.DCPCP,
        }
        unknown = [a for a in self.arms if a not in valid]
        if unknown:
            raise ConfigError(f"unknown autotune arms {unknown!r}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError("epsilon must be in [0, 1]")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise ConfigError("epsilon_decay must be in (0, 1]")


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs for planned live chunk migration
    (:mod:`repro.resilience.migration`): bounded-batch moves of a
    node's remote copies to a new buddy while the old pairing stays
    live, with an SLO guard that pauses batches when per-interval
    checkpoint latency is at risk.  Off by default — runs without
    elastic membership stay byte-identical to the pre-migration
    pipeline."""

    enabled: bool = False
    #: max bytes staged per migration batch (Megaphone-style bound:
    #: small batches cap the latency a migration can add at once).
    batch_bytes: int = 64 * 1024 * 1024
    #: per-interval coordinated-checkpoint latency SLO (seconds).
    #: ``inf`` disables the guard entirely.
    slo_checkpoint_latency: float = float("inf")
    #: fraction of the SLO at which migration batches *pause*.
    slo_risk_fraction: float = 0.8
    #: fraction of the SLO at which batch pacing *throttles* (halves).
    slo_throttle_fraction: float = 0.5
    #: seconds between SLO re-checks while a migration is paused.
    slo_check_interval: float = 2.0
    #: migration stream rate as a fraction of the helper's pace rate
    #: (migration yields bandwidth to the pre-copy stream).
    pace_fraction: float = 0.5
    #: consecutive send failures before a migration aborts.
    failure_limit: int = 10
    #: pause after a failed batch send before retrying.
    retry_pause: float = 2.0

    def __post_init__(self) -> None:
        if self.batch_bytes <= 0:
            raise ConfigError("batch_bytes must be positive")
        if self.slo_checkpoint_latency <= 0:
            raise ConfigError("slo_checkpoint_latency must be positive")
        if not 0.0 < self.slo_risk_fraction <= 1.0:
            raise ConfigError("slo_risk_fraction must be in (0, 1]")
        if not 0.0 < self.slo_throttle_fraction <= 1.0:
            raise ConfigError("slo_throttle_fraction must be in (0, 1]")
        if self.slo_check_interval <= 0:
            raise ConfigError("slo_check_interval must be positive")
        if not 0.0 < self.pace_fraction <= 1.0:
            raise ConfigError("pace_fraction must be in (0, 1]")
        if self.failure_limit < 1:
            raise ConfigError("failure_limit must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the resilience layer (:mod:`repro.resilience`): retry
    policy around remote transfers, buddy heartbeats, and degraded-mode
    behaviour while a node has no healthy remote target.

    Defaults keep the success path byte-identical to a run without the
    layer: a transfer that completes on its first attempt consumes no
    extra RNG draws and finishes at the same virtual time.
    """

    enabled: bool = True
    # -- retry/backoff around rdma_put/rdma_get --
    #: attempts per transfer before giving up with TransferFailed.
    retry_max_attempts: int = 8
    #: first backoff delay (seconds); grows by ``retry_backoff``x.
    retry_base_delay: float = 0.5
    #: cap on a single backoff delay.
    retry_max_delay: float = 8.0
    retry_backoff: float = 2.0
    #: +/- fraction of each delay drawn from a named RNG stream.
    retry_jitter: float = 0.25
    #: per-attempt stall timeout: cancel and re-issue the flow.
    transfer_timeout: float = 60.0
    #: total wall (virtual) budget per transfer before TransferFailed.
    transfer_deadline: float = 300.0
    # -- buddy heartbeats --
    heartbeat_interval: float = 2.0
    heartbeat_timeout: float = 1.0
    #: consecutive missed beats before the buddy is declared down.
    heartbeat_miss_threshold: int = 2
    heartbeat_bytes: int = 64
    # -- degraded mode --
    #: floor for the re-solved local-only checkpoint interval.
    degraded_min_interval: float = 5.0
    #: give up on a re-sync after this many consecutive send failures
    #: (the node then stays degraded until the next repair attempt).
    resync_failure_limit: int = 25
    # -- planned live migration (elastic membership) --
    migration: MigrationConfig = MigrationConfig()


@dataclass(frozen=True)
class CheckpointConfig:
    """Intervals, versioning and remote policy for a run."""

    #: seconds between coordinated local checkpoints (paper uses 40 s).
    local_interval: float = 40.0
    #: seconds between remote checkpoints (paper sweeps 47-180 s).
    remote_interval: float = 120.0
    precopy: PrecopyPolicy = PrecopyPolicy()
    #: pre-copy for the *remote* stream too (the paper's remote design).
    remote_precopy: bool = True
    #: keep two versions (committed + in-progress); if False, single
    #: version locally and failures fetch from the remote copy.
    two_versions: bool = True
    #: store/verify per-chunk checksums (optional feature, §V).
    checksums: bool = True
    #: dedicated helper core for the asynchronous remote process.
    helper_core: bool = True
    #: retry/heartbeat/degraded-mode behaviour (repro.resilience).
    resilience: ResilienceConfig = ResilienceConfig()
    #: online policy autotuning (repro.core.autotune); off by default.
    autotune: AutotuneConfig = AutotuneConfig()


# ---------------------------------------------------------------------------
# Failure model (§III / §VI).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailureConfig:
    """Exponential failure injection split into soft (local-recoverable)
    and hard (remote-recovery) failures.

    The ASCI-Q observation in the paper: ~64% of failures are soft.
    ``mtbf_local``/``mtbf_remote`` are per-*node* MTBFs in seconds.
    """

    mtbf_local: float = 3600.0
    mtbf_remote: float = 14400.0
    #: per-node MTBF of *transient* link flaps (NIC resets, switch
    #: reroutes): the node's checkpoint-path connectivity drops for a
    #: random outage window, then heals on its own.  ``inf`` (the
    #: default) disables them, leaving existing schedules bit-identical.
    mtbf_transient: float = float("inf")
    #: mean of the exponential outage window for transient failures.
    transient_outage_mean: float = 10.0
    #: restart fetch times are proportional to checkpoint times (§III);
    #: these multipliers express that proportionality.
    local_restart_factor: float = 1.0
    remote_restart_factor: float = 1.0
    seed: int = 0x5EED

    @property
    def soft_fraction(self) -> float:
        """Fraction of failures that are soft, implied by the two rates."""
        lam_l = 1.0 / self.mtbf_local
        lam_r = 1.0 / self.mtbf_remote
        return lam_l / (lam_l + lam_r)

    @staticmethod
    def from_rates(
        lambda_total: float, soft_fraction: float = 0.64, seed: int = 0x5EED
    ) -> "FailureConfig":
        """Build from a total failure rate and a soft-failure share
        (defaults to the paper's 64% ASCI-Q soft-error fraction)."""
        if not 0.0 < soft_fraction < 1.0:
            raise ValueError("soft_fraction must be in (0, 1)")
        if lambda_total <= 0.0:
            raise ValueError("lambda_total must be positive")
        lam_l = lambda_total * soft_fraction
        lam_r = lambda_total * (1.0 - soft_fraction)
        return FailureConfig(
            mtbf_local=1.0 / lam_l, mtbf_remote=1.0 / lam_r, seed=seed
        )
