"""Chunks: the unit of allocation, dirt tracking, pre-copy and
checkpointing.

A chunk (§V) is one application data structure allocated through the
NVM interface.  It owns:

* a **DRAM working copy** the application computes on (real numpy
  buffer, or *phantom* — size-only — for cluster-scale simulations);
* **two NVM shadow versions** (committed / in-progress) so a crash
  mid-checkpoint always leaves a consistent version;
* **dirty bits** — one for the local checkpoint stream and one for the
  remote stream (§V: 'each chunk structure has two dirty bit flags');
* chunk-level **write protection** state: after a pre-copy all pages
  are protected; the first write takes one fault, unprotects the whole
  chunk and marks it dirty (this is what makes chunk-granular tracking
  cheap relative to page-granular);
* a modification counter + last-touch time feeding the DCPCP
  prediction table;
* an optional **checksum** over each committed version (§V restart
  component).
"""

from __future__ import annotations

import itertools
import zlib
from enum import Enum
from typing import Any, Callable, List, Optional

import numpy as np

from ..errors import CheckpointError
from ..faults.crashpoints import fire
from ..memory.nvmm import NvmRegion
from ..memory.page import StalePageMap
from ..units import pages_of

__all__ = ["Chunk", "ChunkState", "batch_commit"]


class ChunkState(Enum):
    """Lifecycle of the in-progress version during a checkpoint."""

    IDLE = "idle"
    PRECOPYING = "precopying"
    CHECKPOINTING = "checkpointing"


class Chunk:
    """One checkpointable data structure.

    Callers never construct chunks directly — use
    :class:`repro.alloc.nvmalloc.NVAllocator`.
    """

    #: global monotonic incarnation source: a fresh value per chunk
    #: construction and per event that breaks the id->content mapping
    #: (restore, lazy-restart migration, resize), so caches keyed by
    #: ``(chunk_id, incarnation, ...)`` can never serve stale data
    #: across a free/realloc or restart.
    _incarnations = itertools.count()

    def __init__(
        self,
        chunk_id: int,
        name: str,
        nbytes: int,
        *,
        persistent: bool = True,
        phantom: bool = False,
        dram_buffer: Optional[np.ndarray] = None,
        nvm_versions: Optional[List[NvmRegion]] = None,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.chunk_id = chunk_id
        self.name = name
        self.nbytes = nbytes
        self.persistent = persistent
        self.phantom = phantom
        #: DRAM working copy (flat uint8); None iff phantom.
        self.dram = dram_buffer
        #: NVM shadow regions; 1 (single-version mode) or 2 entries.
        self.versions: List[NvmRegion] = nvm_versions or []
        #: index of the last fully committed version, or -1 if none.
        self.committed_version = -1
        #: checksum of each version's committed payload (None until set).
        self.checksums: List[Optional[int]] = [None] * max(1, len(self.versions))
        self._clock = clock

        # -- dirt / protection state -------------------------------------
        self.dirty_local = True  # fresh chunks must enter the first ckpt
        self.dirty_remote = True
        self.protected = False
        #: per-stream copy state: the local stream (shadow buffering /
        #: local pre-copy) and the remote stream (helper) may operate
        #: on the same chunk concurrently — they read the same DRAM
        #: copy but write different destinations.
        self.state_local = ChunkState.IDLE
        self.state_remote = ChunkState.IDLE
        #: total protection faults taken against this chunk.
        self.fault_count = 0
        #: modifications in the current checkpoint interval.
        self.mods_this_interval = 0
        #: total modifications over the chunk's lifetime.
        self.total_mods = 1  # the initializing write
        self.last_modified = clock()
        #: staged into the in-progress NVM version but not yet
        #: committed (set by stage_to_nvm, cleared by commit) — the
        #: coordinated step commits every such chunk, including ones
        #: the pre-copy engine staged during the interval.
        self.staged_pending = False
        #: bytes copied to NVM on behalf of this chunk (incl. repeats).
        self.bytes_copied_local = 0
        self.bytes_copied_remote = 0
        #: observers called as fn(chunk, time) on every dirtying write.
        self.on_dirty: List[Callable[["Chunk", float], None]] = []
        #: protection granularity: chunk-level (the paper's design —
        #: one fault unprotects the whole chunk) vs page-level (the
        #: strawman §IV argues against: every protected page written
        #: faults separately, '6-12 usec ... and 3 sec for 1 GB').
        self.page_granular_protection = False
        #: lazy-restart state (§IV shadow buffering read path: 'the
        #: application can directly access write protected NVM, and an
        #: attempt to modify the data would move the data back to
        #: DRAM').  While resident, reads serve from the committed NVM
        #: version; the first write migrates the payload to DRAM.
        self.nvm_resident = False
        #: bytes migrated NVM->DRAM since the last take (cost hook).
        self._migration_bytes_pending = 0
        #: observers called as fn(chunk, nbytes) on each migration.
        self.on_migrate: List[Callable[["Chunk", int], None]] = []
        #: per-stream staleness bitmaps for page-granular incremental
        #: copy.  One :class:`StalePageMap` per stream; the local map
        #: has one bitmap per NVM shadow version slot (under
        #: double-buffering the in-progress slot was last refreshed two
        #: checkpoints ago, so "dirty since last checkpoint" is the
        #: wrong predicate).  The remote map is created lazily when a
        #: buddy target first adopts the chunk.
        self._stale = {"local": StalePageMap(nbytes, max(1, len(self.versions)))}
        #: content-identity generation (see ``_incarnations``).
        self.incarnation = next(Chunk._incarnations)
        #: optional :class:`repro.core.codec.ContentModel` — attached
        #: lazily by the codec layer for phantom chunks; ``None`` keeps
        #: the raw path's write barrier at a single attribute check.
        self._content = None

    # ------------------------------------------------------------------
    # Application write barrier.
    # ------------------------------------------------------------------

    def write(self, offset: int, data: Any) -> int:
        """Application store into the DRAM working copy.

        This is the explicit stand-in for a hardware store: it applies
        the bytes, and performs the protection-fault bookkeeping the
        kernel would do (one fault per protected chunk, then the whole
        chunk is unprotected and marked dirty).
        Returns the number of *faults* taken (0 or 1) so callers can
        charge the fault cost.
        """
        payload = np.ascontiguousarray(np.asarray(data)).view(np.uint8).reshape(-1)
        if self.phantom:
            raise CheckpointError(f"chunk {self.name!r} is phantom; use touch()")
        if offset < 0 or offset + len(payload) > self.nbytes:
            raise CheckpointError(
                f"chunk {self.name!r}: write [{offset}, {offset + len(payload)}) "
                f"outside {self.nbytes} bytes"
            )
        if self.nvm_resident:
            self._migrate_to_dram()  # copy-on-write allocates DRAM
        if self.dram is None:
            raise CheckpointError(f"chunk {self.name!r} has no DRAM buffer")
        faults = self._dirtying_access(len(payload))
        self._mark_stale(offset, len(payload))
        self.dram[offset : offset + len(payload)] = payload
        return faults

    def touch(self, nbytes: Optional[int] = None, offset: int = 0) -> int:
        """Phantom-mode modification: account a write of *nbytes* at
        *offset* (default: the whole chunk) without a payload."""
        if self.nvm_resident:
            self._migrate_to_dram()
        n = nbytes if nbytes is not None else self.nbytes
        self._mark_stale(offset, n)
        return self._dirtying_access(n)

    def _dirtying_access(self, nbytes: Optional[int] = None) -> int:
        faults = 0
        if self.protected:
            if self.page_granular_protection:
                # page-level protection: every written page faults
                faults = max(1, pages_of(nbytes if nbytes is not None else self.nbytes))
            else:
                # chunk-level protection: one fault unprotects everything
                faults = 1
            self.protected = False
            self.fault_count += faults
        now = self._clock()
        self.dirty_local = True
        self.dirty_remote = True
        self.mods_this_interval += 1
        self.total_mods += 1
        self.last_modified = now
        for fn in self.on_dirty:
            fn(self, now)
        return faults

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def read(self, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """Read the working copy (application load).  NVM-resident
        chunks (lazy restart) serve reads straight from the committed
        NVM version — near-DRAM speed per Table I."""
        if self.phantom:
            raise CheckpointError(f"chunk {self.name!r} is phantom; no data to read")
        if nbytes is None:
            nbytes = self.nbytes - offset
        if self.nvm_resident:
            return self.committed_region().read(offset, nbytes)
        if self.dram is None:
            raise CheckpointError(f"chunk {self.name!r} has no DRAM buffer")
        return self.dram[offset : offset + nbytes].copy()

    def view(self, dtype: Any = np.uint8, shape: Optional[tuple] = None) -> np.ndarray:
        """A *read-only* typed view of the working copy.  (All writes
        must flow through :meth:`write` so dirt tracking stays sound.)
        NVM-resident chunks return a read-only copy of the committed
        NVM contents."""
        if self.phantom:
            raise CheckpointError(f"chunk {self.name!r} is phantom; no data to view")
        if self.nvm_resident:
            v = self.committed_region().read(0, self.nbytes).view(dtype)
        else:
            if self.dram is None:
                raise CheckpointError(f"chunk {self.name!r} has no DRAM buffer")
            v = self.dram.view(dtype)
        if shape is not None:
            v = v.reshape(shape)
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # Version management (used by the checkpoint runtime).
    # ------------------------------------------------------------------

    @property
    def n_versions(self) -> int:
        return len(self.versions)

    def inprogress_index(self) -> int:
        """The version slot the next checkpoint writes into."""
        if self.n_versions <= 1:
            return 0
        return 1 - self.committed_version if self.committed_version >= 0 else 0

    def inprogress_region(self) -> NvmRegion:
        if not self.versions:
            raise CheckpointError(f"chunk {self.name!r} has no NVM shadow regions")
        return self.versions[self.inprogress_index()]

    def committed_region(self) -> NvmRegion:
        if self.committed_version < 0:
            raise CheckpointError(f"chunk {self.name!r} has no committed version")
        return self.versions[self.committed_version]

    # ------------------------------------------------------------------
    # Page-granular staleness tracking (incremental copy support).
    # ------------------------------------------------------------------

    def _mark_stale(self, offset: int, nbytes: int) -> None:
        """Record a DRAM write against every stream's stale maps."""
        if nbytes <= 0:
            return
        end = min(offset + nbytes, self.nbytes)
        if offset < 0 or offset >= end:
            return
        for pmap in self._stale.values():
            pmap.mark(offset, end - offset)
        if self._content is not None:
            self._content.record_write(offset, end - offset)

    def _stale_map(self, stream: str) -> StalePageMap:
        try:
            return self._stale[stream]
        except KeyError:
            raise ValueError(f"chunk {self.name!r} has no {stream!r} stale map")

    def ensure_remote_slots(self, n_slots: int) -> None:
        """Create/grow the remote-stream stale map (one bitmap per
        buddy version slot).  New slots start fully stale."""
        pmap = self._stale.get("remote")
        if pmap is None:
            self._stale["remote"] = StalePageMap(self.nbytes, n_slots)
        else:
            pmap.ensure_slots(n_slots)

    def mark_all_stale(self, stream: Optional[str] = None) -> None:
        """Force full re-copy on the next incremental pass (restart,
        failover, reallocation — whenever region contents are suspect)."""
        for name, pmap in self._stale.items():
            if stream is None or name == stream:
                pmap.mark_all()

    def resize_stale_maps(self, nbytes: int) -> None:
        """Reallocation hook: every slot of every stream goes fully
        stale at the new size (old region tails are garbage)."""
        for pmap in self._stale.values():
            pmap.resize(nbytes)
        # the old buffer's content identity is gone with its tail
        self.incarnation = next(Chunk._incarnations)
        self._content = None

    def copy_extents(
        self, stream: str = "local", slot: Optional[int] = None
    ) -> List[tuple]:
        """Coalesced ``(offset, nbytes)`` runs an incremental copy must
        move to bring *slot*'s region content up to the DRAM state.
        For the local stream the slot defaults to the in-progress
        version (the one the next checkpoint writes)."""
        pmap = self._stale_map(stream)
        if slot is None:
            slot = self.inprogress_index() if stream == "local" else 0
        pmap.ensure_slots(slot + 1)
        return pmap.extents(slot)

    def mark_extents_copied(
        self,
        stream: str,
        extents: Optional[List[tuple]],
        slot: Optional[int] = None,
    ) -> None:
        """Clear stale bits after a successful copy of *extents* into
        *slot* (``None`` extents = a full-chunk copy refreshed it all).
        Cleared only per-slot and only for the runs actually written,
        so writes racing the copy keep their bits."""
        pmap = self._stale_map(stream)
        if slot is None:
            slot = self.inprogress_index() if stream == "local" else 0
        pmap.ensure_slots(slot + 1)
        if extents is None:
            pmap.clear_all(slot)
        else:
            pmap.clear_extents(slot, extents)

    def stale_bytes(self, stream: str = "local", slot: Optional[int] = None) -> int:
        pmap = self._stale_map(stream)
        if slot is None:
            slot = self.inprogress_index() if stream == "local" else 0
        pmap.ensure_slots(slot + 1)
        return pmap.stale_bytes(slot)

    def stage_to_nvm(self, extents: Optional[List[tuple]] = None) -> int:
        """Copy the working copy into the in-progress NVM version (the
        actual data movement of shadow buffering).  Returns bytes moved.
        Timing is charged by the caller through the device bus.

        With *extents* (page-granular mode) only those byte runs are
        written; the slot's stale bits for exactly those runs clear
        only after every write succeeded, so a crash mid-stage leaves
        the bits set and the next attempt re-copies.
        """
        if self.nvm_resident:
            # an NVM-resident (lazily restored) chunk is clean by
            # definition; staging it means someone wants a fresh
            # version anyway — materialize the working copy first.
            # Migration marks everything stale, invalidating any extent
            # list computed beforehand — fall back to a full stage.
            self._migrate_to_dram()
            extents = None
        region = self.inprogress_region()
        slot = self.inprogress_index()
        if extents is None:
            # two half-writes with a crash point between them: a crash at
            # the midpoint leaves a *torn* in-progress version, which the
            # two-version protocol must never expose (the committed version
            # is untouched until the post-flush pointer flip)
            half = self.nbytes // 2
            if self.phantom:
                moved = region.write_phantom(0, half)
                fire("chunk.stage.mid", chunk=self)
                moved += region.write_phantom(half, self.nbytes - half)
            else:
                assert self.dram is not None
                region.write(0, self.dram[:half])
                fire("chunk.stage.mid", chunk=self)
                region.write(half, self.dram[half:])
                moved = self.nbytes
            self._stale["local"].ensure_slots(slot + 1)
            self._stale["local"].clear_all(slot)
        else:
            moved = self._stage_extents(region, extents)
            self.mark_extents_copied("local", extents, slot=slot)
        self.staged_pending = True
        self.bytes_copied_local += moved
        return moved

    def _stage_extents(self, region: NvmRegion, extents: List[tuple]) -> int:
        """Write *extents* into *region*, firing the torn-write crash
        point once at the cumulative byte midpoint (the extent
        straddling it splits into two writes, preserving the same
        crash semantics as the whole-chunk path)."""
        total = sum(n for _, n in extents)
        half = total // 2
        moved = 0
        done = 0
        fired = total == 0
        if not fired and half == 0:
            fire("chunk.stage.mid", chunk=self)
            fired = True
        for off, n in extents:
            pieces = [(off, n)]
            if not fired and done < half < done + n:
                cut = half - done
                pieces = [(off, cut), (off + cut, n - cut)]
            for p_off, p_n in pieces:
                if not fired and done == half:
                    fire("chunk.stage.mid", chunk=self)
                    fired = True
                if self.phantom:
                    moved += region.write_phantom(p_off, p_n)
                else:
                    assert self.dram is not None
                    region.write(p_off, self.dram[p_off : p_off + p_n])
                    moved += p_n
                done += p_n
        if not fired:
            fire("chunk.stage.mid", chunk=self)
        return moved

    def payload_checksum(self) -> int:
        """CRC32 of the DRAM working copy, computed directly over the
        numpy view (the uint8 buffer satisfies the buffer protocol, so
        no intermediate ``tobytes`` copy is made)."""
        if self.phantom or self.dram is None:
            return 0  # phantom payloads are all-zero
        return zlib.crc32(self.dram)

    def commit(self, with_checksum: bool = True) -> None:
        """Mark the in-progress version committed (call only after the
        store was flushed)."""
        idx = self.inprogress_index()
        if with_checksum:
            self.checksums[idx] = self.payload_checksum()
        self.committed_version = idx
        self.staged_pending = False

    def verify_checksum(self) -> bool:
        """Restart-time integrity check of the committed version."""
        if self.committed_version < 0:
            return False
        stored = self.checksums[self.committed_version]
        if stored is None:
            return True  # checksums disabled at commit time
        if self.phantom:
            return stored == 0
        data = np.ascontiguousarray(self.committed_region().read(0, self.nbytes))
        return zlib.crc32(data) == stored

    def restore_from_committed(self) -> int:
        """Load the committed NVM version back into the DRAM working
        copy (restart).  Returns bytes read."""
        region = self.committed_region()
        if not self.phantom:
            data = region.read(0, self.nbytes)
            if self.dram is None or len(self.dram) != self.nbytes:
                self.dram = np.zeros(self.nbytes, dtype=np.uint8)
            self.dram[:] = data
        self.nvm_resident = False
        # the DRAM copy was just replaced wholesale; every version
        # slot's incremental state is suspect until re-copied
        self.mark_all_stale()
        self.incarnation = next(Chunk._incarnations)
        return self.nbytes

    def restore_lazy(self) -> None:
        """Lazy restart: leave the data in NVM.  Reads serve from the
        committed version (write-protected NVM, near-DRAM read speed);
        the first write migrates the chunk back to DRAM (§IV)."""
        if self.committed_version < 0:
            raise CheckpointError(
                f"chunk {self.name!r} has no committed version to restore lazily"
            )
        self.nvm_resident = True
        self.protected = True
        self.dirty_local = False

    def _migrate_to_dram(self) -> None:
        """Copy-on-write: move the committed payload back to DRAM."""
        if not self.phantom:
            data = self.committed_region().read(0, self.nbytes)
            if self.dram is None or len(self.dram) != self.nbytes:
                self.dram = np.zeros(self.nbytes, dtype=np.uint8)
            self.dram[:] = data
        self.nvm_resident = False
        self.mark_all_stale()
        self.incarnation = next(Chunk._incarnations)
        self._migration_bytes_pending += self.nbytes
        for fn in self.on_migrate:
            fn(self, self.nbytes)

    def take_migration_bytes(self) -> int:
        """Return and reset the NVM->DRAM migration byte count (the
        caller charges the copy time)."""
        out, self._migration_bytes_pending = self._migration_bytes_pending, 0
        return out

    # ------------------------------------------------------------------
    # Interval bookkeeping (driven by the checkpoint coordinator).
    # ------------------------------------------------------------------

    def get_state(self, stream: str) -> ChunkState:
        return self.state_local if stream == "local" else self.state_remote

    def set_state(self, stream: str, state: ChunkState) -> None:
        if stream == "local":
            self.state_local = state
        else:
            self.state_remote = state

    def begin_interval(self) -> None:
        """Reset per-interval counters at the start of a compute phase."""
        self.mods_this_interval = 0

    def mark_precopied(self, stream: str = "local") -> None:
        """Record a completed pre-copy: the chunk is clean for *stream*
        and write-protected so the next write faults."""
        if stream == "local":
            self.dirty_local = False
        elif stream == "remote":
            self.dirty_remote = False
        else:
            raise ValueError(f"unknown stream {stream!r}")
        self.protected = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = []
        if self.dirty_local:
            flags.append("Dl")
        if self.dirty_remote:
            flags.append("Dr")
        if self.protected:
            flags.append("P")
        if self.phantom:
            flags.append("ph")
        return (
            f"<Chunk #{self.chunk_id} {self.name!r} {self.nbytes}B "
            f"v{self.committed_version} {''.join(flags) or '-'}>"
        )


def batch_commit(
    chunks: List["Chunk"],
    with_checksum: bool = True,
    on_commit: Optional[Callable[["Chunk"], None]] = None,
) -> List["Chunk"]:
    """Commit every chunk in *chunks* with staged data, in one pass.

    This is the coordinated step's commit hot path: for large rank
    counts the per-chunk ``tobytes`` copy the naive loop paid per
    checksum dominated profile time, so checksums are computed directly
    over each chunk's numpy working-copy view (zero-copy buffer
    protocol) before any version pointer flips.  Phantom chunks short
    out to the constant all-zero checksum.  ``on_commit`` is invoked
    per committed chunk (the crash-point hook), after that chunk's
    flip.  Returns the chunks committed.
    """
    staged = [c for c in chunks if c.staged_pending]
    if with_checksum:
        # checksum phase first: pure reads over the DRAM views, no
        # metadata mutated yet, so a crash here is indistinguishable
        # from one before the commit loop
        checksums = [c.payload_checksum() for c in staged]
    committed: List["Chunk"] = []
    for i, chunk in enumerate(staged):
        idx = chunk.inprogress_index()
        if with_checksum:
            chunk.checksums[idx] = checksums[i]
        chunk.committed_version = idx
        chunk.staged_pending = False
        committed.append(chunk)
        if on_commit is not None:
            on_commit(chunk)
    return committed
