"""The Table-III user allocation API: ``genid``, ``nvalloc``,
``nv2dalloc``, ``nvattach``, ``nvrealloc``, ``nvdelete``.

An :class:`NVAllocator` is bound to one process.  Every persistent
variable becomes a :class:`~repro.alloc.chunk.Chunk` with a DRAM
working copy (allocated through the jemalloc-style arena) and one or
two NVM shadow versions (allocated through the NVM kernel manager).
Per-process chunk metadata — ids, sizes, committed-version pointers,
checksums — lives in a dedicated metadata region of the persistent
store ("not directly accessible by the application", §V) and is what
restart rebuilds the process from.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from ..errors import AllocationError, DuplicateChunkId, UnknownChunkId
from ..memory.device import MemoryDevice
from ..memory.nvmm import NVMKernelManager, NvmRegion
from .arena import Allocation, Arena
from .chunk import Chunk

__all__ = ["genid", "NVAllocator"]

ChunkKey = Union[int, str]


def genid(varname: str) -> int:
    """Stable 48-bit id from a variable name (Table III ``genid``)."""
    digest = hashlib.blake2b(varname.encode(), digest_size=6).digest()
    return int.from_bytes(digest, "little")


class NVAllocator:
    """Per-process NVM allocation + chunk registry."""

    _META_PREFIX = "alloc/proc:"

    def __init__(
        self,
        pid: str,
        nvmm: NVMKernelManager,
        dram: MemoryDevice,
        *,
        two_versions: bool = True,
        phantom: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.pid = pid
        self.nvmm = nvmm
        self.dram = dram
        self.two_versions = two_versions
        self.phantom = phantom
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.arena = Arena(dram, owner=f"{pid}/heap")
        self._chunks: Dict[int, Chunk] = {}
        self._by_name: Dict[str, int] = {}
        self._allocations: Dict[int, Optional[Allocation]] = {}

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def _resolve(self, key: ChunkKey) -> Chunk:
        if isinstance(key, str):
            cid = self._by_name.get(key)
            if cid is None:
                raise UnknownChunkId(f"no chunk named {key!r} in process {self.pid!r}")
            return self._chunks[cid]
        chunk = self._chunks.get(key)
        if chunk is None:
            raise UnknownChunkId(f"no chunk with id {key} in process {self.pid!r}")
        return chunk

    def chunk(self, key: ChunkKey) -> Chunk:
        """Look up a chunk by name or id."""
        return self._resolve(key)

    def has_chunk(self, key: ChunkKey) -> bool:
        if isinstance(key, str):
            return key in self._by_name
        return key in self._chunks

    def chunks(self) -> List[Chunk]:
        """All chunks, ordered by id (deterministic iteration)."""
        return [self._chunks[cid] for cid in sorted(self._chunks)]

    def persistent_chunks(self) -> List[Chunk]:
        return [c for c in self.chunks() if c.persistent]

    @property
    def checkpoint_bytes(self) -> int:
        """Total checkpoint data size D of this process."""
        return sum(c.nbytes for c in self.persistent_chunks())

    # ------------------------------------------------------------------
    # Allocation (Table III).
    # ------------------------------------------------------------------

    def nvalloc(self, name: str, nbytes: int, pflag: bool = True) -> Chunk:
        """Allocate a checkpointable variable.

        If process metadata already records a committed persistent
        chunk under *name* and ``pflag`` is set, the chunk is
        re-created and its committed NVM data loaded back into the DRAM
        working copy — this is the paper's restart path ("applications
        use the same 'nvmalloc' interface ... to read back data").
        """
        if nbytes <= 0:
            raise AllocationError(f"chunk size must be positive, got {nbytes}")
        if name in self._by_name:
            raise DuplicateChunkId(f"chunk {name!r} already allocated in {self.pid!r}")
        cid = genid(name)
        if cid in self._chunks:
            raise DuplicateChunkId(
                f"id collision: {name!r} hashes to {cid}, already used by "
                f"{self._chunks[cid].name!r}"
            )
        persisted = self._persisted_record(name)
        if persisted is not None and pflag:
            chunk = self._rebuild_chunk(name, persisted)
            if chunk.nbytes != nbytes:
                raise AllocationError(
                    f"chunk {name!r}: persisted size {chunk.nbytes} != requested {nbytes}; "
                    "use nvrealloc after restart to resize"
                )
            chunk.restore_from_committed()
            self._register(chunk)
            return chunk
        chunk = self._fresh_chunk(name, cid, nbytes, pflag)
        self._register(chunk)
        self._persist_metadata()
        return chunk

    def nv2dalloc(self, name: str, dim1: int, dim2: int, dtype=np.float64) -> Chunk:
        """2-D (Fortran wrapper) allocation: a chunk sized for a
        ``dim1 x dim2`` array of *dtype*."""
        itemsize = np.dtype(dtype).itemsize
        return self.nvalloc(name, dim1 * dim2 * itemsize, pflag=True)

    def nvattach(self, name: str, src: np.ndarray) -> Chunk:
        """Create a shadow NVM chunk for an *existing* DRAM array
        (§V: for applications whose checkpoint size is not statically
        known).  The chunk's working copy is initialized from *src*."""
        flat = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
        chunk = self.nvalloc(name, flat.nbytes, pflag=True)
        if not chunk.phantom:
            chunk.write(0, flat)
        else:
            chunk.touch()
        return chunk

    def nvrealloc(self, key: ChunkKey, nbytes: int) -> Chunk:
        """Grow/shrink a chunk, preserving the common data prefix."""
        if nbytes <= 0:
            raise AllocationError(f"chunk size must be positive, got {nbytes}")
        chunk = self._resolve(key)
        old_bytes = chunk.nbytes
        if nbytes == old_bytes:
            return chunk
        # DRAM side
        if not chunk.phantom:
            new_buf = np.zeros(nbytes, dtype=np.uint8)
            keep = min(old_bytes, nbytes)
            assert chunk.dram is not None
            new_buf[:keep] = chunk.dram[:keep]
            chunk.dram = new_buf
        old_alloc = self._allocations.get(chunk.chunk_id)
        if old_alloc is not None:
            self.arena.free(old_alloc)
        self._allocations[chunk.chunk_id] = self.arena.alloc(nbytes)
        # NVM side
        for i in range(chunk.n_versions):
            self.nvmm.nvmrealloc(self.pid, self._region_name(chunk.name, i), nbytes)
        chunk.nbytes = nbytes
        # every version slot's region tail is garbage after the
        # realloc: all incremental state goes fully stale at the new
        # size, forcing full re-copies
        chunk.resize_stale_maps(nbytes)
        chunk.touch() if chunk.phantom else chunk._dirtying_access()
        self._persist_metadata()
        return chunk

    def nvdelete(self, key: ChunkKey) -> None:
        """Drop a chunk: DRAM buffer, NVM versions and metadata."""
        chunk = self._resolve(key)
        for i in range(chunk.n_versions):
            self.nvmm.nvmunmap(self.pid, self._region_name(chunk.name, i))
        alloc = self._allocations.pop(chunk.chunk_id, None)
        if alloc is not None:
            self.arena.free(alloc)
        del self._chunks[chunk.chunk_id]
        del self._by_name[chunk.name]
        self._persist_metadata()

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    def _region_name(self, name: str, version: int) -> str:
        return f"{name}#v{version}"

    def _fresh_chunk(self, name: str, cid: int, nbytes: int, pflag: bool) -> Chunk:
        n_versions = 2 if (self.two_versions and pflag) else (1 if pflag else 0)
        versions: List[NvmRegion] = [
            self.nvmm.nvmmap(self.pid, self._region_name(name, i), nbytes, phantom=self.phantom)
            for i in range(n_versions)
        ]
        dram_buf = None if self.phantom else np.zeros(nbytes, dtype=np.uint8)
        self._allocations[cid] = self.arena.alloc(nbytes)
        return Chunk(
            chunk_id=cid,
            name=name,
            nbytes=nbytes,
            persistent=pflag,
            phantom=self.phantom,
            dram_buffer=dram_buf,
            nvm_versions=versions,
            clock=self.clock,
        )

    def _rebuild_chunk(self, name: str, record: dict) -> Chunk:
        """Reconstruct a chunk (and its NVM mappings) from persisted
        metadata after a crash."""
        regions = self.nvmm.load_process(self.pid)
        versions = []
        for i in range(int(record["n_versions"])):
            rname = self._region_name(name, i)
            if rname not in regions:
                raise UnknownChunkId(
                    f"restart: metadata for chunk {name!r} references missing region {rname!r}"
                )
            versions.append(regions[rname])
        phantom = bool(record.get("phantom", self.phantom))
        dram_buf = None if phantom else np.zeros(int(record["size"]), dtype=np.uint8)
        self._allocations[int(record["id"])] = self.arena.alloc(int(record["size"]))
        chunk = Chunk(
            chunk_id=int(record["id"]),
            name=name,
            nbytes=int(record["size"]),
            persistent=bool(record["persistent"]),
            phantom=phantom,
            dram_buffer=dram_buf,
            nvm_versions=versions,
            clock=self.clock,
        )
        chunk.committed_version = int(record["committed"])
        chunk.checksums = [
            (int(c) if c is not None else None) for c in record.get("checksums", [])
        ] or [None] * max(1, len(versions))
        return chunk

    def _register(self, chunk: Chunk) -> None:
        self._chunks[chunk.chunk_id] = chunk
        self._by_name[chunk.name] = chunk.chunk_id

    # ------------------------------------------------------------------
    # Metadata persistence.
    # ------------------------------------------------------------------

    def _meta_key(self) -> str:
        return f"{self._META_PREFIX}{self.pid}"

    def _persisted_record(self, name: str) -> Optional[dict]:
        meta = self.nvmm.store.get_meta(self._meta_key(), {"chunks": {}})
        return meta["chunks"].get(name)

    def _persist_metadata(self) -> None:
        """Write the chunk table to the persistent metadata region.
        Durable only after the next store flush — the checkpoint commit
        protocol orders data-flush before metadata-flush."""
        # non-persistent (pflag=False) chunks have no NVM footprint and
        # die with the process, so only persistent chunks are recorded
        meta = {
            "chunks": {
                c.name: {
                    "id": c.chunk_id,
                    "size": c.nbytes,
                    "persistent": c.persistent,
                    "phantom": c.phantom,
                    "n_versions": c.n_versions,
                    "committed": c.committed_version,
                    "checksums": list(c.checksums),
                }
                for c in self.persistent_chunks()
            }
        }
        self.nvmm.store.put_meta(self._meta_key(), meta)

    # ------------------------------------------------------------------
    # Restart.
    # ------------------------------------------------------------------

    @classmethod
    def restart(
        cls,
        pid: str,
        nvmm: NVMKernelManager,
        dram: MemoryDevice,
        *,
        two_versions: bool = True,
        clock: Optional[Callable[[], float]] = None,
        load_data: bool = True,
    ) -> "NVAllocator":
        """Rebuild a process's allocator and every persisted chunk from
        the NVM metadata (the eager restart path used by the restart
        component).  With ``load_data`` the committed NVM contents are
        copied back into fresh DRAM working buffers."""
        meta = nvmm.store.get_meta(f"{cls._META_PREFIX}{pid}", None)
        if meta is None:
            raise UnknownChunkId(f"no persisted allocator metadata for process {pid!r}")
        any_phantom = any(rec.get("phantom") for rec in meta["chunks"].values())
        alloc = cls(
            pid, nvmm, dram, two_versions=two_versions, phantom=any_phantom, clock=clock
        )
        for name, record in sorted(meta["chunks"].items()):
            chunk = alloc._rebuild_chunk(name, record)
            if load_data and chunk.committed_version >= 0:
                chunk.restore_from_committed()
            alloc._register(chunk)
        return alloc
