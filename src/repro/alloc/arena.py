"""A jemalloc-style arena allocator for DRAM working copies.

§V: "The allocation component extends the highly scalable Jemalloc
allocator to manage allocations ...".  This is a faithful small-scale
rebuild of jemalloc's design:

* **size classes** — power-of-two groups subdivided 4 ways (8, 16, 32,
  48, 64, 80, ... 14336) for small allocations;
* **slabs** — small classes are served from slab runs holding many
  equal-size slots (bitmap-free: a slot freelist per slab);
* **large allocations** — page-rounded, served first-fit from a free
  extent list with split + address-order coalescing;
* arenas draw page-aligned **extents** from the owning
  :class:`~repro.memory.device.MemoryDevice` and retain them (jemalloc
  retains virtual memory too), so device accounting reflects the
  arena's footprint, not instantaneous live bytes.

Addresses are integer offsets in the arena's virtual space; the chunk
layer attaches numpy buffers to allocations.  The allocator's job here
is realism of placement/accounting plus invariants we property-test:
no overlap, alignment, reuse after free, bounded fragmentation.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AllocationError
from ..memory.device import MemoryDevice
from ..units import KiB, MiB, align_up

__all__ = ["SIZE_CLASSES", "Arena", "Allocation"]


def _build_size_classes() -> List[int]:
    """jemalloc-style class ladder: 8..128 by 16s, then 4 classes per
    doubling up to 14 KiB."""
    classes = [8, 16, 32, 48, 64, 80, 96, 112, 128]
    base = 128
    while base < 14 * KiB:
        step = base // 4
        for i in range(1, 5):
            size = base + i * step
            if size > 14 * KiB:
                break
            classes.append(size)
        base *= 2
    return classes


SIZE_CLASSES: List[int] = _build_size_classes()
SMALL_LIMIT: int = SIZE_CLASSES[-1]
PAGE: int = 4 * KiB
EXTENT_SIZE: int = 4 * MiB
SLAB_SIZE: int = 64 * KiB


@dataclass
class Allocation:
    """A live allocation: ``[addr, addr + size)`` in arena space."""

    addr: int
    size: int  # bytes actually reserved (>= requested)
    requested: int  # bytes the caller asked for
    size_class: Optional[int]  # None for large/huge allocations
    slab_addr: Optional[int] = None


@dataclass
class _Slab:
    """A run of equal-size slots for one small size class."""

    addr: int
    slot_size: int
    n_slots: int
    free_slots: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.free_slots:
            self.free_slots = list(range(self.n_slots - 1, -1, -1))

    @property
    def full(self) -> bool:
        return not self.free_slots

    @property
    def empty(self) -> bool:
        return len(self.free_slots) == self.n_slots


class Arena:
    """One allocation arena (per process, as in jemalloc's per-thread
    arena assignment)."""

    def __init__(self, device: MemoryDevice, owner: str = "arena") -> None:
        self.device = device
        self.owner = owner
        self._next_addr = 0
        #: small bins: size class -> slabs with free slots
        self._bins: Dict[int, List[_Slab]] = {}
        #: all slabs by base address (for frees)
        self._slabs: Dict[int, _Slab] = {}
        #: sorted free extents for large allocations: list[(addr, size)]
        self._free_extents: List[Tuple[int, int]] = []
        #: live large allocations: addr -> size
        self._large: Dict[int, int] = {}
        #: live small allocations: addr -> Allocation
        self._live: Dict[int, Allocation] = {}
        # -- stats --
        self.bytes_requested = 0
        self.bytes_reserved = 0
        self.extent_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------
    # Extent management.
    # ------------------------------------------------------------------

    def _grab_extent(self, nbytes: int) -> int:
        """Reserve fresh address space backed by device capacity."""
        nbytes = align_up(nbytes, PAGE)
        self.device.allocate(nbytes, owner=self.owner)
        addr = self._next_addr
        self._next_addr += nbytes
        self.extent_bytes += nbytes
        return addr

    def _alloc_pages(self, nbytes: int) -> int:
        """Page-rounded allocation from the free-extent pool (first
        fit), splitting the remainder back."""
        nbytes = align_up(nbytes, PAGE)
        for i, (addr, size) in enumerate(self._free_extents):
            if size >= nbytes:
                del self._free_extents[i]
                if size > nbytes:
                    insort(self._free_extents, (addr + nbytes, size - nbytes))
                return addr
        # no fit: carve a new extent (at least EXTENT_SIZE to amortize)
        grab = max(nbytes, EXTENT_SIZE)
        addr = self._grab_extent(grab)
        if grab > nbytes:
            insort(self._free_extents, (addr + nbytes, grab - nbytes))
        return addr

    def _free_pages(self, addr: int, nbytes: int) -> None:
        """Return pages to the pool, coalescing with neighbours."""
        nbytes = align_up(nbytes, PAGE)
        insort(self._free_extents, (addr, nbytes))
        # coalesce around the inserted entry
        merged: List[Tuple[int, int]] = []
        for a, s in self._free_extents:
            if merged and merged[-1][0] + merged[-1][1] == a:
                pa, ps = merged[-1]
                merged[-1] = (pa, ps + s)
            else:
                merged.append((a, s))
        self._free_extents = merged

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    @staticmethod
    def size_class_for(nbytes: int) -> Optional[int]:
        """Smallest size class holding *nbytes*, or None if large."""
        if nbytes > SMALL_LIMIT:
            return None
        for cls in SIZE_CLASSES:
            if cls >= nbytes:
                return cls
        return None  # pragma: no cover - unreachable

    def alloc(self, nbytes: int) -> Allocation:
        """Allocate *nbytes*; small requests go to slabs, the rest to
        page-granular extents."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        self.alloc_count += 1
        self.bytes_requested += nbytes
        cls = self.size_class_for(nbytes)
        if cls is not None:
            allocation = self._alloc_small(nbytes, cls)
        else:
            addr = self._alloc_pages(nbytes)
            size = align_up(nbytes, PAGE)
            self._large[addr] = size
            allocation = Allocation(addr=addr, size=size, requested=nbytes, size_class=None)
        self.bytes_reserved += allocation.size
        self._live[allocation.addr] = allocation
        return allocation

    def _alloc_small(self, nbytes: int, cls: int) -> Allocation:
        bin_slabs = self._bins.setdefault(cls, [])
        slab = bin_slabs[-1] if bin_slabs else None
        if slab is None or slab.full:
            n_slots = max(1, SLAB_SIZE // cls)
            addr = self._alloc_pages(n_slots * cls)
            slab = _Slab(addr=addr, slot_size=cls, n_slots=n_slots)
            self._slabs[addr] = slab
            bin_slabs.append(slab)
        slot = slab.free_slots.pop()
        if slab.full:
            bin_slabs.remove(slab)
        return Allocation(
            addr=slab.addr + slot * cls,
            size=cls,
            requested=nbytes,
            size_class=cls,
            slab_addr=slab.addr,
        )

    def free(self, allocation: Allocation) -> None:
        live = self._live.pop(allocation.addr, None)
        if live is None:
            raise AllocationError(f"double free or foreign allocation at addr {allocation.addr}")
        self.free_count += 1
        self.bytes_requested -= allocation.requested
        self.bytes_reserved -= allocation.size
        if allocation.size_class is None:
            size = self._large.pop(allocation.addr)
            self._free_pages(allocation.addr, size)
            return
        slab = self._slabs[allocation.slab_addr]  # type: ignore[index]
        slot = (allocation.addr - slab.addr) // slab.slot_size
        was_full = slab.full
        slab.free_slots.append(slot)
        bin_slabs = self._bins.setdefault(allocation.size_class, [])
        if slab.empty:
            # release the whole slab back to the page pool
            if slab in bin_slabs:
                bin_slabs.remove(slab)
            del self._slabs[slab.addr]
            self._free_pages(slab.addr, slab.n_slots * slab.slot_size)
        elif was_full:
            bin_slabs.append(slab)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def internal_fragmentation(self) -> float:
        """1 - requested/reserved over live allocations (0 = perfect)."""
        if self.bytes_reserved <= 0:
            return 0.0
        return 1.0 - self.bytes_requested / self.bytes_reserved

    def check_invariants(self) -> None:
        """Assert no two live allocations overlap and all are in-bounds
        (used by the property-based tests)."""
        spans = sorted((a.addr, a.addr + a.size) for a in self._live.values())
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            if s1 < e0:
                raise AssertionError(f"overlapping allocations: [{s0},{e0}) and [{s1},...)")
        for a in self._live.values():
            if a.addr < 0 or a.addr + a.size > self._next_addr:
                raise AssertionError(f"allocation out of arena bounds: {a}")

    def release(self) -> None:
        """Tear down the arena, returning all extents to the device."""
        self.device.release(self.extent_bytes, owner=self.owner)
        self.extent_bytes = 0
        self._live.clear()
        self._large.clear()
        self._slabs.clear()
        self._bins.clear()
        self._free_extents.clear()
