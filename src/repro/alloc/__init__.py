"""User-level NVM allocation: chunks, the jemalloc-style arena, and the
Table-III allocation API (nvalloc / nvattach / nvrealloc / nvdelete).
"""

from .chunk import Chunk, ChunkState, batch_commit
from .arena import Arena, Allocation, SIZE_CLASSES
from .nvmalloc import NVAllocator, genid

__all__ = [
    "Chunk",
    "ChunkState",
    "batch_commit",
    "Arena",
    "Allocation",
    "SIZE_CLASSES",
    "NVAllocator",
    "genid",
]
