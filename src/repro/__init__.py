"""NVM-checkpoints: optimizing checkpoints using NVM as virtual memory.

A full reproduction of Kannan, Gavrilovska, Schwan & Milojicic,
*"Optimizing Checkpoints Using NVM as Virtual Memory"* (IPDPS 2013):
the NVM-as-virtual-memory substrate, the Table-III allocation and
checkpoint API, shadow buffering, chunk-level pre-copy (CPC / DCPC /
DCPCP), remote (buddy-node) pre-copy checkpointing over a simulated
RDMA fabric, the §III failure/performance model, and the full §VI
evaluation harness.

Quick start (see ``examples/quickstart.py``)::

    import numpy as np
    from repro import NVMCheckpoint
    from repro.memory import InMemoryStore

    store = InMemoryStore()          # the "NVM DIMM"
    app = NVMCheckpoint("rank0", store=store)
    temp = app.nvalloc("temperature", 1 << 20)
    temp.write(0, np.linspace(0.0, 100.0, 131072))
    app.nvchkptall()                 # coordinated local checkpoint
    app.crash()                      # power loss: DRAM gone, NVM survives
    app2, report = NVMCheckpoint.restart("rank0", store)
    assert app2.chunk("temperature").view(np.float64)[0] == 0.0
"""

from typing import Any

from ._version import __version__
from .config import (
    CheckpointConfig,
    ClusterConfig,
    DeviceConfig,
    DRAM_CONFIG,
    FailureConfig,
    NodeConfig,
    PCM_CONFIG,
    PrecopyPolicy,
)
from .core import (
    CheckpointEngine,
    LocalCheckpointer,
    NVMCheckpoint,
    OnlinePolicyTuner,
    PrecopyEngine,
    RemoteHelper,
    RestartManager,
    make_standalone_context,
)
from .alloc import Chunk, NVAllocator, genid
from .memory import FileStore, InMemoryStore, NVMKernelManager
from .cluster import Cluster, ClusterRunner, RunResult
from .models import ModelParams, MultilevelModel
from .replay import ReplayEngine
# the execution engine owns the cell surface the tools layer wraps
from .exec import GridResult, GridSpec, ParallelExecutor, ResultCache, run_grid


def checkpoint(target: Any, *, blocking: bool = True, **kwargs):
    """Run one coordinated checkpoint on *target* — the stable
    entry point over every checkpointer facade.

    *target* is anything with the unified ``checkpoint()`` method
    (:class:`CheckpointEngine`, :class:`LocalCheckpointer`,
    ``TransparentCheckpointer``) or the Table-III ``nvchkptall()``
    surface (:class:`NVMCheckpoint`).  With ``blocking=True`` (the
    default) the stats are returned; ``blocking=False`` returns the DES
    generator for embedding in a simulation.
    """
    fn = getattr(target, "checkpoint", None)
    if callable(fn):
        return fn(blocking=blocking, **kwargs)
    fn = getattr(target, "nvchkptall", None)
    if callable(fn) and blocking and not kwargs:
        return fn()
    raise TypeError(
        f"{type(target).__name__} is not a checkpointer "
        "(no checkpoint()/nvchkptall() method)"
    )


__all__ = [
    "__version__",
    # configuration
    "DeviceConfig",
    "DRAM_CONFIG",
    "PCM_CONFIG",
    "NodeConfig",
    "ClusterConfig",
    "PrecopyPolicy",
    "CheckpointConfig",
    "FailureConfig",
    # core API
    "NVMCheckpoint",
    "CheckpointEngine",
    "checkpoint",
    "LocalCheckpointer",
    "PrecopyEngine",
    "RemoteHelper",
    "RestartManager",
    "OnlinePolicyTuner",
    "make_standalone_context",
    # allocation
    "Chunk",
    "NVAllocator",
    "genid",
    # memory substrate
    "InMemoryStore",
    "FileStore",
    "NVMKernelManager",
    # cluster simulation
    "Cluster",
    "ClusterRunner",
    "RunResult",
    # execution engine
    "ParallelExecutor",
    "ResultCache",
    "GridSpec",
    "GridResult",
    "run_grid",
    # trace-driven replay
    "ReplayEngine",
    # analytic model
    "ModelParams",
    "MultilevelModel",
]
