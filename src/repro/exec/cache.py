"""Content-addressed experiment result cache.

A :class:`ResultCache` maps the SHA-256 of a *resolved* experiment
configuration (every option after argparse defaulting and seed
derivation) plus ``repro.__version__`` to the cell's flattened result
record.  Because the key covers the full semantic input, re-running a
sweep only executes cells whose configuration — or the library version
that produced them — actually changed; everything else is served from
disk.  Records are stored as one JSON file per key under a two-level
fan-out directory, so caches stay friendly to both `ls` and network
filesystems.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "cache_key"]


def cache_key(config: Dict[str, Any], version: str) -> str:
    """The content address of one experiment cell: a stable hash of the
    canonical-JSON resolved config and the library version."""
    canon = json.dumps(
        {"config": config, "version": version},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed content-addressed store of cell results."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result record for *key*, or None on a miss (also
        on an unreadable/corrupt entry — treated as absent)."""
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                payload = json.load(fh)
            result = payload["result"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Dict[str, Any], config: Optional[dict] = None) -> None:
        """Store *result* under *key*; *config* rides along for
        debuggability (``repro-bench`` never reads it back)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, Any] = {"result": result}
        if config is not None:
            payload["config"] = config
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)  # readers never see a torn entry
        self.writes += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
        }
