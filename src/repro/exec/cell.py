"""One experiment cell: option surface, config resolution, execution.

This module is the single owner of what an *experiment cell* is — the
argparse option surface, the resolution of parsed options into the
canonical semantic config dict (the cache-key input and worker
payload), and the cell execution path that builds the simulated testbed
and runs it.  ``repro.tools.experiment`` is a thin CLI wrapper over it,
and :mod:`repro.exec.grid` expands sweep grids over the same surface —
neither owns any config-resolution or dispatch logic of its own.

Every run is deterministic for a given ``seed``.
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..apps import CM1Model, GTCModel, LammpsModel, SyntheticModel
from ..cluster import Cluster, ClusterRunner, RunResult
from ..config import (
    AutotuneConfig,
    CheckpointConfig,
    ClusterConfig,
    FailureConfig,
    PrecopyPolicy,
)
from ..units import GB_per_sec

__all__ = [
    "APPS",
    "NON_SEMANTIC_OPTIONS",
    "build_parser",
    "resolve_config",
    "run_cell",
    "run_experiment",
    "result_to_dict",
]

#: options that shape *output*, not the experiment itself — excluded
#: from the resolved config so they never perturb cache keys
NON_SEMANTIC_OPTIONS = frozenset({"json", "timeline", "trace"})

APPS = {
    "gtc": lambda args: GTCModel(small_chunks=args.small_chunks),
    "lammps": lambda args: LammpsModel(),
    "cm1": lambda args: CM1Model(small_chunks=args.small_chunks),
    "synthetic": lambda args: SyntheticModel(
        checkpoint_mb_per_rank=args.checkpoint_mb,
        chunk_mb=args.chunk_mb,
        hot_fraction=args.hot_fraction,
        write_once_fraction=args.write_once_fraction,
        iteration_compute_time=args.local_interval,
        comm_mb_per_iteration=args.comm_mb,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.tools.experiment",
        description="Run one NVM-checkpoints experiment on the simulated testbed.",
    )
    p.add_argument("--app", choices=sorted(APPS), default="lammps")
    p.add_argument("--mode", choices=["none", "cpc", "dcpc", "dcpcp"],
                   default="dcpcp", help="local pre-copy policy")
    p.add_argument("--granularity", choices=["chunk", "page"], default="chunk",
                   help="dirty-tracking granularity")
    p.add_argument("--copy-granularity", choices=["chunk", "page"], default="chunk",
                   help="copy granularity: 'page' moves only the stale "
                        "dirty-page extents (incremental checkpoints)")
    p.add_argument("--codec", choices=["raw", "delta", "dedup", "auto"],
                   default="raw",
                   help="payload representation on the copy path: 'raw' "
                        "ships bytes as-is (golden default); 'delta' XORs "
                        "against the committed shadow version; 'dedup' "
                        "references the content-addressed block store; "
                        "'auto' picks the cheapest per chunk")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--ranks-per-node", type=int, default=12)
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--nvm-gbps", type=float, default=2.0,
                   help="NVM device write bandwidth (Table I default: 2.0)")
    p.add_argument("--local-interval", type=float, default=40.0)
    p.add_argument("--remote-interval", type=float, default=120.0)
    p.add_argument("--no-remote", action="store_true",
                   help="disable remote (buddy) checkpointing")
    p.add_argument("--pfs-gbps", type=float, default=None,
                   help="checkpoint to a shared PFS at this aggregate GB/s "
                        "instead of node-local NVM (implies --no-remote)")
    p.add_argument("--no-remote-precopy", action="store_true",
                   help="asynchronous no-pre-copy remote baseline")
    p.add_argument("--compress-ratio", type=float, default=None,
                   help="compress remote checkpoint traffic at this "
                        "compressed/original ratio (mcrengine-style)")
    p.add_argument("--mtbf-local", type=float, default=None,
                   help="per-node soft-failure MTBF (s); enables failure injection")
    p.add_argument("--mtbf-remote", type=float, default=None,
                   help="per-node hard-failure MTBF (s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--autotune", action="store_true",
                   help="run the online policy tuner: a per-rank bandit "
                        "over the policy modes, hot-swapped between intervals")
    p.add_argument("--autotune-strategy", choices=["epsilon", "ucb"],
                   default="epsilon", help="bandit strategy for --autotune")
    p.add_argument("--timeline", action="store_true",
                   help="print the phase timeline (Fig. 5 style)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the result as JSON to PATH ('-' for stdout)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="stream the run's trace events to PATH as "
                        "versioned Jsonl (replayable with sweep --replay)")
    # synthetic-model knobs
    p.add_argument("--checkpoint-mb", type=float, default=400.0)
    p.add_argument("--chunk-mb", type=float, default=25.0)
    p.add_argument("--hot-fraction", type=float, default=0.0)
    p.add_argument("--write-once-fraction", type=float, default=0.0)
    p.add_argument("--comm-mb", type=float, default=100.0)
    p.add_argument("--small-chunks", type=int, default=24,
                   help="small-bucket chunk count for gtc/cm1 (0 = faithful)")
    return p


def resolve_config(args: argparse.Namespace) -> dict:
    """The canonical resolved configuration of one experiment cell:
    every semantic option after argparse defaulting, sorted by name.
    This dict is the cache-key input and the worker payload of the
    execution engine (JSON-serializable and picklable by design)."""
    return {
        k: v for k, v in sorted(vars(args).items()) if k not in NON_SEMANTIC_OPTIONS
    }


def run_cell(config: dict) -> dict:
    """Execute one resolved cell and return its summary dict.

    Module-level and dict-in/dict-out so
    :class:`repro.exec.ParallelExecutor` can ship it across process
    boundaries; the input is copied, so a cell can never leak mutations
    into its siblings.
    """
    args = argparse.Namespace(**dict(config))
    result = run_experiment(args)
    return result_to_dict(result)


def run_experiment(args: argparse.Namespace) -> RunResult:
    resolved = resolve_config(args)
    if args.small_chunks == 0:
        args.small_chunks = None  # faithful layouts
    app = APPS[args.app](args)
    app.iteration_compute_time = args.local_interval
    autotune = AutotuneConfig()
    if getattr(args, "autotune", False):
        autotune = AutotuneConfig(
            enabled=True,
            strategy=getattr(args, "autotune_strategy", "epsilon"),
            seed=args.seed,
        )
    config = CheckpointConfig(
        local_interval=args.local_interval,
        remote_interval=args.remote_interval,
        precopy=PrecopyPolicy(
            mode=args.mode,
            granularity=args.granularity,
            copy_granularity=args.copy_granularity,
            codec=getattr(args, "codec", "raw"),
        ),
        remote_precopy=not args.no_remote_precopy,
        autotune=autotune,
    )
    cluster = Cluster(
        ClusterConfig(nodes=args.nodes),
        nvm_write_bandwidth=GB_per_sec(args.nvm_gbps),
        seed=args.seed,
    )
    pfs = None
    if args.pfs_gbps is not None:
        from ..baselines import PfsModel

        pfs = PfsModel(cluster.engine, aggregate_bandwidth=GB_per_sec(args.pfs_gbps))
        args.no_remote = True
    compression = None
    if args.compress_ratio is not None:
        from ..core import CompressionModel

        compression = CompressionModel(phantom_ratio=args.compress_ratio)
    cluster.build(
        app, config, ranks_per_node=args.ranks_per_node,
        with_remote=not args.no_remote, pfs=pfs, compression=compression,
    )
    failure_config: Optional[FailureConfig] = None
    if args.mtbf_local is not None or args.mtbf_remote is not None:
        failure_config = FailureConfig(
            mtbf_local=args.mtbf_local or 1e12,
            mtbf_remote=args.mtbf_remote or 1e12,
            seed=args.seed,
        )
    runner = ClusterRunner(cluster, failure_config=failure_config)
    trace_path = getattr(args, "trace", None)
    sink = None
    if trace_path:
        from ..metrics.trace import BUS, JsonlSink

        sink = BUS.attach(JsonlSink(trace_path, meta={"config": resolved}))
    try:
        result = runner.run(args.iterations)
    finally:
        if sink is not None:
            BUS.detach(sink)
            sink.close()
    result.cluster = cluster  # type: ignore[attr-defined]
    return result


def result_to_dict(result: RunResult) -> dict:
    """JSON-friendly summary of a run (see :meth:`RunResult.to_dict`)."""
    return result.to_dict()
