"""The parallel, cached cell executor.

:class:`ParallelExecutor` runs a list of independent experiment cells
through a picklable worker function, optionally sharded across a
**persistent** worker pool (:mod:`repro.exec.pool`) and optionally
backed by a :class:`~repro.exec.cache.ResultCache`.

Determinism contract: results are returned **in submission order**, and
each cell's output depends only on its own payload (every stochastic
component inside a cell draws from seeds carried *in* the payload), so
``workers=N`` produces exactly the same result list as ``workers=1``
for any N — worker scheduling can never leak into the output.

Worker-count resolution clamps to the host by default: requesting 4
workers on a 1-CPU box silently oversubscribing was how the original
bench recorded ``workers: 4`` while *losing* wall-clock; the effective
count is now ``min(requested, os.cpu_count())`` and both numbers are
reported (:attr:`ExecutionReport.workers` /
:attr:`ExecutionReport.workers_requested`).  Tests that exercise the
multiprocess path regardless of host width pass ``clamp=False``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cache import ResultCache
from .pool import WorkerPool, shared_pool

__all__ = ["ParallelExecutor", "ExecutionReport", "resolve_workers"]


def resolve_workers(
    workers: int | str | None, *, clamp: bool = True
) -> int:
    """Normalize a worker-count option.

    ``None``/``"auto"``/``0`` mean one worker per available CPU;
    anything else must be a positive int.  With ``clamp`` (the default)
    the result never exceeds ``os.cpu_count()`` — extra processes on an
    oversubscribed host only add dispatch overhead.
    """
    host = max(1, os.cpu_count() or 1)
    if workers in (None, "auto", 0, "0"):
        return host
    n = int(workers)
    if n < 1:
        raise ValueError(f"workers must be >= 1 (or 'auto'), got {workers}")
    return min(n, host) if clamp else n


def _batch_indexes(pending: Sequence[int], n_batches: int) -> List[List[int]]:
    """Split *pending* into at most *n_batches* contiguous batches of
    near-equal size (deterministic; order-preserving)."""
    n = len(pending)
    n_batches = max(1, min(n_batches, n))
    size, extra = divmod(n, n_batches)
    out: List[List[int]] = []
    at = 0
    for b in range(n_batches):
        take = size + (1 if b < extra else 0)
        out.append(list(pending[at : at + take]))
        at += take
    return out


@dataclass
class ExecutionReport:
    """What one :meth:`ParallelExecutor.run` did."""

    results: List[Dict[str, Any]] = field(default_factory=list)
    cells_total: int = 0
    cells_executed: int = 0
    cache_hits: int = 0
    #: effective worker count (after host clamping)
    workers: int = 1
    #: the count the caller asked for, before clamping
    workers_requested: int = 1
    #: dispatch batches streamed to the pool (0 = in-process run)
    batches: int = 0
    wall_s: float = 0.0
    #: per-cell captured trace records, aligned with ``results``
    #: (``None`` per cell unless tracing was requested; cache hits
    #: never re-execute, so their entry is always ``None``)
    trace_records: List[Optional[List[dict]]] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cells_total if self.cells_total else 0.0

    @property
    def cells_per_sec(self) -> float:
        return self.cells_total / self.wall_s if self.wall_s > 0 else 0.0


class ParallelExecutor:
    """Shards independent cells across persistent workers, with caching.

    ``fn`` must be an importable module-level function (it crosses the
    process boundary by pickle) taking one cell payload and returning a
    JSON-serializable result dict.  ``workers=1`` executes in-process —
    the reference serial path the parallel path must match byte for
    byte.

    The multiprocess path uses the session-wide shared pool by default
    (spawned once, reused by every grid); pass ``private_pool=True``
    for an isolated pool owned — and closed — by this executor.
    ``dispatch_batches`` bounds how many task messages a grid costs:
    cells are split into ``min(dispatch_batches * workers, n)`` batches
    pulled by whichever worker frees up first.
    """

    def __init__(
        self,
        workers: int | str | None = 1,
        *,
        cache: Optional[ResultCache] = None,
        mp_start: Optional[str] = None,
        clamp: bool = True,
        private_pool: bool = False,
        dispatch_batches: int = 4,
    ) -> None:
        self.workers_requested = resolve_workers(workers, clamp=False)
        self.workers = resolve_workers(workers, clamp=clamp)
        self.cache = cache
        self.mp_start = mp_start
        self.dispatch_batches = max(1, dispatch_batches)
        self._private_pool = private_pool
        self._pool: Optional[WorkerPool] = None

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._private_pool:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(self.workers, self.mp_start)
            return self._pool
        return shared_pool(self.workers, self.mp_start)

    def close(self) -> None:
        """Close a private pool (the shared pool outlives executors)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Dict[str, Any]],
        payloads: Sequence[Any],
        *,
        keys: Optional[Sequence[Optional[str]]] = None,
        capture_trace: bool = False,
    ) -> ExecutionReport:
        """Execute every payload (or serve it from cache) and return the
        ordered results.

        *keys* is an optional parallel sequence of cache keys; cells
        with a key of ``None`` (or when no cache is configured) always
        execute.  With *capture_trace* each executed cell's trace-bus
        events ride back as JSON-ready records
        (:attr:`ExecutionReport.trace_records`), in-process and across
        the pool alike.
        """
        t0 = time.perf_counter()
        n = len(payloads)
        report = ExecutionReport(
            cells_total=n,
            workers=self.workers,
            workers_requested=self.workers_requested,
        )
        results: List[Optional[Dict[str, Any]]] = [None] * n
        traces: List[Optional[List[dict]]] = [None] * n

        # 1. cache probe — hits never reach a worker
        pending: List[int] = []
        for i in range(n):
            key = keys[i] if keys is not None else None
            cached = self.cache.get(key) if (self.cache is not None and key) else None
            if cached is not None:
                results[i] = cached
                report.cache_hits += 1
            else:
                pending.append(i)

        # 2. execute the misses: batched over the persistent pool, or
        # in-process when one worker (or one cell) makes sharding moot
        if pending:
            if self.workers > 1 and len(pending) > 1:
                batches = _batch_indexes(
                    pending, self.dispatch_batches * self.workers
                )
                report.batches = len(batches)
                pool = self._ensure_pool()
                answered = pool.run_batches(
                    fn,
                    [[(i, payloads[i]) for i in batch] for batch in batches],
                    capture=capture_trace,
                )
                fresh = [answered[i][0] for i in pending]
                for i in pending:
                    traces[i] = answered[i][1]
            else:
                fresh = []
                for i in pending:
                    if capture_trace:
                        from .pool import _run_one

                        result, events = _run_one(fn, payloads[i], True)
                        traces[i] = events
                    else:
                        result = fn(payloads[i])
                    fresh.append(result)
            for i, result in zip(pending, fresh):
                if result is None:
                    raise ValueError("executor fn returned None for a cell")
                results[i] = result
                if self.cache is not None and keys is not None and keys[i]:
                    self.cache.put(keys[i], result)
            report.cells_executed = len(pending)

        report.results = results  # type: ignore[assignment]  (all filled)
        report.trace_records = traces
        report.wall_s = time.perf_counter() - t0
        return report
