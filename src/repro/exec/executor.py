"""The parallel, cached cell executor.

:class:`ParallelExecutor` runs a list of independent experiment cells
through a picklable worker function, optionally sharded across
``multiprocessing`` workers and optionally backed by a
:class:`~repro.exec.cache.ResultCache`.

Determinism contract: results are returned **in submission order**, and
each cell's output depends only on its own payload (every stochastic
component inside a cell draws from seeds carried *in* the payload), so
``workers=N`` produces exactly the same result list as ``workers=1``
for any N — worker scheduling can never leak into the output.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cache import ResultCache

__all__ = ["ParallelExecutor", "ExecutionReport", "resolve_workers"]


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker-count option: ``None``/``"auto"``/``0`` mean
    one worker per available CPU; anything else must be a positive int."""
    if workers in (None, "auto", 0, "0"):
        return max(1, os.cpu_count() or 1)
    n = int(workers)
    if n < 1:
        raise ValueError(f"workers must be >= 1 (or 'auto'), got {workers}")
    return n


@dataclass
class ExecutionReport:
    """What one :meth:`ParallelExecutor.run` did."""

    results: List[Dict[str, Any]] = field(default_factory=list)
    cells_total: int = 0
    cells_executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cells_total if self.cells_total else 0.0

    @property
    def cells_per_sec(self) -> float:
        return self.cells_total / self.wall_s if self.wall_s > 0 else 0.0


class ParallelExecutor:
    """Shards independent cells across processes, with result caching.

    ``fn`` must be an importable module-level function (it crosses the
    process boundary by pickle) taking one cell payload and returning a
    JSON-serializable result dict.  ``workers=1`` executes in-process —
    the reference serial path the parallel path must match byte for
    byte.
    """

    def __init__(
        self,
        workers: int | str | None = 1,
        *,
        cache: Optional[ResultCache] = None,
        mp_start: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        if mp_start is None:
            mp_start = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.mp_start = mp_start

    def run(
        self,
        fn: Callable[[Any], Dict[str, Any]],
        payloads: Sequence[Any],
        *,
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> ExecutionReport:
        """Execute every payload (or serve it from cache) and return the
        ordered results.

        *keys* is an optional parallel sequence of cache keys; cells
        with a key of ``None`` (or when no cache is configured) always
        execute.
        """
        t0 = time.perf_counter()
        n = len(payloads)
        report = ExecutionReport(cells_total=n, workers=self.workers)
        results: List[Optional[Dict[str, Any]]] = [None] * n

        # 1. cache probe — hits never reach a worker
        pending: List[int] = []
        for i in range(n):
            key = keys[i] if keys is not None else None
            cached = self.cache.get(key) if (self.cache is not None and key) else None
            if cached is not None:
                results[i] = cached
                report.cache_hits += 1
            else:
                pending.append(i)

        # 2. execute the misses, sharded across workers
        if pending:
            todo = [payloads[i] for i in pending]
            if self.workers > 1 and len(todo) > 1:
                ctx = multiprocessing.get_context(self.mp_start)
                with ctx.Pool(min(self.workers, len(todo))) as pool:
                    # chunksize=1: cells are coarse; favour balance
                    fresh = pool.map(fn, todo, chunksize=1)
            else:
                fresh = [fn(p) for p in todo]
            for i, result in zip(pending, fresh):
                if result is None:
                    raise ValueError("executor fn returned None for a cell")
                results[i] = result
                if self.cache is not None and keys is not None and keys[i]:
                    self.cache.put(keys[i], result)
            report.cells_executed = len(pending)

        report.results = results  # type: ignore[assignment]  (all filled)
        report.wall_s = time.perf_counter() - t0
        return report
