"""Persistent worker pool: spawn once, stream batched cell dispatch.

The first generation of the executor forked a fresh ``multiprocessing``
pool per grid and shipped every cell as its own pickled task
(``chunksize=1``).  On the ~0.27 s cells of the pinned bench grid that
overhead *dominated* — ``parallel_cold`` ran at 0.45x serial.  This
module replaces it:

* **workers are long-lived**: one set of daemon processes per
  ``(start-method, n)`` pool, spawned on first use and reused across
  every grid of the session (:func:`shared_pool`), so the interpreter /
  page-table fork cost is paid once, not per ``run_grid`` call;
* **dispatch is batched**: cells travel as ``(index, payload)`` batches
  over one task queue — a handful of queue messages per grid instead of
  one pickled task per cell — and workers pull batches on demand, so
  load balance survives heterogeneous cell times;
* **results are compact**: each batch answers with one message carrying
  ``(index, result-dict, trace-records)`` triples; the executor
  reassembles submission order from the indexes, which is what keeps
  ``workers=N`` byte-identical to serial;
* **worker-side trace capture**: a batch dispatched with
  ``capture=True`` runs each cell under a ring-buffer sink on the
  process-local trace bus and returns the events as JSON-ready records,
  so ``run_grid(trace=...)`` works under parallel execution (the old
  fork pool silently dropped child events).

Failure semantics: an exception inside a cell is caught, shipped back,
and re-raised in the parent after in-flight batches drain; a worker
that dies hard (kill -9, OOM) is detected by liveness polling and
surfaces as :class:`WorkerPoolError` instead of a deadlock.  Workers
are daemons — an exiting parent never hangs on them.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["WorkerPool", "WorkerPoolError", "shared_pool", "shutdown_pools"]


class WorkerPoolError(RuntimeError):
    """A worker process died or misbehaved mid-grid."""


def _run_one(fn: Callable[[Any], Any], payload: Any, capture: bool):
    """Execute one cell, optionally under a trace-capture sink."""
    if not capture:
        return fn(payload), None
    from ..metrics.trace import BUS, RingBufferSink

    sink = RingBufferSink(capacity=None)
    BUS.attach(sink)
    try:
        result = fn(payload)
    finally:
        BUS.detach(sink)
    return result, [event.to_record() for event in sink.events]


def _worker_main(task_q, result_q) -> None:
    """Worker loop: pull a batch, run its cells, answer in one message.

    A ``None`` task is the shutdown sentinel.  Any exception raised by a
    cell is shipped back tagged ``"err"`` (the original exception when
    it pickles, a reconstructed :class:`WorkerPoolError` carrying the
    traceback text when it does not) and the worker stays alive for the
    next batch.
    """
    # a forked worker inherits whatever trace sinks the parent had
    # attached at spawn time; writing to them from here would corrupt
    # shared file handles, so start with a clean process-local bus
    try:
        from ..metrics.trace import BUS

        del BUS._sinks[:]
    except Exception:
        pass
    while True:
        task = task_q.get()
        if task is None:
            return
        batch_id, fn, items, capture = task
        out: List[Tuple[int, Any, Optional[list]]] = []
        try:
            for index, payload in items:
                result, events = _run_one(fn, payload, capture)
                out.append((index, result, events))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            try:
                pickle.dumps(exc)
                shipped: BaseException = exc
            except Exception:
                shipped = WorkerPoolError(
                    f"unpicklable {type(exc).__name__} in worker "
                    f"{os.getpid()}:\n{traceback.format_exc()}"
                )
            result_q.put(("err", batch_id, shipped))
            continue
        result_q.put(("ok", batch_id, out))


class WorkerPool:
    """A fixed set of long-lived worker processes behind two queues.

    The pool is function-agnostic: each batch names its callable (a
    module-level function, pickled *by reference* — a few dozen bytes),
    so one pool serves every grid of a session.
    """

    #: seconds between liveness checks while waiting on results
    _POLL_S = 1.0

    def __init__(self, workers: int, mp_start: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        if mp_start is None:
            mp_start = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.mp_start = mp_start
        self.workers = workers
        self._ctx = multiprocessing.get_context(mp_start)
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs: List[Any] = []
        self._closed = False
        self._spawn_missing()

    # -- lifecycle ----------------------------------------------------------

    def _spawn_missing(self) -> None:
        """Top the pool back up to ``workers`` live processes (replaces
        any that died between grids)."""
        self._procs = [p for p in self._procs if p.is_alive()]
        while len(self._procs) < self.workers:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                daemon=True,
                name=f"repro-exec-worker-{len(self._procs)}",
            )
            proc.start()
            self._procs.append(proc)

    @property
    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, join_timeout: float = 5.0) -> None:
        """Send every worker the shutdown sentinel and reap it."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except Exception:
                break
        for proc in self._procs:
            proc.join(timeout=join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        for q in (self._task_q, self._result_q):
            try:
                q.close()
                q.join_thread()
            except Exception:
                pass

    # -- dispatch -----------------------------------------------------------

    def run_batches(
        self,
        fn: Callable[[Any], Any],
        batches: Sequence[Sequence[Tuple[int, Any]]],
        *,
        capture: bool = False,
    ) -> Dict[int, Tuple[Any, Optional[list]]]:
        """Stream *batches* of ``(index, payload)`` pairs through the
        pool and return ``{index: (result, trace-records)}``.

        Batches are pulled by whichever worker frees up first; the
        index mapping makes the answer order-independent.  The first
        cell exception re-raises here once every in-flight batch has
        drained (so the queues are clean for the next grid).
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        self._spawn_missing()
        for batch_id, batch in enumerate(batches):
            self._task_q.put((batch_id, fn, list(batch), capture))
        out: Dict[int, Tuple[Any, Optional[list]]] = {}
        first_error: Optional[BaseException] = None
        outstanding = len(batches)
        while outstanding:
            try:
                tag, _batch_id, data = self._result_q.get(timeout=self._POLL_S)
            except Exception:  # queue.Empty — check the workers still live
                if self.alive == 0:
                    raise WorkerPoolError(
                        f"all {self.workers} workers died with "
                        f"{outstanding} batch(es) outstanding"
                    ) from None
                continue
            outstanding -= 1
            if tag == "err":
                if first_error is None:
                    first_error = data
                continue
            for index, result, events in data:
                out[index] = (result, events)
        if first_error is not None:
            raise first_error
        return out


# ---------------------------------------------------------------------------
# The shared per-process pool registry.
# ---------------------------------------------------------------------------

#: (mp_start, workers) -> live pool; grids of the same shape reuse the
#: same worker processes for the whole session
_POOLS: Dict[Tuple[str, int], WorkerPool] = {}


def shared_pool(workers: int, mp_start: Optional[str] = None) -> WorkerPool:
    """The session-wide persistent pool for this worker count.

    Spawned on first use, reused by every subsequent grid (that is the
    'spawn once' half of the redesign), torn down at interpreter exit.
    """
    if mp_start is None:
        mp_start = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    key = (mp_start, workers)
    pool = _POOLS.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(workers, mp_start)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close every shared pool (idempotent; registered atexit)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
