"""Sweep grids and the one public entry point for running them.

A sweep is the cross product of option axes over the experiment-cell
surface (:mod:`repro.exec.cell`).  :class:`GridSpec` names a grid
declaratively, :func:`expand_grid` resolves every cell to its full
configuration dict (argparse defaulting applied, per-cell seed
derived), and :func:`run_grid` — the facade the CLIs and the bench are
thin wrappers over — pushes the cells through a
:class:`~repro.exec.executor.ParallelExecutor` and returns a
:class:`GridResult`.

Per-cell RNG seeding: each cell's ``seed`` is derived as a stable
48-bit hash of the base ``--seed`` and the cell's *own* axis values —
never of its position in the grid or the worker that ran it.  Cells
therefore decorrelate (sweeping MTBF no longer injects the identical
failure schedule into every cell) while staying bit-reproducible across
serial/parallel execution, axis reordering, and cache round-trips.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import __version__
from .cache import ResultCache, cache_key
from .cell import build_parser, resolve_config, run_cell
from .executor import ExecutionReport, ParallelExecutor

__all__ = [
    "Axes",
    "GridCell",
    "GridSpec",
    "GridResult",
    "GridReport",
    "CSV_FIELDS",
    "collect_fields",
    "derive_cell_seed",
    "expand_grid",
    "flatten_record",
    "parse_sweeps",
    "run_grid",
    "write_csv",
]

Axes = Sequence[Tuple[str, Sequence[str]]]

#: preferred CSV column ordering; columns present in the results are
#: emitted in this order first, every other key follows in the stable
#: first-seen order of the records (nothing is ever dropped)
CSV_FIELDS = [
    "app", "policy", "remote_precopy", "n_nodes", "n_ranks", "iterations",
    "total_time_s", "ideal_time_s", "overhead_fraction",
    "local.checkpoints", "local.avg_blocking_s", "local.coordinated_gb",
    "local.precopy_gb", "local.fault_time_s",
    "remote.rounds", "remote.round_gb", "remote.stream_gb",
    "remote.helper_utilization",
    "fabric.ckpt_peak_1s_mb", "fabric.app_gb", "fabric.ckpt_gb",
    "failures.soft", "failures.hard", "failures.recovery_s",
]


def parse_sweeps(specs: Sequence[str]) -> List[Tuple[str, List[str]]]:
    """``["nvm-gbps=0.5,1.0", "mode=none,dcpcp"]`` -> axis list."""
    axes: List[Tuple[str, List[str]]] = []
    for spec in specs:
        if "=" not in spec:
            raise ValueError(f"sweep spec {spec!r} must look like name=v1,v2")
        name, _, values = spec.partition("=")
        vals = [v for v in values.split(",") if v]
        if not vals:
            raise ValueError(f"sweep spec {spec!r} has no values")
        axes.append((name.strip(), vals))
    return axes


def flatten_record(d: dict, prefix: str = "") -> dict:
    """``{"local": {"gb": 1}} -> {"local.gb": 1}`` (stable order)."""
    out: Dict[str, Any] = {}
    for key, value in d.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_record(value, prefix=f"{name}."))
        else:
            out[name] = value
    return out


def derive_cell_seed(base_seed: int, overrides: Sequence[Tuple[str, str]]) -> int:
    """Stable per-cell seed from the base seed and the cell's axis
    values (execution-order and axis-order independent)."""
    canon = ";".join(f"{k}={v}" for k, v in sorted(overrides))
    digest = hashlib.blake2b(
        f"{base_seed}:{canon}".encode("utf-8"), digest_size=6
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class GridCell:
    """One fully resolved point of the sweep grid."""

    index: int
    overrides: Tuple[Tuple[str, str], ...]  # axis name -> swept value
    config: Dict[str, Any]  # resolved experiment config (hash input)

    @property
    def key(self) -> str:
        """Content address of this cell for the result cache."""
        return cache_key(self.config, __version__)


@dataclass(frozen=True)
class GridSpec:
    """A declarative sweep grid: base CLI options crossed over axes.

    The one value :func:`run_grid` takes.  Axes are given either as
    ``(name, values)`` pairs or as ``"name=v1,v2"`` sweep specs (the
    CLI form); both normalize to the same tuple-of-tuples.
    """

    base: Tuple[str, ...] = ()
    axes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    derive_seeds: bool = True

    @classmethod
    def of(
        cls,
        base_args: Sequence[str],
        axes: Union[Axes, Sequence[str], None] = None,
        *,
        derive_seeds: bool = True,
    ) -> "GridSpec":
        """Normalize any accepted (base, axes) shape into a spec."""
        parsed: Axes
        if axes is None:
            parsed = []
        elif axes and isinstance(axes[0], str):
            parsed = parse_sweeps(list(axes))  # "name=v1,v2" specs
        else:
            parsed = axes  # already (name, values) pairs
        return cls(
            base=tuple(base_args),
            axes=tuple((name, tuple(str(v) for v in values)) for name, values in parsed),
            derive_seeds=derive_seeds,
        )

    @property
    def n_cells(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n


@dataclass
class GridResult:
    """The records of a grid run plus the executor's accounting."""

    records: List[Dict[str, Any]]
    cells: List[GridCell]
    execution: ExecutionReport
    #: path the grid's trace was streamed to (None when not requested)
    trace_path: Optional[str] = None

    def write_csv(self, stream: IO[str]) -> None:
        """Write one CSV row per cell to an open text *stream*."""
        axes = [(name, list(values)) for name, values in self._axes]
        write_csv(self.records, axes, stream)

    @property
    def _axes(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        if not self.cells:
            return ()
        return tuple(
            (name, ()) for name, _ in self.cells[0].overrides
        )


#: historical name of :class:`GridResult` (pre-facade API)
GridReport = GridResult


def expand_grid(
    base_args: Sequence[str],
    axes: Union[Axes, Sequence[str], None] = None,
    *,
    derive_seeds: bool = True,
) -> List[GridCell]:
    """Resolve the cross product of *axes* over *base_args* into cells.

    With ``derive_seeds`` (the default) each cell's ``seed`` option is
    replaced by :func:`derive_cell_seed` unless ``seed`` is itself a
    swept axis value for that cell.
    """
    spec = (
        base_args
        if isinstance(base_args, GridSpec)
        else GridSpec.of(base_args, axes, derive_seeds=derive_seeds)
    )
    parser = build_parser()
    names = [name for name, _ in spec.axes]
    cells: List[GridCell] = []
    for index, combo in enumerate(
        itertools.product(*(vals for _, vals in spec.axes))
    ):
        argv = list(spec.base)
        for name, value in zip(names, combo):
            argv += [f"--{name}", value]
        args = parser.parse_args(argv)
        overrides = tuple(zip(names, combo))
        if spec.derive_seeds and "seed" not in names:
            args.seed = derive_cell_seed(args.seed, overrides)
        cells.append(GridCell(index=index, overrides=overrides, config=resolve_config(args)))
    return cells


def collect_fields(records: Sequence[dict], axes: Axes) -> List[str]:
    """The CSV column set: sweep coordinates, then the preferred
    ordering, then every remaining key in stable first-seen order —
    the union over *all* records, so no metric is silently dropped."""
    sweep_cols = [f"sweep.{name}" for name, _ in axes]
    seen: Dict[str, None] = {}
    for record in records:
        for key in record:
            if key not in seen:
                seen[key] = None
    preferred = [f for f in CSV_FIELDS if f in seen]
    rest = [k for k in seen if k not in preferred and k not in sweep_cols]
    return sweep_cols + preferred + rest


def write_csv(records: Sequence[dict], axes: Axes, stream: IO[str]) -> None:
    """Write the sweep records as CSV to an open text *stream*."""
    import csv

    writer = csv.DictWriter(stream, fieldnames=collect_fields(records, axes))
    writer.writeheader()
    for record in records:
        writer.writerow(record)


def _write_grid_trace(
    target: Union[str, IO[str]],
    cells: Sequence[GridCell],
    execution: ExecutionReport,
) -> None:
    """Stream the per-cell captured events as one versioned Jsonl file.

    The header's meta carries the grid shape and every cell's resolved
    config (keyed by index), then each executed cell's events follow in
    submission order — deterministic output whether the cells ran
    in-process or across the pool.  Cache-served cells executed
    nothing, so they contribute no events.
    """
    from ..metrics.trace import TRACE_VERSION

    owns = isinstance(target, str)
    fh: IO[str] = open(target, "w", encoding="utf-8") if owns else target
    try:
        header = {
            "kind": "trace.header",
            "trace_version": TRACE_VERSION,
            "meta": {
                "source": "repro.exec.run_grid",
                "cells": [
                    {
                        "index": cell.index,
                        "overrides": dict(cell.overrides),
                        "config": cell.config,
                    }
                    for cell in cells
                ],
            },
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for records in execution.trace_records:
            for record in records or ():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if owns:
            fh.close()


def run_grid(
    grid: Union[GridSpec, Sequence[str]],
    axes: Union[Axes, Sequence[str], None] = None,
    *,
    workers: int | str | None = 1,
    cache: Union[ResultCache, str, None] = None,
    trace: Union[str, IO[str], None] = None,
    derive_seeds: bool = True,
    mp_start: Optional[str] = None,
    clamp: bool = True,
    executor: Optional[ParallelExecutor] = None,
) -> GridResult:
    """Run a whole sweep grid; the single public execution entry point.

    *grid* is a :class:`GridSpec` (preferred) or a base-argument list
    with *axes* alongside — the historical calling form, still
    accepted.  *cache* takes a :class:`ResultCache` or a directory
    path; *trace* streams every executed cell's trace events to one
    versioned Jsonl file (captured inside the workers, so it works
    under parallel execution too); *workers* is clamped to the host CPU
    count unless ``clamp=False``.  Pass *executor* to reuse a
    configured :class:`ParallelExecutor` (its workers/cache win).

    Returns one flat record per cell (in grid order), each carrying its
    ``sweep.<axis>`` coordinates alongside the flattened experiment
    metrics.
    """
    spec = grid if isinstance(grid, GridSpec) else GridSpec.of(
        grid, axes, derive_seeds=derive_seeds
    )
    cells = expand_grid(spec)
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        cache = ResultCache(cache)
    ex = executor or ParallelExecutor(
        workers, cache=cache, mp_start=mp_start, clamp=clamp
    )
    report = ex.run(
        run_cell,
        [cell.config for cell in cells],
        keys=[cell.key for cell in cells] if ex.cache is not None else None,
        capture_trace=trace is not None,
    )
    if trace is not None:
        _write_grid_trace(trace, cells, report)
    records: List[Dict[str, Any]] = []
    for cell, result in zip(cells, report.results):
        record = flatten_record(result)
        for name, value in cell.overrides:
            record[f"sweep.{name}"] = value
        records.append(record)
    return GridResult(
        records=records,
        cells=cells,
        execution=report,
        trace_path=trace if isinstance(trace, str) else None,
    )
