"""Sweep-grid expansion and the grid → executor bridge.

A sweep is the cross product of option axes over the
``repro.tools.experiment`` CLI surface.  :func:`expand_grid` resolves
every cell to its full configuration dict (argparse defaulting applied,
per-cell seed derived), and :func:`run_grid` pushes the cells through a
:class:`~repro.exec.executor.ParallelExecutor`.

Per-cell RNG seeding: each cell's ``seed`` is derived as a stable
48-bit hash of the base ``--seed`` and the cell's *own* axis values —
never of its position in the grid or the worker that ran it.  Cells
therefore decorrelate (sweeping MTBF no longer injects the identical
failure schedule into every cell) while staying bit-reproducible across
serial/parallel execution, axis reordering, and cache round-trips.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..tools.experiment import build_parser, resolve_config, run_cell
from .cache import ResultCache, cache_key
from .executor import ExecutionReport, ParallelExecutor

__all__ = [
    "GridCell",
    "GridReport",
    "derive_cell_seed",
    "expand_grid",
    "flatten_record",
    "run_grid",
]

Axes = Sequence[Tuple[str, Sequence[str]]]


def flatten_record(d: dict, prefix: str = "") -> dict:
    """``{"local": {"gb": 1}} -> {"local.gb": 1}`` (stable order)."""
    out: Dict[str, Any] = {}
    for key, value in d.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_record(value, prefix=f"{name}."))
        else:
            out[name] = value
    return out


def derive_cell_seed(base_seed: int, overrides: Sequence[Tuple[str, str]]) -> int:
    """Stable per-cell seed from the base seed and the cell's axis
    values (execution-order and axis-order independent)."""
    canon = ";".join(f"{k}={v}" for k, v in sorted(overrides))
    digest = hashlib.blake2b(
        f"{base_seed}:{canon}".encode("utf-8"), digest_size=6
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class GridCell:
    """One fully resolved point of the sweep grid."""

    index: int
    overrides: Tuple[Tuple[str, str], ...]  # axis name -> swept value
    config: Dict[str, Any]  # resolved experiment config (hash input)

    @property
    def key(self) -> str:
        """Content address of this cell for the result cache."""
        return cache_key(self.config, __version__)


@dataclass
class GridReport:
    """The records of a grid run plus the executor's accounting."""

    records: List[Dict[str, Any]]
    cells: List[GridCell]
    execution: ExecutionReport


def expand_grid(
    base_args: Sequence[str],
    axes: Axes,
    *,
    derive_seeds: bool = True,
) -> List[GridCell]:
    """Resolve the cross product of *axes* over *base_args* into cells.

    With ``derive_seeds`` (the default) each cell's ``seed`` option is
    replaced by :func:`derive_cell_seed` unless ``seed`` is itself a
    swept axis value for that cell.
    """
    import itertools

    parser = build_parser()
    names = [name for name, _ in axes]
    cells: List[GridCell] = []
    for index, combo in enumerate(itertools.product(*(vals for _, vals in axes))):
        argv = list(base_args)
        for name, value in zip(names, combo):
            argv += [f"--{name}", value]
        args = parser.parse_args(argv)
        overrides = tuple(zip(names, combo))
        if derive_seeds and "seed" not in names:
            args.seed = derive_cell_seed(args.seed, overrides)
        cells.append(GridCell(index=index, overrides=overrides, config=resolve_config(args)))
    return cells


def run_grid(
    base_args: Sequence[str],
    axes: Axes,
    *,
    workers: int | str | None = 1,
    cache: Optional[ResultCache] = None,
    derive_seeds: bool = True,
    mp_start: Optional[str] = None,
) -> GridReport:
    """Run the whole grid through the parallel cached executor.

    Returns one flat record per cell (in grid order), each carrying its
    ``sweep.<axis>`` coordinates alongside the flattened experiment
    metrics.
    """
    cells = expand_grid(base_args, axes, derive_seeds=derive_seeds)
    executor = ParallelExecutor(workers, cache=cache, mp_start=mp_start)
    report = executor.run(
        run_cell,
        [cell.config for cell in cells],
        keys=[cell.key for cell in cells] if cache is not None else None,
    )
    records: List[Dict[str, Any]] = []
    for cell, result in zip(cells, report.results):
        record = flatten_record(result)
        for name, value in cell.overrides:
            record[f"sweep.{name}"] = value
        records.append(record)
    return GridReport(records=records, cells=cells, execution=report)
