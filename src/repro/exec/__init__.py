"""The parallel, cached experiment-execution engine.

The paper's evaluation (Figs. 5–10) is a grid of *independent*
simulations — the classic parameter-study shape.  This package turns
that shape into wall-clock wins:

* :mod:`~repro.exec.executor` — :class:`ParallelExecutor` shards cells
  across ``multiprocessing`` workers; results come back in submission
  order, so ``workers=N`` is byte-identical to serial;
* :mod:`~repro.exec.cache` — :class:`ResultCache`, a content-addressed
  store keyed by the resolved cell config + ``repro.__version__``;
  re-running a sweep executes only changed cells;
* :mod:`~repro.exec.grid` — sweep-grid expansion with deterministic
  per-cell RNG seed derivation, bridging the
  ``repro.tools.experiment`` CLI surface onto the executor.

``repro.tools.sweep`` and ``repro.tools.bench`` are the user-facing
entry points.
"""

from .cache import ResultCache, cache_key
from .executor import ExecutionReport, ParallelExecutor, resolve_workers
from .grid import (
    GridCell,
    GridReport,
    derive_cell_seed,
    expand_grid,
    flatten_record,
    run_grid,
)

__all__ = [
    "ResultCache",
    "cache_key",
    "ParallelExecutor",
    "ExecutionReport",
    "resolve_workers",
    "GridCell",
    "GridReport",
    "derive_cell_seed",
    "expand_grid",
    "flatten_record",
    "run_grid",
]
