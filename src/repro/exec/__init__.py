"""The parallel, cached experiment-execution engine.

The paper's evaluation (Figs. 5–10) is a grid of *independent*
simulations — the classic parameter-study shape.  This package turns
that shape into wall-clock wins behind one public entry point,
:func:`run_grid`:

* :mod:`~repro.exec.cell` — the experiment-cell surface: argparse
  options, canonical config resolution, and the picklable
  ``run_cell`` worker function (``repro.tools.experiment`` is a thin
  CLI wrapper over it);
* :mod:`~repro.exec.pool` — :class:`WorkerPool`, persistent daemon
  workers spawned once per session with batched cell dispatch and
  worker-side trace capture;
* :mod:`~repro.exec.executor` — :class:`ParallelExecutor` shards cells
  across the pool; results come back in submission order, so
  ``workers=N`` is byte-identical to serial;
* :mod:`~repro.exec.cache` — :class:`ResultCache`, a content-addressed
  store keyed by the resolved cell config + ``repro.__version__``;
  re-running a sweep executes only changed cells;
* :mod:`~repro.exec.grid` — :class:`GridSpec` expansion with
  deterministic per-cell RNG seed derivation, and the
  :func:`run_grid` facade returning a :class:`GridResult`.

``repro.tools.sweep`` and ``repro.tools.bench`` are thin user-facing
wrappers over :func:`run_grid`.
"""

from .cache import ResultCache, cache_key
from .cell import build_parser, resolve_config, run_cell
from .executor import ExecutionReport, ParallelExecutor, resolve_workers
from .grid import (
    GridCell,
    GridReport,
    GridResult,
    GridSpec,
    derive_cell_seed,
    expand_grid,
    flatten_record,
    parse_sweeps,
    run_grid,
)
from .pool import WorkerPool, WorkerPoolError, shared_pool, shutdown_pools

__all__ = [
    "ResultCache",
    "cache_key",
    "build_parser",
    "resolve_config",
    "run_cell",
    "ParallelExecutor",
    "ExecutionReport",
    "resolve_workers",
    "WorkerPool",
    "WorkerPoolError",
    "shared_pool",
    "shutdown_pools",
    "GridCell",
    "GridSpec",
    "GridResult",
    "GridReport",
    "derive_cell_seed",
    "expand_grid",
    "flatten_record",
    "parse_sweeps",
    "run_grid",
]
