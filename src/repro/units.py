"""Unit helpers and conversions used throughout the simulator.

All simulated times are kept in **seconds** (floats) and all data sizes
in **bytes** (ints).  These helpers exist so that call sites read like
the paper ("410 MB per process", "1 us page write") instead of raw
powers of two.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (binary units, as memory sizes in the paper are binary).
# ---------------------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Default page size used by the emulated NVM kernel manager (4 KiB, the
#: Linux default the paper's kernel extension operates on).
PAGE_SIZE: int = 4 * KiB


def KB(n: float) -> int:
    """*n* kibibytes as an integer byte count."""
    return int(n * KiB)


def MB(n: float) -> int:
    """*n* mebibytes as an integer byte count."""
    return int(n * MiB)


def GB(n: float) -> int:
    """*n* gibibytes as an integer byte count."""
    return int(n * GiB)


# ---------------------------------------------------------------------------
# Times.
# ---------------------------------------------------------------------------


def usec(n: float) -> float:
    """*n* microseconds in seconds."""
    return n * 1e-6


def nsec(n: float) -> float:
    """*n* nanoseconds in seconds."""
    return n * 1e-9


def msec(n: float) -> float:
    """*n* milliseconds in seconds."""
    return n * 1e-3


def minutes(n: float) -> float:
    """*n* minutes in seconds."""
    return n * 60.0


def hours(n: float) -> float:
    """*n* hours in seconds."""
    return n * 3600.0


# ---------------------------------------------------------------------------
# Rates.
# ---------------------------------------------------------------------------


def GB_per_sec(n: float) -> float:
    """*n* GiB/s as bytes/second."""
    return n * GiB


def MB_per_sec(n: float) -> float:
    """*n* MiB/s as bytes/second."""
    return n * MiB


def Gbit_per_sec(n: float) -> float:
    """*n* gigabits/second as bytes/second (decimal gigabit, as used for
    interconnect line rates like "40Gbps InfiniBand")."""
    return n * 1e9 / 8.0


def to_MB(nbytes: float) -> float:
    """Bytes to mebibytes (float, for reporting)."""
    return nbytes / MiB


def to_GB(nbytes: float) -> float:
    """Bytes to gibibytes (float, for reporting)."""
    return nbytes / GiB


def pages_of(nbytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages needed to hold *nbytes* (ceiling division)."""
    if nbytes <= 0:
        return 0
    return -(-nbytes // page_size)


def align_up(nbytes: int, alignment: int = PAGE_SIZE) -> int:
    """Round *nbytes* up to a multiple of *alignment*."""
    if nbytes <= 0:
        return 0
    return -(-nbytes // alignment) * alignment
