"""LAMMPS (Rhodopsin / RhodoSpin benchmark) workload model.

Paper facts encoded here:

* per-rank checkpoint size ~410 MB with 48 MPI processes;
* 31 checkpoint chunks, "modified across different application stages"
  (RhodoSpin was chosen for exactly this property);
* the 3-D result array with relative molecular positions is a **hot
  chunk**: modified until the end of every compute iteration (Fig. 6's
  example) — the DCPCP motivation;
* Table IV byte shares (weights 15/0/20/25 over the listed buckets):
  ~25% in 0.5-1 MB, ~33% in 50-100 MB, ~42% above 100 MB;
* pre-copy moves ~3% *extra* data (hot chunks re-copied) yet still
  cuts the checkpoint-induced slowdown from ~15% to ~6.5% (Fig. 7).
"""

from __future__ import annotations

from typing import List

from ..units import MB
from .base import ApplicationModel, ChunkSpec, WritePattern

__all__ = ["LammpsModel"]


class LammpsModel(ApplicationModel):
    name = "lammps"
    iteration_compute_time = 40.0
    comm_bytes_per_iteration = MB(400)
    comm_bursts = 4

    #: the paper reports 31 checkpoint chunks for Rhodo
    TOTAL_CHUNKS = 31

    def __init__(self, checkpoint_mb_per_rank: float = 410.0) -> None:
        super().__init__(checkpoint_mb_per_rank)
        self._specs_cache: dict[int, List[ChunkSpec]] = {}

    def chunk_specs(self, rank_index: int) -> List[ChunkSpec]:
        cached = self._specs_cache.get(rank_index)
        if cached is not None:
            return cached
        D = MB(self.checkpoint_mb_per_rank)
        large_budget = int(0.42 * D)  # >100MB
        mid_budget = int(0.33 * D)  # 50-100MB
        small_budget = D - large_budget - mid_budget  # ~25%
        specs: List[ChunkSpec] = []
        # -- hot 3-D molecular-position result array (>100MB): written
        # at stage boundaries and again just before the iteration ends
        specs.append(
            ChunkSpec("x_positions", large_budget, WritePattern.HOT,
                      fractions=(0.2, 0.45, 0.7, 0.97))
        )
        # -- 50-100MB bucket: force accumulators + neighbor lists,
        # rewritten at different stages
        specs.append(
            ChunkSpec("f_forces", mid_budget // 2, WritePattern.STAGED,
                      fractions=(0.15, 0.4, 0.65))
        )
        specs.append(
            ChunkSpec("neigh_list", mid_budget - mid_budget // 2, WritePattern.STAGED,
                      fractions=(0.1, 0.55, 0.8))
        )
        # -- 0.5-1MB bucket: the remaining 28 of the 31 chunks
        # (velocities, per-type tables, thermo state...), staged across
        # the iteration
        n_small = self.TOTAL_CHUNKS - len(specs)
        small_size = small_budget // n_small
        for i in range(n_small):
            frac = 0.1 + 0.75 * (i / max(1, n_small - 1))
            specs.append(
                ChunkSpec(f"aux_{i}", small_size, WritePattern.STAGED,
                          fractions=(frac, min(0.95, frac + 0.2)))
            )
        self._specs_cache[rank_index] = specs
        return specs
