"""CM1 (3-D hurricane simulation) workload model.

Paper facts encoded here:

* Fortran code, GTC-like application-initiated checkpointing, per-rank
  checkpoint size ~400 MB in the chunk-size study;
* Table IV byte shares: ~40% in 0.5-1 MB chunks, ~54% in 50-100 MB,
  only ~4% above 100 MB;
* pre-copy helps CM1 by **under 5%**.  The paper attributes this to
  the chunk-size mix (Table IV: nothing above 100 MB).  In this
  simulator the low benefit emerges from the matching *update
  schedule*: CM1's prognostic 3-D fields are rewritten at every model
  timestep — effectively until the end of each compute interval — so
  most of the checkpoint volume is never stable long enough to
  pre-copy, and the coordinated step pays for it either way (see
  DESIGN.md's substitution notes).
"""

from __future__ import annotations

from typing import List

from ..units import MB
from .base import ApplicationModel, ChunkSpec, WritePattern

__all__ = ["CM1Model"]


class CM1Model(ApplicationModel):
    name = "cm1"
    iteration_compute_time = 40.0
    comm_bytes_per_iteration = MB(300)
    comm_bursts = 4

    def __init__(
        self, checkpoint_mb_per_rank: float = 400.0, small_chunks: int | None = None
    ) -> None:
        super().__init__(checkpoint_mb_per_rank)
        self.small_chunks = small_chunks
        self._specs_cache: dict[int, List[ChunkSpec]] = {}

    def chunk_specs(self, rank_index: int) -> List[ChunkSpec]:
        cached = self._specs_cache.get(rank_index)
        if cached is not None:
            return cached
        D = MB(self.checkpoint_mb_per_rank)
        mid_budget = int(0.55 * D)  # 50-100MB: 3-D field arrays
        small_budget = int(0.41 * D)  # 0.5-1MB: column diagnostics
        large_budget = D - mid_budget - small_budget  # ~4%, no >100MB chunk
        specs: List[ChunkSpec] = []
        # -- 50-100MB: prognostic 3-D fields (u, v, w, theta), each
        # rewritten every time step
        n_mid = max(3, mid_budget // MB(75))
        mid_size = mid_budget // n_mid
        fields = ["u_wind", "v_wind", "w_wind", "theta", "moisture", "pressure3d"]
        for i in range(n_mid):
            name = fields[i] if i < len(fields) else f"field_{i}"
            # prognostic fields advance every model timestep: written
            # throughout the interval, last at ~the final timestep
            specs.append(
                ChunkSpec(name, mid_size, WritePattern.HOT,
                          fractions=(0.3 + 0.05 * i, 0.65, 0.96 + 0.005 * (i % 5)))
            )
        # -- the small remainder rides with the mid bucket (Table IV
        # puts ~4% above 100MB; at 400 MB that budget cannot form a
        # >100MB chunk, so it lands in the largest mid chunk instead)
        specs[0] = ChunkSpec(
            specs[0].name, specs[0].nbytes + large_budget, specs[0].pattern,
            fractions=specs[0].fractions,
        )
        # -- 0.5-1MB: per-column diagnostics
        n_small = self.small_chunks or max(1, small_budget // MB(0.8))
        small_size = small_budget // n_small
        for i in range(n_small):
            specs.append(
                ChunkSpec(f"diag_{i}", small_size, WritePattern.PER_ITER,
                          fractions=(0.2 + 0.6 * (i / max(1, n_small - 1)),))
            )
        self._specs_cache[rank_index] = specs
        return specs
