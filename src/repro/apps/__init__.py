"""Application workload models.

Each model reproduces what matters about the paper's three HPC codes
for checkpoint behaviour: per-process checkpoint size, the Table-IV
chunk-size distribution, the per-iteration write schedule (write-once /
per-iteration / staged / hot chunks, Fig. 6), and communication volume
(the traffic remote checkpoints contend with).  ``synthetic`` is the
parameterizable model used by ablations; ``madbench`` reproduces the
MADBench2 I/O kernel used for the §IV ramdisk-vs-memory motivation.
"""

from .base import ApplicationModel, ChunkSpec, RankBinding, WritePattern
from .gtc import GTCModel
from .lammps import LammpsModel
from .cm1 import CM1Model
from .synthetic import SyntheticModel
from .madbench import MADBench

__all__ = [
    "ApplicationModel",
    "ChunkSpec",
    "RankBinding",
    "WritePattern",
    "GTCModel",
    "LammpsModel",
    "CM1Model",
    "SyntheticModel",
    "MADBench",
]
