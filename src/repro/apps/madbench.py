"""MADBench2-style I/O kernel for the §IV motivation study.

MADBench2 is an out-of-core cosmology benchmark whose I/O phases write
and read large dense matrices.  The paper uses it to compare
checkpointing through a ramdisk filesystem against plain in-memory
copies: same bytes, same DRAM, different software path.  This model
replays that experiment: per core, ``phases`` write phases of
``data_mb`` each, through either path model, with all node cores
writing concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.ramdisk import MemoryPathModel, PathCosts, RamdiskPathModel
from ..units import MB

__all__ = ["MADBench", "MADBenchResult"]


@dataclass
class MADBenchResult:
    """One (data size, writers) comparison point."""

    data_mb: float
    writers: int
    memory: PathCosts
    ramdisk: PathCosts

    @property
    def slowdown(self) -> float:
        """How much slower the ramdisk path is (0.46 == 46%)."""
        return self.ramdisk.total / self.memory.total - 1.0

    @property
    def sync_call_ratio(self) -> float:
        return self.ramdisk.sync_calls / max(1, self.memory.sync_calls)

    @property
    def lock_wait_ratio(self) -> float:
        if self.memory.lock_wait <= 0:
            return float("inf")
        return self.ramdisk.lock_wait / self.memory.lock_wait


class MADBench:
    """The checkpoint-path comparison harness."""

    def __init__(
        self,
        memory_model: MemoryPathModel | None = None,
        ramdisk_model: RamdiskPathModel | None = None,
        phases: int = 1,
    ) -> None:
        self.memory_model = memory_model or MemoryPathModel()
        self.ramdisk_model = ramdisk_model or RamdiskPathModel()
        self.phases = phases

    def run_point(self, data_mb: float, writers: int = 12) -> MADBenchResult:
        nbytes = MB(data_mb)
        mem = PathCosts()
        ram = PathCosts()
        for _ in range(self.phases):
            m = self.memory_model.checkpoint_costs(nbytes, writers)
            r = self.ramdisk_model.checkpoint_costs(nbytes, writers)
            mem.copy += m.copy
            mem.serialization += m.serialization
            mem.syscalls += m.syscalls
            mem.lock_wait += m.lock_wait
            mem.sync_calls += m.sync_calls
            ram.copy += r.copy
            ram.serialization += r.serialization
            ram.syscalls += r.syscalls
            ram.lock_wait += r.lock_wait
            ram.sync_calls += r.sync_calls
        return MADBenchResult(data_mb=data_mb, writers=writers, memory=mem, ramdisk=ram)

    def sweep(self, sizes_mb: List[float] | None = None, writers: int = 12) -> List[MADBenchResult]:
        """The paper's 50-300 MB/core sweep."""
        sizes = sizes_mb or [50, 100, 150, 200, 250, 300]
        return [self.run_point(s, writers) for s in sizes]
