"""Application model base: chunk declarations + iteration behaviour.

A model describes, per rank:

* the **chunk layout** — names, sizes (matching the app's Table-IV
  distribution) and write patterns;
* the **iteration schedule** — at which fractions of the compute
  interval each chunk is written (this is what DCPC/DCPCP exploit);
* the **communication schedule** — halo-exchange style bursts on the
  fabric that asynchronous remote checkpoints contend with (§IV's
  'communication noise').

Write patterns:

========== ==========================================================
write_once  written only during initialization (GTC's large static
            arrays -> the checkpoint-size reduction of Fig. 8)
per_iter    rewritten every iteration at fixed mid-interval points
staged      rewritten at several stage boundaries across the interval
            (LAMMPS 'modified across different application stages')
hot         modified until the very end of the interval (LAMMPS'
            3-D result array, Fig. 6) — the DCPCP target
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..alloc.chunk import Chunk
from ..alloc.nvmalloc import NVAllocator
from ..config import PrecopyPolicy
from ..net.interconnect import Fabric
from ..sim.engine import Engine

__all__ = ["WritePattern", "ChunkSpec", "RankBinding", "ApplicationModel"]


class WritePattern:
    WRITE_ONCE = "write_once"
    PER_ITER = "per_iter"
    STAGED = "staged"
    HOT = "hot"

    #: default write positions (fractions of the compute interval)
    DEFAULT_FRACTIONS = {
        WRITE_ONCE: (0.02,),
        PER_ITER: (0.35, 0.6),
        STAGED: (0.15, 0.4, 0.65, 0.85),
        HOT: (0.25, 0.5, 0.75, 0.97),
    }


@dataclass(frozen=True)
class ChunkSpec:
    """One checkpoint variable of the application."""

    name: str
    nbytes: int
    pattern: str = WritePattern.PER_ITER
    #: override write positions within the interval (fractions in (0,1])
    fractions: Optional[Tuple[float, ...]] = None
    #: byte region each write touches, as ``(offset_frac, len_frac)``
    #: pairs cycled by write index.  ``None`` picks the pattern
    #: default: STAGED chunks write *fixed* partial slices (each stage
    #: reworks its own section — the write locality page-granular
    #: incremental copy exploits), every other pattern rewrites the
    #: whole chunk.
    write_extents: Optional[Tuple[Tuple[float, float], ...]] = None

    #: STAGED default: stage k touches a fixed 15% slice at quarter
    #: offsets, so the per-interval union stays well under the full
    #: chunk and is *stable* across intervals
    STAGED_EXTENTS = ((0.0, 0.15), (0.25, 0.15), (0.5, 0.15), (0.75, 0.15))

    def write_fractions(self, iteration: int) -> Tuple[float, ...]:
        if self.pattern == WritePattern.WRITE_ONCE:
            return WritePattern.DEFAULT_FRACTIONS[self.pattern] if iteration == 0 else ()
        if self.fractions is not None:
            return self.fractions
        return WritePattern.DEFAULT_FRACTIONS[self.pattern]

    def write_extent(self, write_index: int, nbytes: int) -> Tuple[int, int]:
        """Concrete ``(offset, nbytes)`` for the *write_index*-th write
        of an interval."""
        extents = self.write_extents
        if extents is None:
            if self.pattern == WritePattern.STAGED:
                extents = self.STAGED_EXTENTS
            else:
                return (0, nbytes)
        off_frac, len_frac = extents[write_index % len(extents)]
        off = min(int(off_frac * nbytes), max(0, nbytes - 1))
        n = max(1, int(len_frac * nbytes))
        return (off, min(n, nbytes - off))


@dataclass
class RankBinding:
    """One rank's live connection to the simulation: its allocator
    (chunks), fabric endpoint, and neighbor set."""

    rank: str
    node_id: int
    allocator: NVAllocator
    engine: Engine
    fabric: Optional[Fabric] = None
    neighbors: Sequence[int] = ()
    fault_cost: float = PrecopyPolicy().fault_cost
    #: effective NVM->DRAM migration rate for lazy-restarted chunks
    #: (NVM reads are near-DRAM speed, Table I)
    migration_rate: float = 2.0 * 1024**3
    #: compute-time lost to protection faults so far (accounting)
    fault_time: float = 0.0
    #: compute-time lost to lazy-restart migrations so far
    migration_time: float = 0.0

    def chunk(self, name: str) -> Chunk:
        return self.allocator.chunk(name)

    def charge_fault(self, faults: int) -> float:
        """Convert protection faults into lost compute seconds (the
        paper's 6-12 us per fault)."""
        cost = faults * self.fault_cost
        self.fault_time += cost
        return cost

    def charge_migration(self, nbytes: int) -> float:
        """Lazy-restart copy-on-write: the first write to an
        NVM-resident chunk pays the NVM->DRAM copy."""
        cost = nbytes / self.migration_rate
        self.migration_time += cost
        return cost


class ApplicationModel:
    """Base class; subclasses define name/layout/iteration shape."""

    #: application name (report labels)
    name: str = "app"
    #: target pure-compute seconds per iteration (local checkpoint
    #: frequency in the paper's runs: one checkpoint per interval)
    iteration_compute_time: float = 40.0
    #: bytes each rank exchanges with neighbors per iteration
    comm_bytes_per_iteration: int = 0
    #: number of communication bursts per iteration
    comm_bursts: int = 4

    def __init__(self, checkpoint_mb_per_rank: Optional[float] = None) -> None:
        self.checkpoint_mb_per_rank = checkpoint_mb_per_rank

    # -- layout --------------------------------------------------------------

    def chunk_specs(self, rank_index: int) -> List[ChunkSpec]:
        """The rank's checkpoint variables.  Subclasses implement."""
        raise NotImplementedError

    def allocate(self, binding: RankBinding, rank_index: int) -> List[Chunk]:
        """Materialize the layout through the Table-III interface.

        Each chunk is annotated with its write pattern's content
        *novelty* (how often a rewrite genuinely changes the bytes) so
        the payload codec layer can model delta/dedup yield for phantom
        chunks — see :data:`repro.core.codec.PATTERN_NOVELTY`.
        """
        from ..core.codec import DEFAULT_NOVELTY, PATTERN_NOVELTY

        chunks = []
        for spec in self.chunk_specs(rank_index):
            chunk = binding.allocator.nvalloc(spec.name, spec.nbytes, pflag=True)
            chunk.content_novelty = PATTERN_NOVELTY.get(spec.pattern, DEFAULT_NOVELTY)
            chunks.append(chunk)
        return chunks

    def checkpoint_bytes(self, rank_index: int = 0) -> int:
        return sum(s.nbytes for s in self.chunk_specs(rank_index))

    def chunk_size_distribution(self, rank_index: int = 0) -> dict:
        """Byte share per Table-IV size bucket (for the T4 bench)."""
        buckets = {
            "500K-1MB": (500 * 1024, 1024 * 1024),
            "10-20MB": (10 * 2**20, 20 * 2**20),
            "50-100MB": (50 * 2**20, 100 * 2**20),
            "above 100MB": (100 * 2**20, float("inf")),
            "other": (0, 0),
        }
        totals = {k: 0 for k in buckets}
        grand = 0
        for spec in self.chunk_specs(rank_index):
            grand += spec.nbytes
            for key, (lo, hi) in buckets.items():
                if key != "other" and lo <= spec.nbytes <= hi:
                    totals[key] += spec.nbytes
                    break
            else:
                totals["other"] += spec.nbytes
        if grand == 0:
            return {k: 0.0 for k in totals}
        return {k: 100.0 * v / grand for k, v in totals.items()}

    # -- one compute interval ----------------------------------------------------

    def compute_iteration(self, binding: RankBinding, iteration: int):
        """Generator process: one compute interval for one rank.

        Interleaves compute (timeouts), chunk writes at their scheduled
        fractions, and communication bursts; protection-fault costs
        extend the compute time (that is the pre-copy overhead an
        application actually feels).
        """
        engine = binding.engine
        interval = self.iteration_compute_time
        events: List[Tuple[float, str, object]] = []
        for spec in self.chunk_specs(self._rank_index(binding)):
            for k, frac in enumerate(spec.write_fractions(iteration)):
                events.append((frac * interval, "write", (spec, k)))
        if self.comm_bytes_per_iteration > 0 and binding.fabric is not None and binding.neighbors:
            per_burst = self.comm_bytes_per_iteration / self.comm_bursts
            for b in range(self.comm_bursts):
                at = (b + 0.5) / self.comm_bursts * interval
                events.append((at, "comm", per_burst))
        events.sort(key=lambda e: (e[0], e[1]))
        # `position` tracks scheduled *compute* progress; faults and
        # communication stalls delay everything after them, so the
        # iteration's wall time is compute + fault costs + comm time
        position = 0.0
        for at, kind, payload in events:
            if at > position:
                yield engine.timeout(at - position)
                position = at
            if kind == "write":
                spec, widx = payload  # type: ignore[misc]
                chunk = binding.chunk(spec.name)
                off, n = spec.write_extent(widx, chunk.nbytes)
                # real payloads write their own bytes back (content
                # unchanged, so committed checksums stay valid); the
                # dirt/stale bookkeeping is what matters here
                faults = chunk.touch(n, offset=off) if chunk.phantom else chunk.write(
                    off, chunk.dram[off : off + min(64, n)]  # type: ignore[index]
                )
                cost = binding.charge_fault(faults)
                cost += binding.charge_migration(chunk.take_migration_bytes())
                if cost > 0:
                    yield engine.timeout(cost)
            else:
                n_nb = max(1, len(binding.neighbors))
                waits = [
                    binding.fabric.transfer(  # type: ignore[union-attr]
                        binding.node_id, nb, payload / n_nb, tag=f"{binding.rank}:app"
                    )
                    for nb in binding.neighbors
                ]
                yield engine.all_of(waits)
        if interval > position:
            yield engine.timeout(interval - position)

    def _rank_index(self, binding: RankBinding) -> int:
        # rank ids are formatted "r<k>" by the cluster builder
        digits = "".join(ch for ch in binding.rank if ch.isdigit())
        return int(digits) if digits else 0
