"""GTC — Gyrokinetic Toroidal Code workload model.

Paper facts encoded here:

* checkpoint data is dominated by 2-D particle arrays (ions and
  electrons); per-rank checkpoint size in the remote experiments is
  ~433 MB;
* Table IV byte shares: ~45% in 0.5-1 MB chunks, ~9% in 10-20 MB,
  ~45% above 100 MB;
* "few large chunks (variables) are modified only once (during
  application initiation)" — so one of the large chunks is
  write-once, which is why pre-copy *shrinks* GTC's effective
  checkpoint size (Fig. 8);
* highly communication-intensive (toroidal domain decomposition with
  large halo exchanges).
"""

from __future__ import annotations

from typing import List

from ..units import MB
from .base import ApplicationModel, ChunkSpec, WritePattern

__all__ = ["GTCModel"]


class GTCModel(ApplicationModel):
    name = "gtc"
    iteration_compute_time = 40.0
    comm_bytes_per_iteration = MB(600)
    comm_bursts = 4

    def __init__(
        self, checkpoint_mb_per_rank: float = 433.0, small_chunks: int | None = None
    ) -> None:
        """``small_chunks`` overrides the number of chunks representing
        the 0.5-1 MB bucket; by default enough ~0.85 MB chunks to hold
        the bucket's byte share (faithful to Table IV, a few hundred
        per rank).  Experiments that only care about volume, not
        per-chunk overhead, pass a smaller count for speed."""
        super().__init__(checkpoint_mb_per_rank)
        self.small_chunks = small_chunks
        self._specs_cache: dict[int, List[ChunkSpec]] = {}

    def chunk_specs(self, rank_index: int) -> List[ChunkSpec]:
        cached = self._specs_cache.get(rank_index)
        if cached is not None:
            return cached
        D = MB(self.checkpoint_mb_per_rank)
        large_budget = int(0.45 * D)
        med_budget = int(0.09 * D)
        small_budget = D - large_budget - med_budget  # ~46%
        specs: List[ChunkSpec] = []
        # -- >100MB bucket: the 2-D particle array (rewritten each
        # iteration) and the static equilibrium profile (write-once).
        # At the paper's full scale both land above 100 MB; at reduced
        # experiment scales the 55/45 split simply shrinks with D.
        zion = int(large_budget * 0.55)
        if large_budget >= MB(200):
            zion = max(MB(100), zion)
        static = large_budget - zion
        specs.append(ChunkSpec("zion", zion, WritePattern.PER_ITER, fractions=(0.3, 0.55)))
        specs.append(ChunkSpec("equilibrium", static, WritePattern.WRITE_ONCE))
        # -- 10-20MB bucket: grid field arrays
        n_med = max(1, med_budget // MB(15))
        med_size = med_budget // n_med
        for i in range(n_med):
            specs.append(
                ChunkSpec(f"grid_field_{i}", med_size, WritePattern.PER_ITER, fractions=(0.45,))
            )
        # -- 0.5-1MB bucket: per-diagnostic arrays
        n_small = self.small_chunks or max(1, small_budget // MB(0.85))
        small_size = small_budget // n_small
        for i in range(n_small):
            specs.append(
                ChunkSpec(
                    f"diag_{i}",
                    small_size,
                    WritePattern.PER_ITER,
                    fractions=(0.25 + 0.5 * (i / max(1, n_small - 1)),),
                )
            )
        self._specs_cache[rank_index] = specs
        return specs
