"""Parameterizable synthetic workload for ablation studies.

Lets a benchmark fix the total checkpoint size and vary one axis at a
time: chunk size (the X3 chunk-size-sensitivity ablation explaining
CM1 vs GTC), hot-chunk fraction (the X2 CPC/DCPC/DCPCP ablation), or
write positions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..units import MB
from .base import ApplicationModel, ChunkSpec, WritePattern

__all__ = ["SyntheticModel"]


class SyntheticModel(ApplicationModel):
    name = "synthetic"

    def __init__(
        self,
        checkpoint_mb_per_rank: float = 400.0,
        *,
        chunk_mb: float = 50.0,
        hot_fraction: float = 0.0,
        write_once_fraction: float = 0.0,
        iteration_compute_time: float = 40.0,
        comm_mb_per_iteration: float = 0.0,
        write_fractions: Optional[Tuple[float, ...]] = None,
        comm_bursts: int = 4,
    ) -> None:
        """``chunk_mb`` sets a uniform chunk size; ``hot_fraction`` /
        ``write_once_fraction`` carve byte shares for hot and
        write-once chunks out of the total."""
        super().__init__(checkpoint_mb_per_rank)
        if chunk_mb <= 0:
            raise ValueError("chunk_mb must be positive")
        if not 0.0 <= hot_fraction + write_once_fraction <= 1.0:
            raise ValueError("hot + write_once fractions must stay within [0, 1]")
        self.chunk_mb = chunk_mb
        self.hot_fraction = hot_fraction
        self.write_once_fraction = write_once_fraction
        self.iteration_compute_time = iteration_compute_time
        self.comm_bytes_per_iteration = MB(comm_mb_per_iteration)
        self.comm_bursts = comm_bursts
        self.write_fractions = write_fractions
        self._specs_cache: dict[int, List[ChunkSpec]] = {}

    def chunk_specs(self, rank_index: int) -> List[ChunkSpec]:
        cached = self._specs_cache.get(rank_index)
        if cached is not None:
            return cached
        total = MB(self.checkpoint_mb_per_rank)
        size = MB(self.chunk_mb)
        n_chunks = max(1, total // size)
        n_hot = round(n_chunks * self.hot_fraction)
        n_once = round(n_chunks * self.write_once_fraction)
        specs: List[ChunkSpec] = []
        for i in range(n_chunks):
            if i < n_hot:
                pattern, frac = WritePattern.HOT, None
            elif i < n_hot + n_once:
                pattern, frac = WritePattern.WRITE_ONCE, None
            else:
                pattern = WritePattern.PER_ITER
                frac = self.write_fractions or (
                    0.2 + 0.5 * (i / max(1, n_chunks - 1)),
                )
            specs.append(ChunkSpec(f"chunk_{i}", size, pattern, fractions=frac))
        self._specs_cache[rank_index] = specs
        return specs
