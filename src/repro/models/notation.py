"""Table II: checkpoint model notation, as a parameter object.

All times in seconds, sizes in bytes, bandwidths in bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelParams"]


@dataclass(frozen=True)
class ModelParams:
    """Inputs to the §III model."""

    #: total useful compute time the application needs (T_compute)
    compute_time: float
    #: per-process checkpoint data size (chkpt.datasize)
    checkpoint_bytes: float
    #: effective NVM write bandwidth per core (NVMBW_core)
    nvm_bw_per_core: float
    #: effective interconnect bandwidth available to a process's
    #: remote-checkpoint stream (datamovementcost)
    remote_bw: float
    #: local checkpoint interval I (compute seconds between local ckpts)
    local_interval: float
    #: remote checkpoint interval (seconds between remote ckpts)
    remote_interval: float
    #: MTBF of failures recoverable from local NVM (MTBF_lcl, per job)
    mtbf_local: float
    #: MTBF of failures needing remote recovery (MTBF_rmt, per job)
    mtbf_remote: float
    #: local checkpoint *fetch* time factor: R_lcl = factor * t_lcl
    #: (the paper assumes restart time proportional to checkpoint time)
    local_fetch_factor: float = 1.0
    #: remote fetch factor: R_rmt = factor * t_rmt
    remote_fetch_factor: float = 1.0
    #: fraction of the local checkpoint hidden by pre-copy overlap
    #: (0 = blocking 'no pre-copy'; the paper's measurements put the
    #: pre-copy variants at ~0.5-0.9 depending on chunk mix)
    precopy_overlap: float = 0.0
    #: remote-checkpoint noise on the application per remote interval,
    #: as a fraction of the interval (alpha_comm + alpha_others)
    remote_noise_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("compute_time", "checkpoint_bytes", "nvm_bw_per_core",
                     "remote_bw", "local_interval", "remote_interval",
                     "mtbf_local", "mtbf_remote"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.precopy_overlap <= 1.0:
            raise ValueError("precopy_overlap must be in [0, 1]")
        if self.remote_noise_fraction < 0:
            raise ValueError("remote_noise_fraction must be >= 0")

    def with_(self, **kwargs) -> "ModelParams":
        return replace(self, **kwargs)

    # -- primitive quantities -------------------------------------------------

    @property
    def t_lcl(self) -> float:
        """One local checkpoint: chkpt.datasize / NVMBW_core, with the
        pre-copy overlap fraction hidden under compute."""
        raw = self.checkpoint_bytes / self.nvm_bw_per_core
        return raw * (1.0 - self.precopy_overlap)

    @property
    def t_rmt(self) -> float:
        """One remote checkpoint's data-movement time."""
        return self.checkpoint_bytes / self.remote_bw

    @property
    def r_lcl(self) -> float:
        """Local checkpoint fetch time R_lcl."""
        return self.local_fetch_factor * (self.checkpoint_bytes / self.nvm_bw_per_core)

    @property
    def r_rmt(self) -> float:
        """Remote checkpoint fetch time R_rmt."""
        return self.remote_fetch_factor * self.t_rmt

    @property
    def k_locals_per_remote(self) -> float:
        """K: local checkpoints per remote interval."""
        return max(1.0, self.remote_interval / self.local_interval)
