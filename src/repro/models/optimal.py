"""Optimal checkpoint-interval selection (extension).

The paper takes its intervals from Dong et al.'s estimates (30-100 s);
this module adds the classical closed forms so experiments can derive
intervals from first principles and compare:

* **Young** (1974): ``I* = sqrt(2 * t_ckpt * MTBF)``;
* **Daly** (2006) higher-order form;
* a numeric optimizer over the full §III model, which accounts for the
  two failure levels and pre-copy overlap (neither closed form does).
"""

from __future__ import annotations

import math
from typing import Tuple

from .multilevel import MultilevelModel
from .notation import ModelParams

__all__ = ["young_interval", "daly_interval", "optimal_local_interval"]


def young_interval(t_ckpt: float, mtbf: float) -> float:
    """Young's first-order optimum sqrt(2 * delta * M)."""
    if t_ckpt <= 0 or mtbf <= 0:
        raise ValueError("t_ckpt and mtbf must be positive")
    return math.sqrt(2.0 * t_ckpt * mtbf)


def daly_interval(t_ckpt: float, mtbf: float) -> float:
    """Daly's higher-order estimate (valid for t_ckpt < 2*MTBF)."""
    if t_ckpt <= 0 or mtbf <= 0:
        raise ValueError("t_ckpt and mtbf must be positive")
    if t_ckpt >= 2.0 * mtbf:
        return mtbf  # degenerate regime: checkpoint constantly
    x = t_ckpt / (2.0 * mtbf)
    return math.sqrt(2.0 * t_ckpt * mtbf) * (1.0 + math.sqrt(x) / 3.0 + x / 9.0) - t_ckpt


def optimal_local_interval(
    params: ModelParams,
    lo: float = 1.0,
    hi: float = 3600.0,
    tol: float = 0.5,
) -> Tuple[float, float]:
    """Golden-section minimization of model T_total over the local
    interval.  Returns ``(I*, T_total(I*))``."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    phi = (math.sqrt(5.0) - 1.0) / 2.0

    def f(interval: float) -> float:
        return MultilevelModel(params.with_(local_interval=interval)).total_time()

    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = f(c), f(d)
    while (b - a) > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = f(d)
    best = (a + b) / 2.0
    return best, f(best)
