"""The §III analytical performance model: Table-II notation, the
2-level checkpoint equations, application efficiency, and the optimal
checkpoint-interval extension.
"""

from .notation import ModelParams
from .multilevel import MultilevelModel, TimeBreakdown
from .efficiency import efficiency, overhead_fraction
from .optimal import optimal_local_interval, young_interval, daly_interval

__all__ = [
    "ModelParams",
    "MultilevelModel",
    "TimeBreakdown",
    "efficiency",
    "overhead_fraction",
    "optimal_local_interval",
    "young_interval",
    "daly_interval",
]
