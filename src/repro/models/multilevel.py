"""The §III 2-level checkpoint model.

    T_total = T_compute + T_lcl + O_rmt + T_restart + T_recomp

with

    N_lcl  = T_compute / I                  (checkpoints taken)
    T_lcl  = N_lcl * t_lcl
    O_rmt  = N_rmt * noise per interval     (asynchronous overlap noise)
    F_lcl  = T_compute / MTBF_lcl
    T_lclrestart + T_lclrecomp = F_lcl * (R_lcl + (I + t_lcl)/2)
    F_rmt  = T_total / MTBF_rmt             (solved by fixed point)
    T_rmtrestart = F_rmt * R_rmt
    T_rmtrecomp  = F_rmt * K * (I + t_lcl) / 2

The remote-failure term references T_total itself, so the model solves
a short fixed-point iteration (§III writes F_rmt = T_total/MTBF_rmt).
"""

from __future__ import annotations

from dataclasses import dataclass

from .notation import ModelParams

__all__ = ["TimeBreakdown", "MultilevelModel"]


@dataclass
class TimeBreakdown:
    """The model's decomposition of total runtime."""

    compute: float
    local_checkpoint: float
    remote_overhead: float
    local_restart: float
    local_recompute: float
    remote_restart: float
    remote_recompute: float

    @property
    def restart_total(self) -> float:
        return self.local_restart + self.remote_restart

    @property
    def recompute_total(self) -> float:
        return self.local_recompute + self.remote_recompute

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.local_checkpoint
            + self.remote_overhead
            + self.restart_total
            + self.recompute_total
        )

class MultilevelModel:
    """Evaluates the §III equations for a parameter set."""

    def __init__(self, params: ModelParams) -> None:
        self.p = params

    # -- checkpoint counts -------------------------------------------------------

    @property
    def n_local(self) -> float:
        """N_lcl = T_compute / I."""
        return self.p.compute_time / self.p.local_interval

    @property
    def n_remote(self) -> float:
        return self.p.compute_time / self.p.remote_interval

    @property
    def local_failures(self) -> float:
        """F_lcl = T_compute / MTBF_lcl."""
        return self.p.compute_time / self.p.mtbf_local

    def remote_failures(self, total_time: float) -> float:
        """F_rmt = T_total / MTBF_rmt."""
        return total_time / self.p.mtbf_remote

    # -- components ------------------------------------------------------------------

    def local_checkpoint_time(self) -> float:
        """T_lcl = N_lcl * t_lcl."""
        return self.n_local * self.p.t_lcl

    def remote_overhead(self) -> float:
        """O_rmt: asynchronous remote checkpointing shows up as noise
        on the application, not as blocking time."""
        per_interval = self.p.remote_noise_fraction * self.p.remote_interval
        return self.n_remote * per_interval

    def local_restart_terms(self) -> tuple[float, float]:
        """(T_lclrestart, T_lclrecomp) = F_lcl*(R_lcl, (I+t_lcl)/2)."""
        f = self.local_failures
        restart = f * self.p.r_lcl
        recomp = f * (self.p.local_interval + self.p.t_lcl) / 2.0
        return restart, recomp

    def remote_restart_terms(self, total_time: float) -> tuple[float, float]:
        """(T_rmtrestart, T_rmtrecomp) for a given T_total."""
        f = self.remote_failures(total_time)
        restart = f * self.p.r_rmt
        recomp = f * self.p.k_locals_per_remote * (self.p.local_interval + self.p.t_lcl) / 2.0
        return restart, recomp

    # -- total ------------------------------------------------------------------------

    def solve(self, tol: float = 1e-9, max_iter: int = 200) -> TimeBreakdown:
        """Fixed-point solve of the T_total equation."""
        base = (
            self.p.compute_time
            + self.local_checkpoint_time()
            + self.remote_overhead()
        )
        l_restart, l_recomp = self.local_restart_terms()
        base += l_restart + l_recomp
        total = base
        for _ in range(max_iter):
            r_restart, r_recomp = self.remote_restart_terms(total)
            new_total = base + r_restart + r_recomp
            if abs(new_total - total) <= tol * max(1.0, total):
                total = new_total
                break
            total = new_total
        r_restart, r_recomp = self.remote_restart_terms(total)
        return TimeBreakdown(
            compute=self.p.compute_time,
            local_checkpoint=self.local_checkpoint_time(),
            remote_overhead=self.remote_overhead(),
            local_restart=l_restart,
            local_recompute=l_recomp,
            remote_restart=r_restart,
            remote_recompute=r_recomp,
        )

    def total_time(self) -> float:
        return self.solve().total
