"""Application efficiency (§VI): ideal runtime / actual runtime.

The ideal runtime is a failure-free, checkpoint-free run; the actual
runtime includes local/remote checkpointing (and, in the model,
restart/recompute).  Figure 9 plots this metric against remote
checkpoint interval and NVM bandwidth.
"""

from __future__ import annotations

from .multilevel import MultilevelModel
from .notation import ModelParams

__all__ = ["efficiency", "overhead_fraction"]


def efficiency(params: ModelParams) -> float:
    """Model-predicted efficiency = T_compute / T_total."""
    total = MultilevelModel(params).total_time()
    if total <= 0:
        return 0.0
    return params.compute_time / total


def overhead_fraction(params: ModelParams) -> float:
    """(T_total - T_compute) / T_compute."""
    total = MultilevelModel(params).total_time()
    return (total - params.compute_time) / params.compute_time
