"""The standing crash-consistency harness.

:class:`CrashConsistencyHarness` builds a small but complete
checkpointing world — real-data chunks, a coordinated local
checkpointer with optional CPC pre-copy, optionally a buddy node with
the streaming remote helper — runs a deterministic write/compute/
checkpoint workload under an installed :class:`~.plan.FaultPlan`, and
when the plan crashes it:

1. freezes the world at the crash instant (every DES process is
   :meth:`~repro.sim.engine.Process.abort`-ed synchronously, then both
   stores drop their unflushed writes — power loss);
2. runs the :class:`~.checker.ConsistencyChecker` against the surviving
   durable state, with a content *oracle* recorded through the same
   crash-point hooks (every payload ever staged toward NVM or the
   buddy), so torn data is detected byte-exactly;
3. restarts through the real recovery path
   (:class:`~repro.core.restart.RestartManager`, buddy fallback if a
   buddy exists) — crash points *inside* recovery fire too, and a
   second injected crash triggers one more power loss + retry;
4. classifies the outcome: consistent (restored = last committed
   state), consistent-inflight/mixed (an in-flight commit landed),
   recovered-remote, or unrecoverable — which is always *reported*,
   never silent.

:func:`matrix_case` maps every registered crash point to a harness
configuration + fault schedule that provably reaches it after at least
one commit; the crash-point matrix test and ``tools/faultmatrix`` both
iterate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..alloc.chunk import Chunk
from ..alloc.nvmalloc import NVAllocator
from ..config import CheckpointConfig, PrecopyPolicy
from ..core.context import NodeContext, make_standalone_context
from ..core.local import LocalCheckpointer
from ..core.remote import RemoteHelper, RemoteTarget
from ..core.restart import RestartManager, RestartReport
from ..errors import CheckpointError, CrashInjected, NoCheckpointAvailable, ReproError
from ..memory.persistence import InMemoryStore
from ..net.interconnect import Fabric
from ..sim.engine import Engine, Process
from ..sim.rng import RngStreams
from .checker import ConsistencyChecker, ConsistencyReport, payload_digest
from .crashpoints import LAYER_CODEC, LAYER_MIGRATE, FaultInjector, all_points, install, point
from .plan import FaultPlan, ScriptedFault, KIND_BITROT

__all__ = [
    "OUTCOME_NO_CRASH",
    "OUTCOME_CONSISTENT",
    "OUTCOME_INFLIGHT",
    "OUTCOME_MIXED",
    "OUTCOME_REMOTE",
    "OUTCOME_UNRECOVERABLE",
    "CONSISTENT_OUTCOMES",
    "OracleRecorder",
    "CrashRunResult",
    "CrashConsistencyHarness",
    "matrix_case",
]

OUTCOME_NO_CRASH = "no-crash"
#: every chunk restored to the last committed state the oracle recorded.
OUTCOME_CONSISTENT = "consistent"
#: every chunk restored to a staged-but-not-yet-acknowledged snapshot
#: (the interrupted commit landed durably before the crash).
OUTCOME_INFLIGHT = "consistent-inflight"
#: chunk-wise mix of committed and in-flight snapshots — legal, since
#: per-chunk commits (nvchkptid) flip independently.
OUTCOME_MIXED = "consistent-mixed"
OUTCOME_REMOTE = "recovered-remote"
OUTCOME_UNRECOVERABLE = "unrecoverable"

CONSISTENT_OUTCOMES = (OUTCOME_CONSISTENT, OUTCOME_INFLIGHT, OUTCOME_MIXED, OUTCOME_REMOTE)


class OracleRecorder(FaultInjector):
    """Passive injector that shadows the commit protocol through the
    same hooks the faults use, keeping a byte-exact oracle:

    * ``acceptable[name]`` — digest of every payload ever staged toward
      an NVM version or the buddy (restored data MUST be one of these);
    * ``committed[name]`` — digest of the chunk's committed payload as
      of the last ``local.commit.done``;
    * ``inflight[name]`` — digests staged since that commit (what an
      interrupted commit could legally land).
    """

    def __init__(self) -> None:
        self.acceptable: Dict[str, Set[str]] = {}
        self.committed: Dict[str, str] = {}
        self.inflight: Dict[str, Set[str]] = {}
        self.remote_acceptable: Dict[str, Set[str]] = {}

    def seed_chunk(self, chunk: Chunk) -> None:
        """Record a chunk's initial (all-zero) content as acceptable."""
        d = payload_digest(np.zeros(chunk.nbytes, dtype=np.uint8))
        self.acceptable.setdefault(chunk.name, set()).add(d)
        self.remote_acceptable.setdefault(chunk.name, set()).add(d)

    def _record_staged(self, chunk: Chunk) -> None:
        if chunk.phantom or chunk.dram is None:
            return
        d = payload_digest(chunk.dram)
        self.acceptable.setdefault(chunk.name, set()).add(d)
        self.inflight.setdefault(chunk.name, set()).add(d)

    def on_fire(self, name: str, info: Dict[str, Any]) -> None:
        if name in ("local.stage.after", "precopy.finalize.after"):
            self._record_staged(info["chunk"])
        elif name in ("remote.stream.after_stage", "remote.round.after_stage"):
            chunk = info["chunk"]
            if not chunk.phantom and chunk.dram is not None:
                self.remote_acceptable.setdefault(chunk.name, set()).add(
                    payload_digest(chunk.dram)
                )
        elif name == "local.commit.done":
            allocator: NVAllocator = info["allocator"]
            for chunk in allocator.persistent_chunks():
                if chunk.committed_version < 0 or chunk.phantom:
                    continue
                d = payload_digest(chunk.committed_region().read(0, chunk.nbytes))
                self.committed[chunk.name] = d
                self.acceptable.setdefault(chunk.name, set()).add(d)
                self.inflight[chunk.name] = set()


@dataclass
class CrashRunResult:
    """What one harness run under one fault plan produced."""

    outcome: str
    crash_point: Optional[str]
    plan: FaultPlan
    report: Optional[ConsistencyReport] = None
    remote_report: Optional[ConsistencyReport] = None
    restart_report: Optional[RestartReport] = None
    #: chunk name -> restored payload digest (post-recovery).
    restored: Dict[str, str] = field(default_factory=dict)
    #: chunk name -> final payload digest (fault-free runs).
    final_state: Dict[str, str] = field(default_factory=dict)
    end_time: float = 0.0
    double_crash: bool = False
    detail: str = ""

    @property
    def consistent(self) -> bool:
        return self.outcome in CONSISTENT_OUTCOMES


@dataclass
class _World:
    """One freshly built simulated world."""

    engine: Engine
    store: InMemoryStore
    src: NodeContext
    allocator: NVAllocator
    checkpointer: LocalCheckpointer
    chunks: List[Chunk]
    buddy_store: Optional[InMemoryStore] = None
    dst: Optional[NodeContext] = None
    fabric: Optional[Fabric] = None
    helper: Optional[RemoteHelper] = None
    procs: List[Process] = field(default_factory=list)


class CrashConsistencyHarness:
    """Deterministic workload + crash/restart driver for fault plans."""

    PID = "p0"

    def __init__(
        self,
        *,
        n_chunks: int = 3,
        chunk_bytes: int = 2048,
        n_steps: int = 4,
        seed: int = 2024,
        precopy_mode: str = PrecopyPolicy.CPC,
        with_remote: bool = False,
        local_interval: float = 10.0,
        remote_interval: float = 30.0,
        codec: str = "raw",
    ) -> None:
        if n_chunks < 1 or n_steps < 2:
            raise ValueError("harness needs >= 1 chunk and >= 2 steps")
        self.n_chunks = n_chunks
        self.chunk_bytes = chunk_bytes
        self.n_steps = n_steps
        self.seed = seed
        self.precopy_mode = precopy_mode
        self.with_remote = with_remote
        self.local_interval = local_interval
        self.remote_interval = remote_interval
        self.codec = codec

    # ------------------------------------------------------------------
    # World construction.
    # ------------------------------------------------------------------

    def _build(self) -> _World:
        engine = Engine()
        store = InMemoryStore()
        src = make_standalone_context(store=store, engine=engine, name="n0")
        allocator = NVAllocator(
            self.PID, src.nvmm, src.dram, clock=lambda: engine.now
        )
        policy = PrecopyPolicy(mode=self.precopy_mode, codec=self.codec)
        checkpointer = LocalCheckpointer(
            src, allocator, policy, with_checksums=True, tag=self.PID
        )
        world = _World(
            engine=engine,
            store=store,
            src=src,
            allocator=allocator,
            checkpointer=checkpointer,
            chunks=[],
        )
        if self.with_remote:
            world.buddy_store = InMemoryStore()
            world.dst = make_standalone_context(
                store=world.buddy_store, engine=engine, name="n1"
            )
            world.fabric = Fabric(engine, 2)
            cfg = CheckpointConfig(
                local_interval=self.local_interval,
                remote_interval=self.remote_interval,
                remote_precopy=True,
                precopy=policy,
            )
            world.helper = RemoteHelper(
                0, src, world.fabric, 1, world.dst, [allocator], cfg
            )
            checkpointer.on_complete.append(
                lambda stats: world.helper.notify_local_checkpoint(self.PID)
            )
        for i in range(self.n_chunks):
            # sizes vary so big-chunk-first pre-copy ordering is exercised
            chunk = allocator.nvalloc(f"c{i}", self.chunk_bytes * (i + 1))
            world.chunks.append(chunk)
        return world

    def _pattern(self, rng: RngStreams, step: int, idx: int, nbytes: int) -> np.ndarray:
        return rng.stream(f"write.{step}.{idx}").integers(
            0, 256, size=nbytes, dtype=np.uint8
        )

    def _workload(self, world: _World):
        """Generator process: the whole application lifetime."""
        engine = world.engine
        rng = RngStreams(self.seed)
        world.checkpointer.start_background()
        if world.helper is not None:
            world.procs.append(
                engine.process(world.helper.run(), name="helper")
            )
        if world.checkpointer._precopy_proc is not None:
            world.procs.append(world.checkpointer._precopy_proc)
        for step in range(self.n_steps):
            for idx, chunk in enumerate(world.chunks):
                chunk.write(0, self._pattern(rng, step, idx, chunk.nbytes))
            yield engine.timeout(self.local_interval * 0.6)
            yield from world.checkpointer.checkpoint(blocking=False)
            yield engine.timeout(self.local_interval * 0.4)
        world.checkpointer.stop_background()
        if world.helper is not None:
            world.helper.stop()

    # ------------------------------------------------------------------
    # Running.
    # ------------------------------------------------------------------

    def run_baseline(self) -> CrashRunResult:
        """The workload with *no* injectors installed at all — the
        reference a fault-free plan must be byte-identical to."""
        world = self._build()
        proc = world.engine.process(self._workload(world), name="workload")
        world.procs.append(proc)
        world.engine.run()
        assert proc.ok, f"baseline workload failed: {proc.exception!r}"
        result = CrashRunResult(
            outcome=OUTCOME_NO_CRASH, crash_point=None, plan=FaultPlan([], name="baseline")
        )
        result.final_state = {
            c.name: payload_digest(c.dram) for c in world.chunks if c.dram is not None
        }
        result.end_time = world.engine.now
        return result

    def run(self, plan: FaultPlan) -> CrashRunResult:
        """Run the workload under *plan*; on crash, freeze, check,
        restart, classify."""
        world = self._build()
        recorder = OracleRecorder()
        for chunk in world.chunks:
            recorder.seed_chunk(chunk)

        def freeze(point_name: str) -> None:
            # power loss NOW: no process runs another instruction, and
            # everything not yet flushed is gone
            for proc in world.procs:
                proc.abort()
            world.store.crash()
            if world.buddy_store is not None:
                world.buddy_store.crash()

        plan.on_crash = freeze
        with install(recorder), install(plan):
            proc = world.engine.process(self._workload(world), name="workload")
            world.procs.append(proc)
            world.engine.run()
            if plan.crashed_at is None:
                if not proc.ok:
                    raise AssertionError(
                        f"workload died without an injected crash: {proc.exception!r}"
                    )
                result = CrashRunResult(
                    outcome=OUTCOME_NO_CRASH, crash_point=None, plan=plan
                )
                result.final_state = {
                    c.name: payload_digest(c.dram)
                    for c in world.chunks
                    if c.dram is not None
                }
                result.end_time = world.engine.now
                return result
            # the crash already froze the world; recovery runs with the
            # injectors still installed so restart-path points fire too
            return self._recover(world, plan, recorder)

    # ------------------------------------------------------------------
    # Recovery + classification.
    # ------------------------------------------------------------------

    def _acceptable(self, recorder: OracleRecorder) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for name, digests in recorder.acceptable.items():
            out[name] = set(digests) | recorder.remote_acceptable.get(name, set())
        return out

    def _recover(
        self, world: _World, plan: FaultPlan, recorder: OracleRecorder
    ) -> CrashRunResult:
        result = CrashRunResult(
            outcome=OUTCOME_UNRECOVERABLE, crash_point=plan.crashed_at, plan=plan
        )
        acceptable = self._acceptable(recorder)
        checker = ConsistencyChecker(world.store)
        result.report = checker.check_process(self.PID, expected=acceptable)
        buddy_has_meta = (
            world.buddy_store is not None
            and world.buddy_store.get_meta(f"remote/proc:{self.PID}") is not None
        )
        if buddy_has_meta:
            result.remote_report = ConsistencyChecker(
                world.buddy_store
            ).check_remote_target(self.PID, expected=self._acceptable_remote(recorder))
            if not result.remote_report.ok:
                result.detail = "buddy-side violations: " + result.remote_report.summary()
                return result
        if not result.report.ok:
            result.detail = result.report.summary()
            return result

        # full restart through the real recovery path (hooks still live)
        for attempt in (1, 2):
            try:
                restart_report = self._restart_once(world, buddy_has_meta)
                break
            except CrashInjected:
                # double failure: power loss during recovery, recover again
                result.double_crash = True
                world.store.crash()
                if world.buddy_store is not None:
                    world.buddy_store.crash()
                if attempt == 2:
                    result.detail = "crash injected in recovery twice; giving up"
                    return result
            except NoCheckpointAvailable as err:
                result.detail = f"reported unrecoverable: {err}"
                return result
            except ReproError as err:
                result.detail = f"restart failed: {err}"
                return result

        result.restart_report = restart_report
        assert restart_report.allocator is not None
        restored = {
            c.name: payload_digest(c.dram)
            for c in restart_report.allocator.persistent_chunks()
            if c.dram is not None
        }
        result.restored = restored
        result.end_time = restart_report.end

        torn = [
            name for name, d in restored.items() if d not in acceptable.get(name, set())
        ]
        if torn:
            result.outcome = OUTCOME_UNRECOVERABLE
            result.detail = f"TORN restored data in chunks {torn}"
            if result.report is not None:
                result.report.add("torn-restore", torn[0], result.detail)
            return result
        if restart_report.chunks_remote > 0:
            result.outcome = OUTCOME_REMOTE
            return result
        zeros = {
            c.name: payload_digest(np.zeros(c.nbytes, dtype=np.uint8))
            for c in restart_report.allocator.persistent_chunks()
        }
        kinds = set()
        for name, d in restored.items():
            committed = recorder.committed.get(name, zeros[name])
            if d == committed:
                kinds.add("committed")
            elif d in recorder.inflight.get(name, set()):
                kinds.add("inflight")
            else:
                kinds.add("committed")  # an older acceptable snapshot
        if kinds == {"committed"}:
            result.outcome = OUTCOME_CONSISTENT
        elif kinds == {"inflight"}:
            result.outcome = OUTCOME_INFLIGHT
        else:
            result.outcome = OUTCOME_MIXED
        return result

    def _acceptable_remote(self, recorder: OracleRecorder) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for name, digests in recorder.remote_acceptable.items():
            out[name] = set(digests) | recorder.acceptable.get(name, set())
        return out

    def _restart_once(self, world: _World, buddy_has_meta: bool) -> RestartReport:
        """One recovery attempt on fresh contexts sharing the survived
        stores (the dead node's engine state is gone with it)."""
        engine = Engine()
        ctx = make_standalone_context(store=world.store, engine=engine, name="n0r")
        fabric = None
        remote_target = None
        remote_node = None
        if buddy_has_meta:
            dst = make_standalone_context(
                store=world.buddy_store, engine=engine, name="n1r"
            )
            fabric = Fabric(engine, 2)
            try:
                remote_target = RemoteTarget.reattach(self.PID, dst)
                remote_node = 1
            except CheckpointError:
                remote_target = None
        manager = RestartManager(ctx, fabric=fabric, node_id=0)
        # a codec-enabled run restores through the survived block store
        # (digest verification + refcount rebuild ride on restart)
        block_store = getattr(world.checkpointer.destination, "block_store", None)
        return manager.restart_process_sync(
            self.PID,
            remote_target=remote_target,
            remote_node=remote_node,
            block_store=block_store,
        )


# ---------------------------------------------------------------------------
# The canonical matrix: one reachable case per registered crash point.
# ---------------------------------------------------------------------------


def matrix_case(point_name: str, seed: int = 2024) -> Tuple[CrashConsistencyHarness, FaultPlan]:
    """Harness + fault plan that provably reaches *point_name* after at
    least one successful local commit (so recovery has something to
    recover to)."""
    cp = point(point_name)
    n_chunks = 3
    kwargs: Dict[str, Any] = dict(n_chunks=n_chunks, seed=seed)
    faults: List[ScriptedFault]
    # per-step points fire once per checkpoint; per-chunk points fire
    # n_chunks times per checkpoint — land the crash in step >= 2
    hit = n_chunks + 1 if cp.per_chunk else 2

    if cp.layer in ("local", "chunk") and point_name not in ("local.begin",):
        if point_name in (
            "local.copy.before",
            "local.copy.after",
            "local.stage.after",
            "local.commit.after_flip",
            "chunk.stage.mid",
        ):
            # the coordinated step only copies chunks still dirty; with
            # pre-copy on they may all be clean, so use the no-pre-copy
            # baseline where every chunk is copied every checkpoint
            kwargs["precopy_mode"] = PrecopyPolicy.NONE
        faults = [ScriptedFault(point_name, hit=hit)]
    elif point_name == "local.begin":
        faults = [ScriptedFault(point_name, hit=2)]
    elif cp.layer == "store":
        kwargs["precopy_mode"] = PrecopyPolicy.NONE
        # ckpt 1's data flush covers the 2*n_chunks region creations
        # (hits 1..2n); ckpt 2's data flush re-stages n chunks, so hit
        # 2n+2 lands mid-flush with a committed checkpoint behind it
        hit = 2 * n_chunks + 2 if point_name == "store.flush.mid" else 3
        faults = [ScriptedFault(point_name, hit=hit)]
    elif cp.layer == "precopy":
        kwargs["precopy_mode"] = PrecopyPolicy.CPC
        faults = [ScriptedFault(point_name, hit=n_chunks + 1)]
    elif cp.layer == "remote":
        kwargs.update(with_remote=True, n_steps=8)
        faults = [ScriptedFault(point_name, hit=1)]
    elif cp.layer == "restart":
        if point_name == "restart.fetch_remote":
            # remote fallback needs a corrupt local chunk AND a buddy
            # copy: rot the committed version late, crash before the
            # next commit can paper over it, then crash again mid-fetch
            kwargs.update(with_remote=True, n_steps=8)
            faults = [
                ScriptedFault("local.commit.done", hit=5, kind=KIND_BITROT),
                ScriptedFault("local.begin", hit=6),
                ScriptedFault(point_name, hit=1),
            ]
        else:
            faults = [
                ScriptedFault("local.begin", hit=2),
                ScriptedFault(point_name, hit=1),
            ]
    else:  # pragma: no cover - registry and cases must stay in sync
        raise AssertionError(f"no matrix case for {point_name!r}")
    return CrashConsistencyHarness(**kwargs), FaultPlan(
        faults, name=f"matrix@{point_name}"
    )


def matrix_points() -> List[str]:
    """Canonical ordering of the full crash-point matrix.

    The migrate layer is excluded: its points fire inside cluster runs
    (live migration needs membership + a buddy directory), which this
    standalone harness cannot reach — tests/test_migration.py runs the
    cluster-level matrix for them instead.  The codec layer is likewise
    excluded: its points fire only under a non-raw payload codec —
    tests/test_codec.py runs a codec-enabled crash matrix for them."""
    return [
        cp.name
        for cp in all_points()
        if cp.layer not in (LAYER_MIGRATE, LAYER_CODEC)
    ]
