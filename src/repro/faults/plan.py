"""Fault plans: what goes wrong, where, and on which hit.

A :class:`FaultPlan` is an installable :class:`~.crashpoints.FaultInjector`
carrying a list of :class:`ScriptedFault` entries.  Two fault kinds:

* ``crash`` — raise :class:`~repro.errors.CrashInjected` at the Nth hit
  of a named crash point (power loss at exactly that persistence-
  ordering point).  Before raising, the plan invokes its ``on_crash``
  callback so a harness can freeze the simulated world (kill processes,
  drop unflushed store state) at the instant of the crash.
* ``bitrot`` — flip durable bytes of a chunk's committed NVM shadow
  (media corruption on the emulated DIMM).  Only valid at points that
  carry ``allocator`` + ``store`` context
  (:data:`~.crashpoints.BITROT_CAPABLE`); the restart path must detect
  it via checksums and fall back to the buddy or report the chunk.

Plans are either scripted (:meth:`FaultPlan.crash_at`, explicit fault
lists) or drawn from a seeded RNG stream (:meth:`FaultPlan.random`), so
a whole randomized campaign replays bit-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CrashInjected, FaultInjectionError
from ..sim.rng import RngStreams
from .crashpoints import BITROT_CAPABLE, FaultInjector, REGISTRY

__all__ = ["KIND_CRASH", "KIND_BITROT", "ScriptedFault", "FaultPlan"]

KIND_CRASH = "crash"
KIND_BITROT = "bitrot"


@dataclass
class ScriptedFault:
    """One planned fault: fire *kind* at the *hit*-th hit of *point*."""

    point: str
    hit: int = 1
    kind: str = KIND_CRASH
    #: bit-rot target chunk name (None: first committed chunk found).
    chunk: Optional[str] = None
    #: byte offset to corrupt within the committed region.
    offset: int = 0
    consumed: bool = False

    def __post_init__(self) -> None:
        if self.point not in REGISTRY:
            raise FaultInjectionError(f"unknown crash point {self.point!r}")
        if self.kind not in (KIND_CRASH, KIND_BITROT):
            raise FaultInjectionError(f"unknown fault kind {self.kind!r}")
        if self.hit < 1:
            raise FaultInjectionError(f"hit index must be >= 1, got {self.hit}")
        if self.kind == KIND_BITROT and self.point not in BITROT_CAPABLE:
            raise FaultInjectionError(
                f"bit-rot faults need allocator/store context; point "
                f"{self.point!r} is not in BITROT_CAPABLE"
            )


class FaultPlan(FaultInjector):
    """A deterministic schedule of injected faults."""

    def __init__(self, faults: Sequence[ScriptedFault] = (), name: str = "plan") -> None:
        self.name = name
        self.faults: List[ScriptedFault] = list(faults)
        #: per-point hit counters (every hit, fault or not).
        self.hits: Dict[str, int] = {}
        #: chronological (point, hit_index) log of every hit seen.
        self.fired_log: List[Tuple[str, int]] = []
        #: crash point that fired, or None if the run survived the plan.
        self.crashed_at: Optional[str] = None
        #: (chunk_name, region_id, offset) per injected bit-rot.
        self.bitrot_injected: List[Tuple[str, str, int]] = []
        #: harness callback invoked with the point name just before the
        #: CrashInjected raise (freeze-the-world hook).
        self.on_crash: Optional[Callable[[str], None]] = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def crash_at(cls, point: str, hit: int = 1) -> "FaultPlan":
        """A plan with a single crash at the Nth hit of *point*."""
        return cls([ScriptedFault(point, hit=hit)], name=f"crash@{point}#{hit}")

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        points: Optional[Sequence[str]] = None,
        max_hit: int = 6,
        allow_bitrot: bool = True,
    ) -> "FaultPlan":
        """A seeded random plan: one crash at a uniformly chosen point
        and hit index, optionally preceded by a bit-rot fault.  The
        same seed always yields the same plan."""
        rng = RngStreams(seed).stream("faults.plan")
        names = list(points) if points is not None else list(REGISTRY)
        faults: List[ScriptedFault] = []
        if allow_bitrot and rng.random() < 0.3:
            faults.append(
                ScriptedFault(
                    str(rng.choice(list(BITROT_CAPABLE))),
                    hit=int(rng.integers(1, max_hit + 1)),
                    kind=KIND_BITROT,
                    offset=int(rng.integers(0, 64)),
                )
            )
        faults.append(
            ScriptedFault(
                str(rng.choice(names)),
                hit=int(rng.integers(1, max_hit + 1)),
            )
        )
        return cls(faults, name=f"random(seed={seed})")

    # -- firing -------------------------------------------------------------

    def on_fire(self, name: str, info: Dict[str, Any]) -> None:
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        self.fired_log.append((name, count))
        for fault in self.faults:
            if fault.consumed or fault.point != name or fault.hit != count:
                continue
            fault.consumed = True
            if fault.kind == KIND_BITROT:
                self._inject_bitrot(fault, info)
            else:
                self.crashed_at = name
                if self.on_crash is not None:
                    self.on_crash(name)
                raise CrashInjected(
                    f"injected crash at {name!r} (hit {count})", point=name
                )

    # -- bit-rot ------------------------------------------------------------

    def _inject_bitrot(self, fault: ScriptedFault, info: Dict[str, Any]) -> None:
        allocator = info.get("allocator")
        store = info.get("store")
        if allocator is None or store is None:
            raise FaultInjectionError(
                f"bit-rot at {fault.point!r} needs allocator+store in fire() info"
            )
        target = None
        for chunk in allocator.persistent_chunks():
            if fault.chunk is not None and chunk.name != fault.chunk:
                continue
            if chunk.committed_version >= 0 and not chunk.phantom:
                target = chunk
                break
        if target is None:
            return  # nothing committed yet: rot has nothing to eat
        region = target.committed_region()
        offset = fault.offset % max(1, target.nbytes)
        store.corrupt(region.region_id, offset)
        self.bitrot_injected.append((target.name, region.region_id, offset))

    # -- introspection ------------------------------------------------------

    @property
    def pending(self) -> List[ScriptedFault]:
        return [f for f in self.faults if not f.consumed]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {self.name!r} faults={len(self.faults)} crashed_at={self.crashed_at!r}>"
