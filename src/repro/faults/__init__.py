"""Deterministic crash-point fault injection and crash-consistency
checking.

Layering: :mod:`~repro.faults.crashpoints` (the registry + ``fire()``
hook) depends only on :mod:`repro.errors` and is imported by the memory
substrate and the allocator — the lowest layers of the stack.  The
checker and harness sit *above* core/alloc, so they are exposed lazily
here to keep ``import repro.faults`` (what the instrumented layers pull
in transitively) cycle-free.
"""

from __future__ import annotations

from .crashpoints import (
    BITROT_CAPABLE,
    CrashPoint,
    FaultInjector,
    REGISTRY,
    active_injectors,
    all_points,
    fire,
    install,
    point,
)
from .plan import KIND_BITROT, KIND_CRASH, FaultPlan, ScriptedFault

__all__ = [
    "BITROT_CAPABLE",
    "CrashPoint",
    "FaultInjector",
    "REGISTRY",
    "active_injectors",
    "all_points",
    "fire",
    "install",
    "point",
    "KIND_BITROT",
    "KIND_CRASH",
    "FaultPlan",
    "ScriptedFault",
    # lazy (import cycles: these pull in core/alloc):
    "payload_digest",
    "Violation",
    "ConsistencyReport",
    "ConsistencyChecker",
    "OracleRecorder",
    "CrashRunResult",
    "CrashConsistencyHarness",
    "matrix_case",
    "matrix_points",
    "CONSISTENT_OUTCOMES",
    "OUTCOME_NO_CRASH",
    "OUTCOME_CONSISTENT",
    "OUTCOME_INFLIGHT",
    "OUTCOME_MIXED",
    "OUTCOME_REMOTE",
    "OUTCOME_UNRECOVERABLE",
]

_CHECKER = ("payload_digest", "Violation", "ConsistencyReport", "ConsistencyChecker")
_HARNESS = (
    "OracleRecorder",
    "CrashRunResult",
    "CrashConsistencyHarness",
    "matrix_case",
    "matrix_points",
    "CONSISTENT_OUTCOMES",
    "OUTCOME_NO_CRASH",
    "OUTCOME_CONSISTENT",
    "OUTCOME_INFLIGHT",
    "OUTCOME_MIXED",
    "OUTCOME_REMOTE",
    "OUTCOME_UNRECOVERABLE",
)


def __getattr__(name: str):
    if name in _CHECKER:
        from . import checker

        return getattr(checker, name)
    if name in _HARNESS:
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
