"""Post-crash checkpoint-consistency checking.

After any injected crash the durable store contents are all that
survives.  :class:`ConsistencyChecker` walks the per-process NVM
metadata exactly the way restart would and asserts the invariants the
two-version protocol promises:

* the chunk table parses and every record is internally sane (committed
  version index in range, checksum arity matches the version count);
* every NVM shadow region the metadata references exists with the
  recorded size (no dangling pointers into reclaimed NVM);
* every committed version's checksum matches its durable payload —
  failures are *reported* (``checksum_failures``), not violations: a
  detected-corrupt chunk is what the remote fallback exists for;
* optionally, each committed payload is byte-identical to a snapshot
  the application actually produced (the harness's oracle) — anything
  else is **torn data**, the one thing that must never happen.

A report with no violations means restart will either succeed or fail
*loudly* (checksum mismatch -> buddy fetch -> ``NoCheckpointAvailable``);
a violation means silent corruption and fails the whole matrix.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..alloc.nvmalloc import NVAllocator
from ..config import NodeConfig
from ..core.context import make_standalone_context
from ..errors import ReproError
from ..memory.persistence import PersistentStore

__all__ = ["payload_digest", "Violation", "ConsistencyReport", "ConsistencyChecker"]


def payload_digest(data: Any) -> str:
    """Stable short digest of a payload (numpy array or bytes)."""
    buf = data.tobytes() if hasattr(data, "tobytes") else bytes(data)
    return hashlib.blake2b(buf, digest_size=16).hexdigest()


@dataclass(frozen=True)
class Violation:
    """One broken invariant — silent-corruption territory."""

    invariant: str
    chunk: Optional[str]
    detail: str


@dataclass
class ConsistencyReport:
    """Outcome of one consistency walk."""

    pid: str
    violations: List[Violation] = field(default_factory=list)
    #: chunks whose committed checksum does NOT match the durable bytes
    #: (detected corruption: recoverable via the buddy, never silent).
    checksum_failures: List[str] = field(default_factory=list)
    chunks_checked: int = 0
    committed_chunks: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, chunk: Optional[str], detail: str) -> None:
        self.violations.append(Violation(invariant, chunk, detail))

    def summary(self) -> str:
        if self.ok and not self.checksum_failures:
            return (
                f"{self.pid}: consistent "
                f"({self.committed_chunks}/{self.chunks_checked} chunks committed)"
            )
        parts = [f"{self.pid}:"]
        if self.violations:
            parts.append(
                "VIOLATIONS " + "; ".join(f"{v.invariant}[{v.chunk}]: {v.detail}" for v in self.violations)
            )
        if self.checksum_failures:
            parts.append("checksum failures: " + ", ".join(self.checksum_failures))
        return " ".join(parts)


class ConsistencyChecker:
    """Walks durable per-process NVM state and checks the invariants."""

    _ALLOC_PREFIX = "alloc/proc:"
    _NVMM_PREFIX = "nvmm/proc:"
    _REMOTE_PREFIX = "remote/proc:"

    def __init__(self, store: PersistentStore, node_config: Optional[NodeConfig] = None) -> None:
        self.store = store
        self.node_config = node_config

    # ------------------------------------------------------------------
    # Local (per-process) invariants.
    # ------------------------------------------------------------------

    def check_process(
        self,
        pid: str,
        expected: Optional[Dict[str, Set[str]]] = None,
    ) -> ConsistencyReport:
        """Check one process's durable chunk state.

        *expected* maps chunk name -> set of acceptable committed
        payload digests (the oracle of every snapshot the application
        actually staged); a committed payload outside the set is a
        ``torn-data`` violation.
        """
        report = ConsistencyReport(pid=pid)
        meta = self.store.get_meta(f"{self._ALLOC_PREFIX}{pid}")
        if meta is None:
            report.add("metadata-missing", None, f"no allocator metadata for {pid!r}")
            return report
        nvmm_meta = self.store.get_meta(f"{self._NVMM_PREFIX}{pid}", {"regions": {}})
        regions = nvmm_meta.get("regions", {})
        for name, rec in sorted(meta.get("chunks", {}).items()):
            report.chunks_checked += 1
            self._check_record(report, pid, name, rec, regions)
        self._check_payloads(report, pid, expected)
        return report

    def _check_record(
        self,
        report: ConsistencyReport,
        pid: str,
        name: str,
        rec: Dict[str, Any],
        regions: Dict[str, Any],
    ) -> None:
        n_versions = int(rec.get("n_versions", 0))
        committed = int(rec.get("committed", -1))
        size = int(rec.get("size", -1))
        if size <= 0:
            report.add("size-range", name, f"recorded size {size}")
        if not (-1 <= committed < max(1, n_versions)):
            report.add(
                "committed-range", name,
                f"committed version {committed} outside [-1, {n_versions})",
            )
            return
        checksums = rec.get("checksums", [])
        if len(checksums) != max(1, n_versions):
            report.add(
                "checksum-arity", name,
                f"{len(checksums)} checksums for {n_versions} versions",
            )
        for i in range(n_versions):
            rname = f"{name}#v{i}"
            info = regions.get(rname)
            if info is None:
                report.add("region-missing", name, f"metadata references missing region {rname!r}")
                continue
            if int(info.get("size", -1)) != size:
                report.add(
                    "region-size", name,
                    f"region {rname!r} has {info.get('size')} bytes, chunk says {size}",
                )
            if not info.get("phantom") and not self.store.exists(f"{pid}/{rname}"):
                report.add("region-data-missing", name, f"store holds no data for {rname!r}")
        if committed >= 0:
            report.committed_chunks += 1

    def _check_payloads(
        self,
        report: ConsistencyReport,
        pid: str,
        expected: Optional[Dict[str, Set[str]]],
    ) -> None:
        """Rebuild the allocator the way restart does and verify each
        committed chunk's checksum + oracle membership."""
        if report.violations:
            return  # structure already broken; a rebuild would just cascade
        ctx = make_standalone_context(config=self.node_config, store=self.store, name="checker")
        try:
            alloc = NVAllocator.restart(pid, ctx.nvmm, ctx.dram, load_data=False)
        except ReproError as err:
            report.add("rebuild-failed", None, str(err))
            return
        for chunk in alloc.persistent_chunks():
            if chunk.committed_version < 0:
                continue
            if not chunk.verify_checksum():
                report.checksum_failures.append(chunk.name)
                continue
            if expected is None or chunk.phantom:
                continue
            allowed = expected.get(chunk.name)
            if allowed is None:
                continue
            d = payload_digest(chunk.committed_region().read(0, chunk.nbytes))
            if d not in allowed:
                report.add(
                    "torn-data", chunk.name,
                    f"committed payload digest {d} matches no snapshot the "
                    f"application ever staged ({len(allowed)} candidates)",
                )

    # ------------------------------------------------------------------
    # Buddy-side (remote target) invariants.
    # ------------------------------------------------------------------

    def check_remote_target(
        self,
        src_pid: str,
        expected: Optional[Dict[str, Set[str]]] = None,
    ) -> ConsistencyReport:
        """Check the buddy's durable remote copies of *src_pid* (call
        against the *buddy's* store)."""
        rpid = f"rmt:{src_pid}"
        report = ConsistencyReport(pid=rpid)
        meta = self.store.get_meta(f"{self._REMOTE_PREFIX}{src_pid}")
        if meta is None:
            report.add("metadata-missing", None, f"buddy holds no remote metadata for {src_pid!r}")
            return report
        nvmm_meta = self.store.get_meta(f"{self._NVMM_PREFIX}{rpid}", {"regions": {}})
        regions = nvmm_meta.get("regions", {})
        sizes = meta.get("sizes", {})
        for name, version in sorted(meta.get("committed", {}).items()):
            report.chunks_checked += 1
            version = int(version)
            if version < 0:
                continue
            report.committed_chunks += 1
            size = int(sizes.get(name, -1))
            if size <= 0:
                report.add("size-range", name, f"remote size record {size}")
                continue
            rname = f"{name}#v{version}"
            info = regions.get(rname)
            if info is None:
                report.add("region-missing", name, f"committed pointer references {rname!r}")
                continue
            if int(info.get("size", -1)) != size:
                report.add(
                    "region-size", name,
                    f"region {rname!r} has {info.get('size')} bytes, record says {size}",
                )
                continue
            if info.get("phantom"):
                continue
            region_id = f"{rpid}/{rname}"
            if not self.store.exists(region_id):
                report.add("region-data-missing", name, f"store holds no data for {rname!r}")
                continue
            if expected is not None:
                allowed = expected.get(name)
                if allowed is None:
                    continue
                d = payload_digest(self.store.read(region_id, 0, size))
                if d not in allowed:
                    report.add(
                        "torn-data", name,
                        f"buddy payload digest {d} matches no snapshot ever staged",
                    )
        return report
