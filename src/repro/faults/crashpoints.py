"""Named crash points and the hook-firing machinery.

The commit-critical layers (local checkpoint, pre-copy, remote helper,
restart, chunk staging, store flush) call :func:`fire` at every
persistence-ordering point, naming the point.  With no injector
installed a hook is a near-free no-op; inside a ``with install(plan):``
block every hit is routed to the installed injectors, which may count
it, record oracle state, corrupt durable bytes, or raise
:class:`~repro.errors.CrashInjected` to simulate a power loss at
exactly that point.

The registry is *central* and *closed*: every point a layer may fire is
declared here, so the crash-point matrix test can enumerate the full
set and firing an undeclared name is an error (it would silently
escape the matrix otherwise).

This module must stay dependency-free within ``repro`` (errors only):
it is imported by the memory substrate and the allocator, the lowest
layers of the stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..errors import FaultInjectionError

__all__ = [
    "CrashPoint",
    "FaultInjector",
    "register",
    "all_points",
    "point",
    "fire",
    "install",
    "active_injectors",
    "LAYER_LOCAL",
    "LAYER_PRECOPY",
    "LAYER_REMOTE",
    "LAYER_RESTART",
    "LAYER_CHUNK",
    "LAYER_STORE",
    "LAYER_MIGRATE",
    "LAYER_CODEC",
    "BITROT_CAPABLE",
]

LAYER_LOCAL = "local"
LAYER_PRECOPY = "precopy"
LAYER_REMOTE = "remote"
LAYER_RESTART = "restart"
LAYER_CHUNK = "chunk"
LAYER_STORE = "store"
LAYER_MIGRATE = "migrate"
LAYER_CODEC = "codec"


@dataclass(frozen=True)
class CrashPoint:
    """One named persistence-ordering point in the commit path."""

    name: str
    layer: str
    doc: str
    #: fires once per chunk (vs once per step/round) — the matrix test
    #: uses this to pick a hit index that lands after the first commit.
    per_chunk: bool = False


#: name -> CrashPoint; insertion order defines the canonical matrix order.
REGISTRY: Dict[str, CrashPoint] = {}


def register(name: str, layer: str, doc: str, *, per_chunk: bool = False) -> CrashPoint:
    """Declare a crash point.  Duplicate declarations are an error."""
    if name in REGISTRY:
        raise FaultInjectionError(f"crash point {name!r} already registered")
    cp = CrashPoint(name=name, layer=layer, doc=doc, per_chunk=per_chunk)
    REGISTRY[name] = cp
    return cp


def point(name: str) -> CrashPoint:
    cp = REGISTRY.get(name)
    if cp is None:
        raise FaultInjectionError(f"unknown crash point {name!r}")
    return cp


def all_points(layer: Optional[str] = None) -> List[CrashPoint]:
    """Every registered crash point, optionally filtered by layer."""
    return [cp for cp in REGISTRY.values() if layer is None or cp.layer == layer]


# ---------------------------------------------------------------------------
# The canonical crash-point set.
# ---------------------------------------------------------------------------

# -- coordinated local checkpoint (core/local.py) ---------------------------
register("local.begin", LAYER_LOCAL,
         "coordinated step entered; pre-copy paused and drained")
register("local.copy.before", LAYER_LOCAL,
         "before a chunk's DRAM->NVM bus copy", per_chunk=True)
register("local.copy.after", LAYER_LOCAL,
         "bus copy done, chunk not yet staged into the in-progress version",
         per_chunk=True)
register("local.stage.after", LAYER_LOCAL,
         "in-progress NVM version fully written, nothing committed",
         per_chunk=True)
register("local.commit.before_data_flush", LAYER_LOCAL,
         "all chunks staged; cache flush not yet issued")
register("local.commit.after_data_flush", LAYER_LOCAL,
         "staged data durable; version pointers not yet flipped")
register("local.commit.after_flip", LAYER_LOCAL,
         "a chunk's committed-version pointer flipped in memory only",
         per_chunk=True)
register("local.commit.before_meta_flush", LAYER_LOCAL,
         "chunk metadata written to the store working set, not yet durable")
register("local.commit.done", LAYER_LOCAL,
         "commit point passed: data + metadata durable")

# -- chunk staging (alloc/chunk.py) -----------------------------------------
register("chunk.stage.mid", LAYER_CHUNK,
         "half the payload written to the in-progress version (torn write)",
         per_chunk=True)

# -- persistent store (memory/persistence.py) -------------------------------
register("store.flush.mid", LAYER_STORE,
         "flush made one more region durable; others still pending",
         per_chunk=True)
register("store.flush.before_meta", LAYER_STORE,
         "all dirty regions durable; metadata snapshot still pending")

# -- background pre-copy (core/precopy.py) ----------------------------------
register("precopy.copy.before", LAYER_PRECOPY,
         "pre-copy engine about to move a dirty chunk", per_chunk=True)
register("precopy.copy.after", LAYER_PRECOPY,
         "pre-copy transfer finished; staleness not yet checked", per_chunk=True)
register("precopy.finalize.after", LAYER_PRECOPY,
         "chunk staged + marked clean for the stream, still uncommitted",
         per_chunk=True)

# -- remote (buddy) checkpointing (core/remote.py) --------------------------
register("remote.stream.before_send", LAYER_REMOTE,
         "streamed chunk about to cross the fabric", per_chunk=True)
register("remote.stream.after_stage", LAYER_REMOTE,
         "streamed chunk staged on the buddy, buddy commit pending",
         per_chunk=True)
register("remote.round.begin", LAYER_REMOTE,
         "coordinated remote round entered")
register("remote.round.before_send", LAYER_REMOTE,
         "round chunk about to cross the fabric", per_chunk=True)
register("remote.round.after_stage", LAYER_REMOTE,
         "round chunk staged on the buddy, buddy commit pending",
         per_chunk=True)
register("remote.commit.before_flip", LAYER_REMOTE,
         "buddy store flushed; buddy committed pointers not yet flipped")
register("remote.commit.before_meta", LAYER_REMOTE,
         "buddy pointers flipped in memory; buddy metadata not yet durable")
register("remote.commit.done", LAYER_REMOTE,
         "buddy commit point passed")

# -- live migration (resilience/migration.py) -------------------------------
# These fire inside cluster runs (the standalone CrashConsistencyHarness
# has no membership layer), so faults/harness.py excludes the migrate
# layer from matrix_points(); tests/test_migration.py covers them with a
# cluster-level matrix instead.
register("migrate.batch.before_send", LAYER_MIGRATE,
         "migration chunk about to cross the fabric to the new buddy",
         per_chunk=True)
register("migrate.batch.after_stage", LAYER_MIGRATE,
         "migration chunk staged on the new buddy, batch commit pending",
         per_chunk=True)
register("migrate.batch.commit", LAYER_MIGRATE,
         "one bounded batch committed on the new buddy (old pairing still owns)")
register("migrate.cutover.before", LAYER_MIGRATE,
         "all batches committed; buddy ownership not yet switched")
register("migrate.cutover.done", LAYER_MIGRATE,
         "ownership switched atomically to the new buddy")

# -- payload codec block store (core/codec.py) ------------------------------
# These fire only when a non-raw codec is configured (the standalone
# CrashConsistencyHarness runs the raw golden pipeline), so
# faults/harness.py excludes the codec layer from matrix_points();
# tests/test_codec.py covers them with a codec-enabled crash matrix.
register("codec.store.commit.before", LAYER_CODEC,
         "block-store commit entered; no digest map or refcount touched")
register("codec.store.commit.mid", LAYER_CODEC,
         "slot digest maps updated; refcount index not yet swapped (torn)")
register("codec.store.commit.done", LAYER_CODEC,
         "block-store commit point passed: maps + refcount index consistent")

# -- restart/recovery (core/restart.py) -------------------------------------
register("restart.begin", LAYER_RESTART,
         "recovery started: metadata loaded, nothing restored yet")
register("restart.chunk.verified", LAYER_RESTART,
         "a chunk's committed version verified and restored", per_chunk=True)
register("restart.fetch_remote", LAYER_RESTART,
         "local version unusable; buddy fetch about to start", per_chunk=True)
register("restart.done", LAYER_RESTART,
         "recovery finished; process state rebuilt")

#: points whose fire() info carries ``allocator`` + ``store``, i.e. where a
#: bit-rot fault can locate a committed region to corrupt.
BITROT_CAPABLE = ("local.begin", "local.commit.done", "restart.begin")


# ---------------------------------------------------------------------------
# Injector installation and firing.
# ---------------------------------------------------------------------------


class FaultInjector:
    """Base class for anything that observes crash-point hits.

    Subclasses override :meth:`on_fire`; raising from it unwinds the
    firing layer exactly like a crash at that point.  Passive observers
    (oracle recorders, coverage counters) simply record and return.
    """

    def on_fire(self, name: str, info: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError


_ACTIVE: List[FaultInjector] = []


def active_injectors() -> List[FaultInjector]:
    return list(_ACTIVE)


@contextmanager
def install(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Route crash-point hits to *injector* for the dynamic extent of
    the block.  Injectors stack: all installed injectors see every hit,
    outermost first."""
    _ACTIVE.append(injector)
    try:
        yield injector
    finally:
        _ACTIVE.remove(injector)


def fire(name: str, **info: Any) -> None:
    """Fire the crash point *name* with contextual *info*.

    No-op unless an injector is installed.  Firing an unregistered name
    is an error even with no injector present would be ideal, but the
    registry lookup is deferred to the installed path so the hot paths
    pay a single truthiness check when fault injection is off.
    """
    if not _ACTIVE:
        return
    if name not in REGISTRY:
        raise FaultInjectionError(f"fired unregistered crash point {name!r}")
    for injector in list(_ACTIVE):
        injector.on_fire(name, info)
