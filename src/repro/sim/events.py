"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronization object.  Processes wait
on events by ``yield``-ing them; the engine resumes the process when the
event fires.  Events may *succeed* (carrying a value) or *fail*
(carrying an exception that is re-raised inside the waiting process).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

_PENDING = object()


class Event:
    """A one-shot event.

    States: *pending* -> (*succeeded* | *failed*).  Once triggered the
    value/exception is frozen; triggering twice is an error (it would
    hide scheduling bugs).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "_triggered", "_scheduled", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._scheduled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` was called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks *now*."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters will re-raise *exc*."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._trigger(_PENDING, exc)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        self.engine._queue_event(self)
        self._scheduled = True

    # -- callbacks ---------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event fires.  If the event has
        already been dispatched, run at the next engine step."""
        if self._triggered and self._scheduled is False:
            # already fully dispatched: queue a fresh delivery
            self.engine._queue_callback(lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._exc is None else f"failed({self._exc!r})"
        label = self.name or self.__class__.__name__
        return f"<{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(engine, name=f"timeout({delay:g})")
        self.delay = delay
        # A timeout is born triggered; it is delivered after `delay`.
        self._triggered = True
        self._value = value
        engine._queue_event(self, delay=delay)
        self._scheduled = True


class AllOf(Event):
    """Fires when every child event has fired; value is the list of
    child values (in construction order).  Fails fast on first failure."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.exception)  # type: ignore[arg-type]
            return
        self.succeed((index, ev._value))
