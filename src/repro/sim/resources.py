"""Shared resources: FIFO resources, CPU cores, and processor-sharing
bandwidth.

The **processor-sharing bandwidth resource** is the heart of the
reproduction: both the NVM memory bus and the InfiniBand fabric are
modeled as capacity ``C`` shared equally among active flows (optionally
with a per-flow cap, e.g. a single core cannot exceed its DDR channel
rate).  When flows join or leave, every active flow's remaining bytes
are advanced and the next completion is rescheduled.  This yields the
contention behaviours the paper studies: checkpoint bursts slowing each
other down, pre-copy spreading load over time, and peak-usage reduction.
"""

from __future__ import annotations

from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple
from collections import deque

import numpy as np

from ..errors import SimulationError, TransferCancelled
from .engine import Engine
from .events import Event

__all__ = [
    "Resource",
    "CpuCores",
    "BandwidthResource",
    "FlowHandle",
    "UtilizationTracker",
]

#: flows with fewer remaining bytes than this are considered complete —
#: but only when the residue also amounts to less than a nanosecond at
#: the current rate, so a slow tiny flow is never finished measurably
#: early (its completion wakeup is exact).
_EPSILON_BYTES = 1e-6
_EPSILON_SECONDS = 1e-9


class UtilizationTracker:
    """Records a piecewise-constant time series of a resource's load.

    Samples are ``(time, value)`` pairs recorded at each change; the
    value holds from that time until the next sample.  Used to plot the
    interconnect-usage timeline of Figure 10 and to compute busy-time
    integrals (CPU utilization, Table V).
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.samples and abs(self.samples[-1][1] - value) < 1e-12:
            return
        if self.samples and self.samples[-1][0] == time:
            self.samples[-1] = (time, value)
            return
        self.samples.append((time, value))

    def value_at(self, time: float) -> float:
        """The recorded value in effect at *time* (0 before first sample)."""
        lo, hi = 0, len(self.samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid][0] <= time:
                lo = mid + 1
            else:
                hi = mid
        return self.samples[lo - 1][1] if lo else 0.0

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the series over ``[t0, t1]`` (e.g. bytes moved if
        the series is a rate in bytes/s)."""
        if t1 <= t0 or not self.samples:
            return 0.0
        total = 0.0
        prev_t, prev_v = t0, self.value_at(t0)
        for t, v in self.samples:
            if t <= t0:
                continue
            if t >= t1:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (t1 - prev_t)
        return total

    def peak(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Maximum value over ``[t0, t1]``."""
        best = self.value_at(t0)
        for t, v in self.samples:
            if t0 <= t < t1:
                best = max(best, v)
        return best

    def windowed_series(
        self, window: float, t_end: float, t_start: float = 0.0
    ) -> List[Tuple[float, float]]:
        """Average value per fixed window — e.g. 'bytes transferred per
        second of application timeline' for Figure 10."""
        if window <= 0:
            raise ValueError("window must be positive")
        out: List[Tuple[float, float]] = []
        t = t_start
        while t < t_end:
            hi = min(t + window, t_end)
            out.append((t, self.integral(t, hi) / window))
            t += window
        return out


class Resource:
    """A FIFO resource with integer capacity (mutexes, core slots)."""

    def __init__(self, engine: Engine, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self) -> Event:
        """An event firing when a slot is granted.  The caller must
        eventually :meth:`release`."""
        ev = self.engine.event(name=f"{self.name}.request")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)  # slot transfers directly; _in_use unchanged
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Process helper: hold one slot for *duration* seconds."""
        yield self.request()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


class CpuCores(Resource):
    """Node CPU cores with per-owner busy-time accounting.

    ``busy(owner, duration)`` occupies one core for *duration* and
    charges the time to *owner*; Table V's helper-core utilization is
    ``busy_time('helper') / elapsed``.
    """

    def __init__(self, engine: Engine, cores: int, name: str = "cpu") -> None:
        super().__init__(engine, cores, name=name)
        self._busy_time: Dict[str, float] = {}
        self.utilization = UtilizationTracker()

    def charge(self, owner: str, duration: float) -> None:
        """Account *duration* of CPU time to *owner* without modelling
        queueing (used for small, bounded costs like fault handling)."""
        self._busy_time[owner] = self._busy_time.get(owner, 0.0) + duration

    def busy(self, owner: str, duration: float):
        """Process: occupy one core for *duration*, charged to *owner*."""
        yield self.request()
        self.utilization.record(self.engine.now, float(self._in_use))
        try:
            yield self.engine.timeout(duration)
            self._busy_time[owner] = self._busy_time.get(owner, 0.0) + duration
        finally:
            self.release()
            self.utilization.record(self.engine.now, float(self._in_use))

    def busy_time(self, owner: str) -> float:
        return self._busy_time.get(owner, 0.0)

    def total_busy_time(self) -> float:
        return sum(self._busy_time.values())


class FlowHandle:
    """One active transfer inside a :class:`BandwidthResource`."""

    __slots__ = ("flow_id", "nbytes", "remaining", "event", "tag", "kind", "started_at")

    def __init__(self, flow_id: int, nbytes: float, event: Event, tag: str, now: float) -> None:
        self.flow_id = flow_id
        self.nbytes = nbytes
        self.remaining = nbytes
        self.event = event
        self.tag = tag
        # traffic kind: the part after ':' in "<rank>:<kind>" tags
        # (app / lckpt / precopy / rckpt / rprecopy / restart / ...)
        self.kind = tag.rsplit(":", 1)[-1] if tag else ""
        self.started_at = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flow {self.flow_id} tag={self.tag} {self.remaining:.0f}/{self.nbytes:.0f}B>"


class BandwidthResource:
    """Capacity shared equally among active flows (processor sharing).

    Each flow additionally obeys ``per_flow_cap`` (bytes/s) — e.g. a
    single core's memcpy cannot exceed its channel rate even when the
    bus is otherwise idle.  The per-flow rate is therefore
    ``min(per_flow_cap, capacity / n_flows)``.

    The tracker records the *aggregate* rate over time, so peak usage
    and per-window transfer volumes (Fig. 10) fall out directly.
    Per-tag byte counters let callers split application vs. checkpoint
    traffic.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        per_flow_cap: Optional[float] = None,
        name: str = "bw",
        capacity_fn: Optional[Callable[[int], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("bandwidth capacity must be positive")
        self.engine = engine
        self.capacity = float(capacity)
        self.per_flow_cap = float(per_flow_cap) if per_flow_cap else None
        #: optional effective capacity as a function of the number of
        #: concurrent flows (models interference; see
        #: :class:`repro.config.BandwidthModelConfig`).
        self.capacity_fn = capacity_fn
        self.name = name
        self._flows: Dict[int, FlowHandle] = {}
        self._next_id = 0
        self._last_update = engine.now
        self._completion_token = 0
        self.utilization = UtilizationTracker()
        #: per traffic kind (tag suffix) rate series, for filtered
        #: usage timelines like Fig. 10's checkpoint-only traffic
        self.utilization_by_kind: Dict[str, UtilizationTracker] = {}
        self.bytes_by_tag: Dict[str, float] = {}
        self.total_bytes = 0.0

    # -- public API -----------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Current aggregate throughput in bytes/s."""
        n = len(self._flows)
        if n == 0:
            return 0.0
        return self._flow_rate(n) * n

    def transfer(self, nbytes: float, tag: str = "") -> Event:
        """Start moving *nbytes* through this resource; the returned
        event fires when the transfer completes.  Zero-byte transfers
        complete immediately."""
        if nbytes < 0:
            raise SimulationError("cannot transfer a negative byte count")
        ev = self.engine.event(name=f"{self.name}.transfer({nbytes:.0f})")
        if nbytes < _EPSILON_BYTES:
            ev.succeed(0.0)
            return ev
        self._advance()
        fid = self._next_id
        self._next_id += 1
        self._flows[fid] = FlowHandle(fid, float(nbytes), ev, tag, self.engine.now)
        self._note_rate()
        self._reschedule()
        return ev

    def transfer_many(
        self, requests: Sequence[Tuple[float, str]]
    ) -> List[Event]:
        """Start a batch of ``(nbytes, tag)`` transfers at once.

        Semantically one :meth:`transfer` per request at the same
        instant, but the existing flows advance once and the completion
        wakeup is rescheduled once — starting N flows costs O(flows)
        instead of O(N * flows).  The classic use is a restart barrier:
        every rank of a node re-fetching its checkpoint through the
        same NVM bus.
        """
        events: List[Event] = []
        fresh = False
        for nbytes, tag in requests:
            if nbytes < 0:
                raise SimulationError("cannot transfer a negative byte count")
            ev = self.engine.event(name=f"{self.name}.transfer({nbytes:.0f})")
            events.append(ev)
            if nbytes < _EPSILON_BYTES:
                ev.succeed(0.0)
                continue
            if not fresh:
                self._advance()
                fresh = True
            fid = self._next_id
            self._next_id += 1
            self._flows[fid] = FlowHandle(fid, float(nbytes), ev, tag, self.engine.now)
        if fresh:
            self._note_rate()
            self._reschedule()
        return events

    def cancel_tag(self, tag: str) -> int:
        """Abort all in-flight flows with *tag* (e.g. node failure);
        their events fail.  Returns the number of flows cancelled."""
        return self.cancel_matching(lambda t: t == tag)

    def cancel_matching(self, predicate: Optional[Callable[[str], bool]] = None) -> int:
        """Abort in-flight flows whose tag satisfies *predicate*
        (all flows if None).  Used by failure injection to tear down a
        crashed node's traffic.  Returns the number cancelled."""
        self._advance()
        doomed = [f for f in self._flows.values() if predicate is None or predicate(f.tag)]
        for f in doomed:
            del self._flows[f.flow_id]
            f.event.fail(TransferCancelled(f"transfer {f.flow_id} ({f.tag!r}) cancelled"))
        if doomed:
            self._note_rate()
            self._reschedule()
        return len(doomed)

    def estimate_duration(self, nbytes: float) -> float:
        """Duration if this transfer ran alone right now (lower bound)."""
        rate = min(self.per_flow_cap or self.capacity, self.capacity)
        return nbytes / rate

    # -- internals --------------------------------------------------------------

    def _flow_rate(self, n_flows: int) -> float:
        cap = self.capacity_fn(n_flows) if self.capacity_fn else self.capacity
        share = cap / n_flows
        if self.per_flow_cap is not None:
            return min(self.per_flow_cap, share)
        return share

    #: flow count at which _advance switches to the numpy path (below
    #: this the array round-trip costs more than the scalar loop)
    _VECTOR_MIN_FLOWS = 8

    def _advance(self) -> None:
        """Progress all flows from the last update time to now and
        complete any that finished."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        n = len(self._flows)
        rate = self._flow_rate(n)
        moved = rate * dt
        finished: List[FlowHandle] = []
        if n >= self._VECTOR_MIN_FLOWS:
            # vectorized decrement mirroring the scalar path operation
            # for operation (including the remaining+moved round-trip),
            # so the floats are bit-identical to the loop below; only
            # the per-flow byte *accounting* stays sequential — summing
            # with numpy would change accumulation order and drift the
            # reported totals
            flows = list(self._flows.values())
            rem = np.fromiter((f.remaining for f in flows), dtype=np.float64, count=n)
            rem -= moved
            progressed = np.minimum(moved, rem + moved)
            done = (rem <= _EPSILON_BYTES) & (rem <= rate * _EPSILON_SECONDS)
            for f, r, p, d in zip(
                flows, rem.tolist(), progressed.tolist(), done.tolist()
            ):
                f.remaining = r
                self.total_bytes += p
                if f.tag:
                    self.bytes_by_tag[f.tag] = self.bytes_by_tag.get(f.tag, 0.0) + p
                if d:
                    finished.append(f)
        else:
            for f in self._flows.values():
                f.remaining -= moved
                progressed = min(moved, f.remaining + moved)
                self.total_bytes += progressed
                if f.tag:
                    self.bytes_by_tag[f.tag] = self.bytes_by_tag.get(f.tag, 0.0) + progressed
                if f.remaining <= _EPSILON_BYTES and f.remaining <= rate * _EPSILON_SECONDS:
                    finished.append(f)
        for f in finished:
            del self._flows[f.flow_id]
            f.event.succeed(now - f.started_at)

    def _note_rate(self) -> None:
        now = self.engine.now
        self.utilization.record(now, self.current_rate())
        n = len(self._flows)
        per_flow = self._flow_rate(n) if n else 0.0
        counts: Dict[str, int] = {}
        for f in self._flows.values():
            counts[f.kind] = counts.get(f.kind, 0) + 1
        for kind, tracker in self.utilization_by_kind.items():
            tracker.record(now, counts.pop(kind, 0) * per_flow)
        for kind, count in counts.items():
            tracker = UtilizationTracker()
            tracker.record(now, count * per_flow)
            self.utilization_by_kind[kind] = tracker

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest flow completion.

        Flows within float dust of completion (sub-nanosecond at the
        current rate) are finished inline: scheduling a wakeup that
        rounds to the current timestamp would spin forever.
        """
        self._completion_token += 1
        token = self._completion_token
        while self._flows:
            rate = self._flow_rate(len(self._flows))
            dust = [f for f in self._flows.values() if f.remaining / rate < _EPSILON_SECONDS]
            if not dust:
                break
            now = self.engine.now
            for f in dust:
                self.total_bytes += f.remaining
                if f.tag:
                    self.bytes_by_tag[f.tag] = self.bytes_by_tag.get(f.tag, 0.0) + f.remaining
                del self._flows[f.flow_id]
                f.event.succeed(now - f.started_at)
            self._note_rate()
        if not self._flows:
            return
        rate = self._flow_rate(len(self._flows))
        min_remaining = min(f.remaining for f in self._flows.values())
        eta = self.engine.now + min_remaining / rate
        self.engine.call_at(eta, lambda: self._on_wakeup(token))

    def _on_wakeup(self, token: int) -> None:
        if token != self._completion_token:
            return  # state changed since this wakeup was scheduled
        self._advance()
        self._note_rate()
        self._reschedule()
