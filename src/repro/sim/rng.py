"""Named, seeded random streams.

Every stochastic component (failure injection, workload jitter, chunk
layout) draws from its own named stream derived from one root seed, so
adding randomness to one component never perturbs another and whole
experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; the per-stream seed is a stable hash of
    ``(root_seed, name)`` so the mapping is independent of creation
    order.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.blake2b(
            f"{self.root_seed}:{name}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    def stream(self, name: str) -> np.random.Generator:
        """The generator for *name*, created on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's
        (used to give each node its own family of streams)."""
        return RngStreams(self._derive_seed(f"spawn:{name}"))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream *name*."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return float(self.stream(name).exponential(mean))
