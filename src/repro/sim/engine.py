"""The discrete-event engine: virtual clock, event queue, processes.

Processes are plain generators that ``yield`` :class:`Event` objects::

    def worker(engine):
        yield engine.timeout(1.0)          # sleep 1 virtual second
        done = engine.event()
        ...                                 # hand `done` to someone
        value = yield done                  # wait for it

    engine = Engine()
    engine.process(worker(engine))
    engine.run()

The engine is strictly deterministic: ties in time are broken by a
monotone sequence number, and no wall-clock or OS entropy is consulted.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import ProcessKilled, SimulationError
from .events import AllOf, AnyOf, Event, Timeout

__all__ = ["Engine", "Process"]

ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A running simulated process.

    A ``Process`` *is* an event: it fires (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other by yielding a ``Process``.
    """

    __slots__ = ("_gen", "_waiting_on", "_alive")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        super().__init__(engine, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # bootstrap: resume on the next engine step
        engine._queue_callback(lambda: self._resume(None, None))

    # -- lifecycle ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Forcibly terminate the process by throwing *exc* (default
        :class:`ProcessKilled`) into its generator at the next step.

        Used by failure injection: a node crash kills every process on
        the node regardless of what event it was waiting for.
        """
        if not self._alive:
            return
        if exc is None:
            exc = ProcessKilled(f"process {self.name} killed")
        self.engine._queue_callback(lambda: self._resume(None, exc, forced=True))

    def abort(self) -> None:
        """Instantly mark the process dead, *synchronously*.

        Unlike :meth:`kill` (which schedules an exception delivery and
        lets already-queued same-tick events resume the generator one
        more time), ``abort`` guarantees the generator never runs
        another instruction — power-loss semantics for crash-point
        fault injection.  The Process event never triggers.
        """
        if not self._alive:
            return
        self._alive = False
        self._waiting_on = None
        try:
            self._gen.close()
        except Exception:
            # the generator is mid-frame (the crash originated inside
            # it); the propagating exception is its teardown
            pass

    # -- internals ------------------------------------------------------------

    def _on_event(self, ev: Event) -> None:
        if not self._alive:
            return
        if self._waiting_on is not ev:
            # stale wakeup (e.g. the process was killed and moved on)
            return
        self._waiting_on = None
        if ev.ok:
            self._resume(ev._value, None)
        else:
            self._resume(None, ev.exception)

    def _resume(self, value: Any, exc: Optional[BaseException], forced: bool = False) -> None:
        if not self._alive:
            return
        if forced:
            self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self._alive = False
            self.fail(killed)
            return
        except BaseException as err:
            self._alive = False
            self.fail(err)
            return
        if not isinstance(target, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
            self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class Engine:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = count()
        # heap entries: (time, seq, kind, payload); kind 0 = event
        # dispatch, kind 1 = bare callback.
        self._heap: list[tuple[float, int, int, Any]] = []
        # zero-delay fast lane: items scheduled *at* the current time.
        # Virtual time never decreases and seq is monotone, so FIFO
        # appends keep this deque sorted by (time, seq) — the run loop
        # merges it with the heap on exactly that key, preserving the
        # single-heap total order while the (dominant) zero-delay
        # traffic skips the O(log n) sift entirely.
        self._ready: deque[tuple[float, int, int, Any]] = deque()
        self._running = False
        #: total items dispatched by run() over the engine's lifetime
        #: (events + callbacks) — the denominator of events/sec
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- event construction ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name=name)

    # -- scheduling (engine-internal API used by events/resources) -------------

    def _queue_event(self, ev: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            self._ready.append((self._now, next(self._seq), 0, ev))
        else:
            heapq.heappush(self._heap, (self._now + delay, next(self._seq), 0, ev))

    def _queue_callback(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        if delay == 0.0:
            self._ready.append((self._now, next(self._seq), 1, fn))
        else:
            heapq.heappush(self._heap, (self._now + delay, next(self._seq), 1, fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute virtual time *when* (>= now)."""
        if when < self._now - 1e-12:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        if when <= self._now:
            self._ready.append((self._now, next(self._seq), 1, fn))
        else:
            heapq.heappush(self._heap, (when, next(self._seq), 1, fn))

    # -- main loop ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time reaches *until*.

        Returns the final virtual time.  Re-entrancy is an error.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        ready, heap = self._ready, self._heap
        dispatched = 0
        try:
            while ready or heap:
                # merge the two lanes on (time, seq) — identical total
                # order to the historical single heap
                from_ready = bool(ready) and (
                    not heap or ready[0][:2] <= heap[0][:2]
                )
                when, _, kind, payload = ready[0] if from_ready else heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                if from_ready:
                    ready.popleft()
                else:
                    heapq.heappop(heap)
                self._now = when
                dispatched += 1
                if kind == 0:
                    ev: Event = payload
                    ev._scheduled = False
                    callbacks, ev.callbacks = ev.callbacks, []
                    for cb in callbacks:
                        cb(ev)
                else:
                    payload()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self.events_processed += dispatched
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled item, or ``inf`` if none."""
        times = []
        if self._ready:
            times.append(self._ready[0][0])
        if self._heap:
            times.append(self._heap[0][0])
        return min(times) if times else float("inf")
