"""Deterministic discrete-event simulation engine.

A compact, SimPy-like kernel purpose-built for this reproduction:

* :class:`~repro.sim.engine.Engine` — event loop with a virtual clock;
* generator-based *processes* (:class:`~repro.sim.engine.Process`) that
  ``yield`` events to wait;
* :mod:`~repro.sim.resources` — FIFO resources (CPU cores) and a
  **processor-sharing bandwidth** resource used to model the NVM memory
  bus and the interconnect, which is where all the contention phenomena
  in the paper come from;
* :mod:`~repro.sim.rng` — named, seeded random streams so every
  experiment is reproducible.
"""

from .engine import Engine, Process
from .events import AllOf, AnyOf, Event, Timeout
from .resources import (
    BandwidthResource,
    CpuCores,
    FlowHandle,
    Resource,
    UtilizationTracker,
)
from .rng import RngStreams

__all__ = [
    "Engine",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "CpuCores",
    "BandwidthResource",
    "FlowHandle",
    "UtilizationTracker",
    "RngStreams",
]
