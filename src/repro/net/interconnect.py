"""The interconnect fabric: per-node full-duplex links around a
non-blocking core (the usual fat-tree abstraction for a small IB
cluster).

A transfer from node A to node B holds a flow on A's *egress* link and
B's *ingress* link simultaneously; each link is a processor-sharing
:class:`~repro.sim.resources.BandwidthResource`, so checkpoint streams
and application communication genuinely contend — the communication
noise of §IV arises here, and the Fig.-10 peak-usage series is read
off the link trackers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import InterconnectConfig
from ..errors import ClusterError, TransferCancelled
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.resources import BandwidthResource

__all__ = ["Fabric", "LinkPair", "CHECKPOINT_KINDS"]

#: traffic kinds (tag suffixes after the last ':') that ride the
#: checkpoint path's RDMA queue pairs.  A link outage tears these down
#: and fails new ones fast; application traffic (MPI on its reliable
#: transport) is modelled as unaffected by checkpoint-QP flaps.
CHECKPOINT_KINDS = frozenset(
    {"rckpt", "rprecopy", "rfetch", "resync", "scrub-repair", "hb"}
)


@dataclass
class LinkPair:
    """One node's full-duplex NIC: independent egress/ingress lanes."""

    egress: BandwidthResource
    ingress: BandwidthResource


class Fabric:
    """Per-node links + non-blocking core."""

    def __init__(self, engine: Engine, n_nodes: int, config: Optional[InterconnectConfig] = None) -> None:
        if n_nodes < 1:
            raise ClusterError("fabric needs at least one node")
        self.engine = engine
        self.config = config or InterconnectConfig()
        bw = self.config.effective_bandwidth
        self.links: List[LinkPair] = [
            LinkPair(
                egress=BandwidthResource(engine, bw, name=f"n{i}.egress"),
                ingress=BandwidthResource(engine, bw, name=f"n{i}.ingress"),
            )
            for i in range(n_nodes)
        ]
        #: nodes whose checkpoint-path connectivity is currently down
        #: (transient link flap or a node being replaced)
        self._outage: set = set()

    @property
    def n_nodes(self) -> int:
        return len(self.links)

    # ------------------------------------------------------------------
    # Outages (transient link flaps / dead nodes).
    # ------------------------------------------------------------------

    def outage_active(self, node: int) -> bool:
        return node in self._outage

    def begin_outage(self, node: int) -> int:
        """Drop *node*'s checkpoint-path connectivity: in-flight
        checkpoint-kind flows on its links are torn down and new ones
        fail fast until :meth:`end_outage`.  Returns the number of
        flows cancelled."""
        self._check(node)
        self._outage.add(node)
        is_ckpt = lambda tag: tag.rsplit(":", 1)[-1] in CHECKPOINT_KINDS  # noqa: E731
        lp = self.links[node]
        return lp.egress.cancel_matching(is_ckpt) + lp.ingress.cancel_matching(is_ckpt)

    def end_outage(self, node: int) -> None:
        self._check(node)
        self._outage.discard(node)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ClusterError(f"node {node} outside [0, {self.n_nodes})")

    # ------------------------------------------------------------------
    # Transfers.
    # ------------------------------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: float, tag: str = "") -> Event:
        """Move *nbytes* from *src* to *dst*; the returned event fires
        when both the egress and ingress flows complete (plus the base
        RDMA latency)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise ClusterError("loopback transfers do not touch the fabric")
        if self._outage and tag.rsplit(":", 1)[-1] in CHECKPOINT_KINDS:
            down = self._outage.intersection((src, dst))
            if down:
                failed = self.engine.event(name=f"xfer {src}->{dst} (outage)")
                failed.fail(
                    TransferCancelled(
                        f"checkpoint path down on node(s) {sorted(down)} "
                        f"(tag {tag!r})"
                    )
                )
                return failed
        eg = self.links[src].egress.transfer(nbytes, tag=tag)
        ing = self.links[dst].ingress.transfer(nbytes, tag=tag)
        both = self.engine.all_of([eg, ing])
        done = self.engine.event(name=f"xfer {src}->{dst} {nbytes:.0f}B")
        latency = self.config.rdma_latency

        def _finish(ev: Event) -> None:
            if not ev.ok:
                done.fail(ev.exception)  # type: ignore[arg-type]
                return
            self.engine.call_at(self.engine.now + latency, lambda: done.succeed(None))

        both.add_callback(_finish)
        return done

    # ------------------------------------------------------------------
    # Measurement (Figure 10).
    # ------------------------------------------------------------------

    def egress_of(self, node: int) -> BandwidthResource:
        self._check(node)
        return self.links[node].egress

    def total_bytes(self, tag_suffix: str = "") -> float:
        """Bytes through all egress links (optionally only tags ending
        with *tag_suffix*)."""
        total = 0.0
        for lp in self.links:
            if tag_suffix:
                total += sum(
                    v for k, v in lp.egress.bytes_by_tag.items() if k.endswith(tag_suffix)
                )
            else:
                total += lp.egress.total_bytes
        return total

    def windowed_usage(
        self,
        window: float,
        t_end: float,
        t_start: float = 0.0,
        kinds: Optional[List[str]] = None,
    ) -> List[Tuple[float, float]]:
        """Aggregate fabric usage per window across all egress links:
        ``(window_start, bytes_in_window)`` — the Fig. 10 timeline.

        ``kinds`` restricts to traffic kinds (tag suffixes), e.g.
        ``["rckpt", "rprecopy"]`` for checkpoint-only traffic."""
        out: Dict[float, float] = {}
        for lp in self.links:
            trackers = (
                [lp.egress.utilization]
                if kinds is None
                else [
                    lp.egress.utilization_by_kind[k]
                    for k in kinds
                    if k in lp.egress.utilization_by_kind
                ]
            )
            for tracker in trackers:
                for t, rate in tracker.windowed_series(window, t_end, t_start):
                    out[t] = out.get(t, 0.0) + rate * window
        return sorted(out.items())

    def peak_window_usage(
        self,
        window: float,
        t_end: float,
        t_start: float = 0.0,
        kinds: Optional[List[str]] = None,
    ) -> float:
        """The paper's 'peak interconnect usage': the largest
        per-window aggregate byte volume (optionally per traffic kind)."""
        series = self.windowed_usage(window, t_end, t_start, kinds=kinds)
        return max((v for _, v in series), default=0.0)

    def peak_rate(self) -> float:
        """Peak instantaneous aggregate egress rate (bytes/s)."""
        # sum of per-link peaks is an upper bound; compute the true
        # aggregate by merging the piecewise-constant series
        events: List[Tuple[float, float]] = []
        for lp in self.links:
            samples = lp.egress.utilization.samples
            for i, (t, v) in enumerate(samples):
                prev = samples[i - 1][1] if i else 0.0
                events.append((t, v - prev))
        events.sort(key=lambda e: e[0])
        level = 0.0
        peak = 0.0
        i = 0
        while i < len(events):
            t = events[i][0]
            while i < len(events) and events[i][0] == t:
                level += events[i][1]
                i += 1
            peak = max(peak, level)
        return peak
