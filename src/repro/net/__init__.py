"""Interconnect substrate: topology with cross-rack buddy placement,
the processor-sharing fabric (per-node full-duplex links), and RDMA
put/get primitives that also charge the destination NVM bus.
"""

from .topology import Topology
from .interconnect import Fabric, LinkPair
from .rdma import rdma_put, rdma_get

__all__ = ["Topology", "Fabric", "LinkPair", "rdma_put", "rdma_get"]
