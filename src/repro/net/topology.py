"""Cluster topology: node/rack layout and buddy assignment.

Remote checkpoints go to a *buddy* node in a different rack (§IV,
following Zheng et al.: one extra checkpoint level on a cross-rack
buddy drives unrecoverable-failure probability to ~1e-5 %).  The
topology provides a deterministic cross-rack pairing and neighbor
lists for application communication patterns.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ClusterError

__all__ = ["Topology"]


class Topology:
    """Nodes striped across racks, with cross-rack buddy pairing."""

    def __init__(self, n_nodes: int, n_racks: int = 2) -> None:
        if n_nodes < 1:
            raise ClusterError("need at least one node")
        if n_racks < 1:
            raise ClusterError("need at least one rack")
        if n_racks > n_nodes:
            n_racks = n_nodes
        self.n_nodes = n_nodes
        self.n_racks = n_racks
        #: striped placement: node i sits in rack i % n_racks
        self._rack_of: List[int] = [i % n_racks for i in range(n_nodes)]

    def rack_of(self, node: int) -> int:
        self._check(node)
        return self._rack_of[node]

    def nodes_in_rack(self, rack: int) -> List[int]:
        return [i for i in range(self.n_nodes) if self._rack_of[i] == rack]

    def buddy_of(self, node: int) -> int:
        """The remote-checkpoint destination for *node*: the next node
        (cyclically) in a *different* rack, or simply the next node if
        only one rack exists.  Deterministic and total: every node has
        a buddy != itself for n_nodes >= 2."""
        self._check(node)
        if self.n_nodes == 1:
            raise ClusterError("a single-node cluster has no buddy to checkpoint to")
        for step in range(1, self.n_nodes):
            cand = (node + step) % self.n_nodes
            if self.n_racks == 1 or self._rack_of[cand] != self._rack_of[node]:
                return cand
        return (node + 1) % self.n_nodes  # pragma: no cover - unreachable

    def buddies(self) -> Dict[int, int]:
        return {i: self.buddy_of(i) for i in range(self.n_nodes)}

    def neighbors(self, node: int, degree: int = 2) -> List[int]:
        """Ring neighbors for halo-exchange style communication."""
        self._check(node)
        if self.n_nodes == 1:
            return []
        out = []
        for d in range(1, degree // 2 + 1):
            out.append((node - d) % self.n_nodes)
            out.append((node + d) % self.n_nodes)
        return sorted(set(out) - {node})

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ClusterError(f"node {node} outside [0, {self.n_nodes})")
