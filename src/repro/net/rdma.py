"""RDMA put/get over the fabric, with destination-NVM coupling.

The paper assumes future DMA between the NIC and NVM: a remote
checkpoint write lands directly in the buddy node's NVM, consuming
both fabric bandwidth and destination NVM-bus bandwidth.  We model the
pipeline by running both flows concurrently and completing when the
slower finishes — each resource sees the full load, and the transfer
rate is bounded by the bottleneck, which is how a pipelined RDMA-to-NVM
path behaves in steady state.
"""

from __future__ import annotations

from typing import Optional

from ..sim.events import Event
from ..sim.resources import BandwidthResource
from .interconnect import Fabric

__all__ = ["rdma_put", "rdma_get", "cancel_rdma"]


def rdma_put(
    fabric: Fabric,
    src: int,
    dst: int,
    nbytes: float,
    tag: str = "",
    dst_nvm_bus: Optional[BandwidthResource] = None,
    dst_nvm_bytes: Optional[float] = None,
) -> Event:
    """One-sided write of *nbytes* from *src* node into *dst* node's
    NVM.  Returns an event firing when fabric **and** destination NVM
    flows both complete.

    *dst_nvm_bytes* decouples the NVM-side volume from the wire volume:
    a compressed send moves the wire bytes across the fabric but lands
    the full decompressed payload on the buddy's NVM bus."""
    net_ev = fabric.transfer(src, dst, nbytes, tag=tag)
    if dst_nvm_bus is None:
        return net_ev
    nvm_ev = dst_nvm_bus.transfer(
        nbytes if dst_nvm_bytes is None else dst_nvm_bytes, tag=tag
    )
    return fabric.engine.all_of([net_ev, nvm_ev])


def rdma_get(
    fabric: Fabric,
    src: int,
    dst: int,
    nbytes: float,
    tag: str = "",
    src_nvm_bus: Optional[BandwidthResource] = None,
    src_nvm_bytes: Optional[float] = None,
) -> Event:
    """One-sided read: *dst* pulls *nbytes* out of *src* node's NVM
    (restart fetch path).  NVM reads are near-DRAM speed (Table I), so
    the source bus flow rarely dominates, but it is still charged."""
    net_ev = fabric.transfer(src, dst, nbytes, tag=tag)
    if src_nvm_bus is None:
        return net_ev
    nvm_ev = src_nvm_bus.transfer(
        nbytes if src_nvm_bytes is None else src_nvm_bytes, tag=tag
    )
    return fabric.engine.all_of([net_ev, nvm_ev])


def cancel_rdma(
    fabric: Fabric,
    src: int,
    dst: int,
    tag: str,
    nvm_bus: Optional[BandwidthResource] = None,
) -> int:
    """Tear down the in-flight flows of one RDMA operation by tag —
    src egress, dst ingress, and the coupled NVM-bus flow.  Used by the
    resilience layer to cancel a stalled attempt before re-issuing it.
    Returns the number of flows cancelled."""
    n = fabric.links[src].egress.cancel_tag(tag)
    n += fabric.links[dst].ingress.cancel_tag(tag)
    if nvm_bus is not None:
        n += nvm_bus.cancel_tag(tag)
    return n
