"""Exception hierarchy for the NVM-checkpoints reproduction.

Every library-raised error derives from :class:`ReproError` so callers
can catch the whole family; fine-grained subclasses mirror the failure
surfaces of the real system (allocation, persistence, checkpointing,
simulation misuse).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration: an unknown policy/mode name, an option
    value outside its domain, or an inconsistent combination.

    Also a :class:`ValueError` so pre-existing callers validating
    config dataclasses with ``except ValueError`` keep working.
    """


# ---------------------------------------------------------------------------
# Simulation engine errors.
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Misuse of, or an inconsistency inside, the discrete-event engine."""


class ProcessKilled(SimulationError):
    """Injected into a simulated process when it is forcibly terminated
    (e.g. by a node failure).  Processes normally do not catch this."""


class TransferCancelled(SimulationError):
    """An in-flight bandwidth flow was aborted (node failure tore down
    the traffic).  Background engines catch this and carry on."""


# ---------------------------------------------------------------------------
# Memory substrate errors.
# ---------------------------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for emulated-memory errors (named with a trailing
    underscore to avoid shadowing the builtin)."""


class OutOfMemory(MemoryError_):
    """A device (DRAM or NVM) ran out of capacity."""


class ProtectionFault(MemoryError_):
    """A write hit a write-protected page/chunk.

    In the real system this is a SIGSEGV handled by the runtime; here the
    write barrier raises it so that the tracking layer can observe and
    charge the fault, then unprotect and retry.
    """

    def __init__(self, message: str, chunk_id: int | None = None) -> None:
        super().__init__(message)
        self.chunk_id = chunk_id


class InvalidAddress(MemoryError_):
    """Access outside a mapped region."""


class PersistenceError(MemoryError_):
    """The file-backed persistent store is corrupt or unreadable."""


# ---------------------------------------------------------------------------
# Fault-injection errors.
# ---------------------------------------------------------------------------


class FaultInjectionError(ReproError):
    """Misuse of the crash-point fault-injection harness (unknown crash
    point, bit-rot at a point that carries no store context...)."""


class CrashInjected(ReproError):
    """Raised by an installed :class:`repro.faults.FaultPlan` when a
    scripted/random fault fires at a named crash point.

    Deliberately *not* a :class:`SimulationError` or
    :class:`CheckpointError` subclass: background engines catch those
    families to keep running, but an injected crash must unwind the
    whole process like a real power loss.
    """

    def __init__(self, message: str, point: str | None = None) -> None:
        super().__init__(message)
        self.point = point


# ---------------------------------------------------------------------------
# Allocator errors.
# ---------------------------------------------------------------------------


class AllocationError(ReproError):
    """nvmalloc-level failure (bad size, duplicate id, unknown id...)."""


class DuplicateChunkId(AllocationError):
    """A chunk id was allocated twice without an intervening delete."""


class UnknownChunkId(AllocationError, KeyError):
    """Lookup of a chunk id that was never allocated (or was deleted).

    Also a :class:`KeyError` so the Table-III facade's uniform
    key-resolution contract (``int | str`` chunk keys) can be caught
    with ``except KeyError`` by applications that treat the chunk
    registry as a mapping.
    """

    def __str__(self) -> str:  # KeyError repr-quotes its message
        return Exception.__str__(self)


# ---------------------------------------------------------------------------
# Checkpoint/restart errors.
# ---------------------------------------------------------------------------


class CheckpointError(ReproError):
    """A checkpoint operation failed."""


class CodecError(CheckpointError):
    """A payload codec failed: delta applied against the wrong base,
    a dedup reference whose content is unknown to the block store, or
    a block whose digest does not match its bytes."""


class ChecksumMismatch(CheckpointError):
    """Restart found a chunk whose stored checksum does not match its
    data; the restart component falls back to the remote copy."""

    def __init__(self, message: str, chunk_id: int | None = None) -> None:
        super().__init__(message)
        self.chunk_id = chunk_id


class NoCheckpointAvailable(CheckpointError):
    """Restart was requested but neither a local nor a remote committed
    version exists for the chunk/process."""


class AllReplicasLost(NoCheckpointAvailable):
    """Restart escalation exhausted every replica: the local copy is
    unusable *and* the buddy fetch failed (no buddy, nothing committed
    there, or the resilient fetch gave up).  Subclasses
    :class:`NoCheckpointAvailable` so existing handlers keep working,
    but carries structured context for operators."""

    def __init__(
        self,
        message: str,
        *,
        pid: str | None = None,
        chunk: str | None = None,
        tried: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.pid = pid
        self.chunk = chunk
        #: replica levels that were attempted, in order ("local", "buddy")
        self.tried = tried


class RestartError(CheckpointError):
    """Restart could not reconstruct process state."""


# ---------------------------------------------------------------------------
# Cluster / network errors.
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Cluster-level configuration or runtime error."""


class NodeFailed(ClusterError):
    """Operation attempted on a node currently marked failed."""


class NetworkError(ClusterError):
    """RDMA/fabric transfer failure."""


class TransferFailed(NetworkError):
    """A resilient transfer gave up: every retry attempt was cancelled
    or timed out within the policy's attempt/deadline budget.  Unlike
    :class:`TransferCancelled` (one torn flow) this is a terminal
    verdict on the whole transfer."""

    def __init__(
        self,
        message: str,
        *,
        src: int | None = None,
        dst: int | None = None,
        tag: str = "",
        attempts: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempts = attempts
        self.elapsed = elapsed
