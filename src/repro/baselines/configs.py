"""Named baseline configurations.

The paper's comparisons are between *configurations* of the same
runtime; these constructors give the benchmark code self-describing
names for each arm.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import CheckpointConfig, PrecopyPolicy

__all__ = [
    "blocking_local_policy",
    "precopy_local_policy",
    "async_noprecopy_config",
    "precopy_config",
]


def blocking_local_policy() -> PrecopyPolicy:
    """'No pre-copy': the coordinated local checkpoint copies every
    persistent chunk after the compute step, nothing in background."""
    return PrecopyPolicy(mode=PrecopyPolicy.NONE)


def precopy_local_policy(mode: str = PrecopyPolicy.DCPCP) -> PrecopyPolicy:
    """NVM-checkpoint pre-copy (default: the full DCPCP variant)."""
    return PrecopyPolicy(mode=mode)


def async_noprecopy_config(
    local_interval: float = 40.0, remote_interval: float = 120.0
) -> CheckpointConfig:
    """The Fig. 9/10 baseline: remote checkpoints are asynchronous
    (overlapped with compute, the application does not block) but the
    whole checkpoint moves at once at each remote interval; local
    checkpoints run with pre-copy disabled."""
    return CheckpointConfig(
        local_interval=local_interval,
        remote_interval=remote_interval,
        precopy=blocking_local_policy(),
        remote_precopy=False,
    )


def precopy_config(
    local_interval: float = 40.0,
    remote_interval: float = 120.0,
    mode: str = PrecopyPolicy.DCPCP,
) -> CheckpointConfig:
    """Full NVM-checkpoints: local + remote chunk-level pre-copy."""
    return CheckpointConfig(
        local_interval=local_interval,
        remote_interval=remote_interval,
        precopy=precopy_local_policy(mode),
        remote_precopy=True,
    )
