"""Ramdisk (tmpfs/VFS) vs in-memory checkpoint path models (§IV).

The paper's motivation experiment replaces MADBench2's I/O calls
(open/read/write/seek) with allocation + memcpy and finds the ramdisk
path 46% slower at 300 MB/core, with 3x the kernel synchronization
calls and 31% more lock-wait time — because every VFS access pays
user/kernel transitions, serialization, and kernel metadata lock
contention, even though both paths store bytes in DRAM.

Both models price a checkpoint of ``nbytes`` per core with ``writers``
concurrent cores; they share the same DRAM copy cost (the data movement
is identical — the *path* differs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BandwidthModelConfig, DeviceConfig, DRAM_CONFIG, RamdiskConfig
from ..memory.bandwidth import CoreContentionModel
from ..units import GiB

__all__ = ["PathCosts", "RamdiskPathModel", "MemoryPathModel"]


@dataclass
class PathCosts:
    """Cost breakdown of one checkpoint through one path."""

    copy: float = 0.0
    serialization: float = 0.0
    syscalls: float = 0.0
    lock_wait: float = 0.0
    #: kernel synchronization call count (the paper's 3x metric)
    sync_calls: int = 0

    @property
    def total(self) -> float:
        return self.copy + self.serialization + self.syscalls + self.lock_wait


class MemoryPathModel:
    """Allocation + memcpy checkpointing (what NVM-as-memory enables)."""

    def __init__(
        self,
        dram: DeviceConfig = DRAM_CONFIG,
        bw_model: BandwidthModelConfig = BandwidthModelConfig(),
        config: RamdiskConfig = RamdiskConfig(),
    ) -> None:
        self.contention = CoreContentionModel(dram, bw_model)
        self.config = config

    def checkpoint_costs(self, nbytes: int, writers: int = 1) -> PathCosts:
        costs = PathCosts()
        costs.copy = nbytes / self.contention.per_core_rate(max(1, writers))
        # minor faults / allocator locks: one sync per I/O-block worth
        n_blocks = max(1, nbytes // self.config.io_block_size)
        costs.sync_calls = n_blocks
        costs.lock_wait = nbytes * self.config.memory_path_per_byte
        return costs

    def checkpoint_time(self, nbytes: int, writers: int = 1) -> float:
        return self.checkpoint_costs(nbytes, writers).total


class RamdiskPathModel:
    """open/write/seek checkpointing onto tmpfs through the VFS."""

    def __init__(
        self,
        dram: DeviceConfig = DRAM_CONFIG,
        bw_model: BandwidthModelConfig = BandwidthModelConfig(),
        config: RamdiskConfig = RamdiskConfig(),
    ) -> None:
        self.contention = CoreContentionModel(dram, bw_model)
        self.config = config

    def checkpoint_costs(self, nbytes: int, writers: int = 1) -> PathCosts:
        cfg = self.config
        costs = PathCosts()
        # identical data movement...
        costs.copy = nbytes / self.contention.per_core_rate(max(1, writers))
        # ...plus VFS serialization through the page cache
        costs.serialization = nbytes * cfg.serialization_per_byte
        # ...plus one user/kernel transition per write() block
        n_ios = max(1, nbytes // cfg.io_block_size)
        costs.syscalls = n_ios * cfg.syscall_latency
        # ...plus kernel metadata lock waits: 3 sync calls per I/O,
        # hold times growing with cached file size, contention growing
        # with concurrent writers
        costs.sync_calls = n_ios * cfg.sync_calls_per_io
        gb = nbytes / GiB
        contention = 1.0 + cfg.lock_contention_alpha * (max(1, writers) - 1)
        costs.lock_wait = cfg.lock_wait_quadratic * gb * gb * contention
        return costs

    def checkpoint_time(self, nbytes: int, writers: int = 1) -> float:
        return self.checkpoint_costs(nbytes, writers).total
