"""Parallel-file-system checkpointing — the traditional baseline.

The paper's introduction motivates multi-level NVM checkpointing
against PFS-based checkpointing (citing its I/O-bandwidth limits and
contention, and Moody et al.'s 30-40% multilevel gains).  This module
models the PFS as what it is at checkpoint time: one *globally shared*
I/O resource all ranks contend on, plus per-operation metadata costs
(open/create on a shared metadata server).

``PfsModel`` is the shared substrate; ``make_pfs_transfer`` adapts it
to the :class:`~repro.core.local.LocalCheckpointer` transfer hook so
the same coordinator code drives PFS-target checkpoints.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..alloc.chunk import Chunk
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.resources import BandwidthResource
from ..units import GB_per_sec, msec

__all__ = ["PfsModel", "make_pfs_transfer"]


class PfsModel:
    """A cluster-wide parallel file system.

    * ``aggregate_bandwidth`` — total I/O bandwidth of the storage
      system, shared by *every* writer in the job (the defining
      difference from node-local NVM, whose bandwidth scales with
      nodes);
    * ``metadata_latency`` — per-file-operation cost on the metadata
      server (create/open at each checkpoint write).
    """

    def __init__(
        self,
        engine: Engine,
        aggregate_bandwidth: float = GB_per_sec(4.0),
        metadata_latency: float = msec(5.0),
        name: str = "pfs",
    ) -> None:
        self.engine = engine
        self.resource = BandwidthResource(engine, aggregate_bandwidth, name=name)
        self.metadata_latency = metadata_latency
        self.file_ops = 0

    def write(self, nbytes: float, tag: str = "") -> Event:
        """One checkpoint-file write: metadata op, then the data
        transfer through the shared pipe."""
        self.file_ops += 1
        done = self.engine.event(name=f"pfs.write({nbytes:.0f})")

        def start_transfer() -> None:
            ev = self.resource.transfer(nbytes, tag=tag)

            def finish(inner: Event) -> None:
                if inner.ok:
                    done.succeed(None)
                else:
                    done.fail(inner.exception)  # type: ignore[arg-type]

            ev.add_callback(finish)

        self.engine.call_at(self.engine.now + self.metadata_latency, start_transfer)
        return done

    @property
    def total_bytes(self) -> float:
        return self.resource.total_bytes


def make_pfs_transfer(pfs: PfsModel, rank: str) -> Callable[[Chunk], Event]:
    """Deprecated: a LocalCheckpointer ``transfer_fn`` that writes
    chunks to the PFS instead of node-local NVM.  Use
    :class:`repro.core.destination.PfsDestination`, which carries the
    whole backend contract (flush/metadata/no-shadow-commit), instead
    of this data-path-only hook."""
    import warnings

    warnings.warn(
        "make_pfs_transfer() is deprecated; build a "
        "repro.core.destination.PfsDestination and pass it as the "
        "checkpointer's destination instead",
        DeprecationWarning,
        stacklevel=2,
    )

    def transfer(chunk: Chunk) -> Event:
        return pfs.write(chunk.nbytes, tag=f"{rank}:pfsckpt")

    return transfer
