"""Comparison baselines the paper evaluates against.

* :mod:`~repro.baselines.ramdisk` — the ramdisk/VFS checkpoint path
  and the plain in-memory (DRAM memcpy) path of the §IV MADBench2
  motivation study;
* blocking local checkpointing and asynchronous-without-pre-copy
  remote checkpointing are expressed through configuration
  (``PrecopyPolicy(mode="none")`` and
  ``CheckpointConfig(remote_precopy=False)``) — helpers here construct
  those configurations so benches read clearly.
"""

from .ramdisk import MemoryPathModel, RamdiskPathModel, PathCosts
from .pfs import PfsModel, make_pfs_transfer
from .configs import (
    async_noprecopy_config,
    blocking_local_policy,
    precopy_config,
    precopy_local_policy,
)

__all__ = [
    "RamdiskPathModel",
    "MemoryPathModel",
    "PathCosts",
    "PfsModel",
    "make_pfs_transfer",
    "blocking_local_policy",
    "precopy_local_policy",
    "async_noprecopy_config",
    "precopy_config",
]
