"""Crash-point matrix CLI: crash at every registered point, print the
per-point outcome table.

Runs the same campaign as ``pytest -m faults`` (and ``make faults``)
but as a standalone report::

    python -m repro.tools.faultmatrix                # fixed default seed
    python -m repro.tools.faultmatrix --seed 7 --random 25

``--random N`` additionally runs N seeded random fault plans (the
property-test workload) and folds their outcomes into the same table.
Exit status is non-zero if any run ends in an outcome the acceptance
rule forbids — a torn restore, or an unrecoverable state that a
committed checkpoint should have prevented.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..faults.harness import (
    CONSISTENT_OUTCOMES,
    OUTCOME_NO_CRASH,
    OUTCOME_UNRECOVERABLE,
    CrashConsistencyHarness,
    matrix_case,
    matrix_points,
)
from ..faults.plan import FaultPlan
from ..metrics.collectors import CrashOutcomeCounter

__all__ = ["run_matrix", "main"]

DEFAULT_SEED = 2024


def _acceptable(result, plan) -> bool:
    if result.outcome in CONSISTENT_OUTCOMES or result.outcome == OUTCOME_NO_CRASH:
        return True
    if result.outcome != OUTCOME_UNRECOVERABLE or "TORN" in result.detail:
        return False
    return plan.hits.get("local.commit.done", 0) == 0 or bool(plan.bitrot_injected)


def run_matrix(seed: int = DEFAULT_SEED, n_random: int = 0, verbose: bool = False):
    """Run the full crash-point matrix (plus *n_random* random plans).

    Returns ``(counter, failures)`` where *failures* lists human-readable
    descriptions of runs that violated the acceptance rule.
    """
    counter = CrashOutcomeCounter()
    failures: List[str] = []
    for name in matrix_points():
        harness, plan = matrix_case(name, seed=seed)
        result = harness.run(plan)
        counter.record(name, result.outcome)
        ok = _acceptable(result, plan) and all(f.consumed for f in plan.faults)
        if not ok:
            failures.append(f"matrix {name}: {result.outcome} ({result.detail})")
        if verbose:
            print(f"  {name:<32} {result.outcome:<20} {result.detail or ''}")
    for i in range(n_random):
        plan = FaultPlan.random(seed + i)
        result = CrashConsistencyHarness(seed=seed).run(plan)
        counter.record(result.crash_point or "<random:no-crash>", result.outcome)
        if not _acceptable(result, plan):
            failures.append(
                f"random seed={seed + i}: {result.outcome} at "
                f"{result.crash_point} ({result.detail})"
            )
        if verbose:
            print(f"  random #{i:<3} @{result.crash_point!s:<24} {result.outcome}")
    return counter, failures


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help=f"workload/plan seed (default {DEFAULT_SEED})")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="also run N seeded random fault plans")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one line per run as it completes")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    n_points = len(matrix_points())
    print(f"crash-point matrix: {n_points} points, seed={args.seed}, "
          f"{args.random} random plans")
    counter, failures = run_matrix(args.seed, args.random, args.verbose)
    print()
    print(counter.table())
    if failures:
        print(f"\n{len(failures)} ACCEPTANCE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {counter.total} runs acceptable "
          f"(consistent: {sum(counter.count(o) for o in CONSISTENT_OUTCOMES)}, "
          f"unrecoverable: {counter.count(OUTCOME_UNRECOVERABLE)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
