"""Command-line tooling: the experiment driver
(``python -m repro.tools.experiment``)."""
