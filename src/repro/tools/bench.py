"""Perf-trajectory benchmark CLI: ``python -m repro.tools.bench``.

Runs a pinned subset of the paper's evaluation grids through the
:mod:`repro.exec` engine and emits a machine-readable JSON record
(``BENCH_baseline.json`` via ``make bench-json``) seeding the repo's
perf trajectory:

* the pinned 16-cell sweep grid executed serially (the reference),
  then parallel with a cold cache, then again with a warm cache;
* cells/sec for each mode, the warm-run cache hit rate, and the
  engine speedup over naive serial re-execution;
* a paired chunk-granular vs page-granular (incremental) pass over the
  same grid, recording the checkpoint bytes-saved ratio per cell;
* wall-clock per pinned figure grid (Figs. 7/8/9 miniatures).

All grids are deterministic (per-cell derived seeds), so the records
themselves are stable across runs — only the wall-clocks move with the
host.  ``--smoke`` runs one cached sweep cell cold + warm and fails if
the warm run executes anything: the CI-sized proof that sharding and
caching work.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..exec.cache import ResultCache
from ..exec.cell import run_cell, run_experiment
from ..exec.executor import ParallelExecutor, resolve_workers
from ..exec.grid import GridReport, expand_grid, run_grid
from ..metrics.trace import BUS, CounterSink, JsonlSink
from .elastic import run_elastic_block, run_elastic_smoke
from .qos import run_qos_block, run_qos_smoke
from .sweep import parse_sweeps

__all__ = [
    "PINNED_GRID", "FIGURE_GRIDS", "SCALE_GRID",
    "run_benchmark", "run_scale_block", "run_dedup_block",
    "run_smoke", "run_scale_smoke", "run_dedup_smoke", "main",
]

#: the headline grid: 16 cells of the paper's LAMMPS testbed with the
#: remote (buddy) tier on — the heaviest per-cell configuration the
#: evaluation sweeps, crossed over device bandwidth and pre-copy policy
PINNED_GRID: Tuple[List[str], List[str]] = (
    [
        "--app", "lammps", "--nodes", "2", "--ranks-per-node", "4",
        "--iterations", "3", "--local-interval", "20", "--remote-interval", "60",
    ],
    ["nvm-gbps=0.5,1.0,2.0,4.0", "mode=none,cpc,dcpc,dcpcp"],
)

#: miniature per-figure grids (same shape as the full benchmarks/
#: figures, pinned small so the whole bench stays interactive)
FIGURE_GRIDS: Dict[str, Tuple[List[str], List[str]]] = {
    "fig7_lammps_local": (
        ["--app", "lammps", "--nodes", "2", "--ranks-per-node", "4",
         "--iterations", "3", "--local-interval", "20",
         "--remote-interval", "60", "--no-remote"],
        ["nvm-gbps=0.5,1.0,2.0,4.0", "mode=none,dcpcp"],
    ),
    "fig8_gtc_local": (
        ["--app", "gtc", "--nodes", "2", "--ranks-per-node", "4",
         "--iterations", "3", "--local-interval", "20",
         "--remote-interval", "60", "--no-remote"],
        ["mode=none,cpc,dcpc,dcpcp"],
    ),
    "fig9_efficiency": (
        ["--app", "synthetic", "--nodes", "2", "--ranks-per-node", "4",
         "--iterations", "4", "--local-interval", "15",
         "--remote-interval", "45", "--checkpoint-mb", "80",
         "--chunk-mb", "10", "--mtbf-local", "600", "--mtbf-remote", "2400"],
        ["mode=none,dcpcp", "nvm-gbps=1.0,2.0"],
    ),
}


#: the throughput grid behind the ``scale`` block: 4 local-only LAMMPS
#: cells, small enough to re-run through both executor generations
SCALE_GRID: Tuple[List[str], List[str]] = (
    [
        "--app", "lammps", "--nodes", "2", "--ranks-per-node", "4",
        "--iterations", "3", "--local-interval", "20",
        "--remote-interval", "60", "--no-remote",
    ],
    ["mode=none,dcpcp", "nvm-gbps=1.0,2.0"],
)


def _grid_cells(axes_specs: Sequence[str]) -> int:
    n = 1
    for _, vals in parse_sweeps(list(axes_specs)):
        n *= len(vals)
    return n


def _cell_ckpt_gb(record: dict) -> float:
    """Total checkpoint bytes (GB) one cell moved across both tiers."""
    return (
        record["local.coordinated_gb"]
        + record["local.precopy_gb"]
        + record["remote.round_gb"]
        + record["remote.stream_gb"]
    )


def _mode_record(report: GridReport) -> dict:
    ex = report.execution
    return {
        "wall_s": round(ex.wall_s, 4),
        "cells": ex.cells_total,
        "cells_executed": ex.cells_executed,
        "cache_hits": ex.cache_hits,
        "cache_hit_rate": round(ex.cache_hit_rate, 4),
        "cells_per_sec": round(ex.cells_per_sec, 3),
        "workers": ex.workers,
    }


def run_benchmark(
    workers: int,
    cache_dir: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> dict:
    """Run the full pinned benchmark; returns the JSON-ready record.

    *trace_path* streams the serial reference run's structured trace
    (policy decisions, chunk copies, commits...) as JSONL.  Tracing is
    scoped to the serial run only — it doubles as the reference count
    for the census; grid-level merged worker traces are available via
    ``run_grid(..., trace=path)`` instead.
    """
    base, axes_specs = PINNED_GRID
    axes = parse_sweeps(axes_specs)
    owns_tmp = cache_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-bench-") if owns_tmp else cache_dir

    # 1. reference: naive serial, no cache — what every sweep paid
    # before the engine existed.  Runs in-process, so the trace bus
    # observes every cell.
    counter = CounterSink()
    jsonl = JsonlSink(trace_path) if trace_path else None
    BUS.attach(counter)
    if jsonl is not None:
        BUS.attach(jsonl)
    try:
        serial = run_grid(base, axes, workers=1, cache=None)
    finally:
        if jsonl is not None:
            BUS.detach(jsonl)
            jsonl.close()
        BUS.detach(counter)

    # 1b. the same pinned grid with page-granular incremental copy.
    # Copy granularity lives in the base config, not an axis, so both
    # runs derive identical per-cell seeds and pair cell-for-cell in
    # grid order; the delta is the checkpoint bytes the dirty-page
    # extents saved over whole-chunk copies.
    incremental = run_grid(
        base + ["--copy-granularity", "page"], axes, workers=1, cache=None
    )
    inc_cells: List[dict] = []
    chunk_gb_total = inc_gb_total = 0.0
    for chunk_rec, inc_rec in zip(serial.records, incremental.records):
        cg = _cell_ckpt_gb(chunk_rec)
        ig = _cell_ckpt_gb(inc_rec)
        chunk_gb_total += cg
        inc_gb_total += ig
        inc_cells.append({
            "mode": chunk_rec["sweep.mode"],
            "nvm_gbps": chunk_rec["sweep.nvm-gbps"],
            "chunk_gb": round(cg, 4),
            "incremental_gb": round(ig, 4),
            "bytes_saved_ratio": round(1.0 - ig / cg, 4) if cg > 0 else 0.0,
        })

    # 2. engine, cold cache: sharded execution, results stored
    cold = run_grid(base, axes, workers=workers, cache=ResultCache(tmp))

    # 3. engine, warm cache: the re-run path — must execute nothing
    warm = run_grid(base, axes, workers=workers, cache=ResultCache(tmp))

    deterministic = serial.records == cold.records == warm.records

    figures: Dict[str, dict] = {}
    for name, (fig_base, fig_axes_specs) in FIGURE_GRIDS.items():
        fig_axes = parse_sweeps(fig_axes_specs)
        fig = run_grid(fig_base, fig_axes, workers=workers, cache=ResultCache(tmp))
        figures[name] = _mode_record(fig)

    serial_s = serial.execution.wall_s
    record = {
        "schema": "repro-bench/1",
        "version": __version__,
        "host_cpus": os.cpu_count(),
        "grid": {
            "app": "lammps",
            "axes": list(axes_specs),
            "cells": _grid_cells(axes_specs),
        },
        "serial": _mode_record(serial),
        "parallel_cold": {
            **_mode_record(cold),
            "speedup_vs_serial": round(serial_s / cold.execution.wall_s, 3)
            if cold.execution.wall_s > 0 else 0.0,
        },
        "cached_rerun": {
            **_mode_record(warm),
            "speedup_vs_serial": round(serial_s / warm.execution.wall_s, 3)
            if warm.execution.wall_s > 0 else 0.0,
        },
        # the engine's wall-clock win over naive serial re-execution:
        # best of sharding (multi-core hosts) and caching (re-runs)
        "speedup": round(
            serial_s / min(cold.execution.wall_s, warm.execution.wall_s), 3
        ),
        "deterministic": deterministic,
        # structured-trace census of the serial reference run: how many
        # of each pipeline event fired, and the scheduling-policy
        # decision mix across all 16 cells (4 modes x 4 bandwidths)
        "trace_events": dict(sorted(counter.by_kind.items())),
        "policy_decisions": dict(sorted(counter.decisions.items())),
        # chunk-granular vs page-granular (incremental) checkpoint
        # bytes per pinned cell, and the aggregate bytes-saved ratio
        "incremental": {
            "cells": inc_cells,
            "chunk_gb": round(chunk_gb_total, 4),
            "incremental_gb": round(inc_gb_total, 4),
            "bytes_saved_ratio": round(1.0 - inc_gb_total / chunk_gb_total, 4)
            if chunk_gb_total > 0 else 0.0,
        },
        # payload-codec pass: the same incremental grid with the auto
        # codec on — the wire bytes delta/dedup kept off the copy path
        # on top of what the dirty-page extents already saved
        "dedup": run_dedup_block(base, axes_specs, incremental=incremental),
        "figures": figures,
        # trace-driven replay: every pinned cell captured live and
        # byte-compared against its own replay, plus the wall-clock win
        # of what-if policy sweeps over captured traces
        "replay": run_replay_block(base, axes_specs),
        # DES + executor throughput: events/sec and nodes/sec of the
        # vectorized hot loops, and the persistent pool's dispatch
        # win over the pre-1.1 fork-a-Pool-per-run shape
        "scale": run_scale_block(),
        # elastic membership: the grow/shrink-under-load scenario —
        # live bounded-batch migration under an SLO, and incremental
        # failover bytes vs the full-resync baseline
        "elastic": run_elastic_block(),
        # multi-tenant QoS: the pinned checkpoint-as-a-service
        # scenario — per-tenant SLO attainment and throttle time under
        # contention, admission/preemption decision census, and
        # end-to-end tenant attribution through the cluster path
        "qos": run_qos_block(),
    }
    return record


def _dispatch_probe(x):
    """Near-zero-work worker payload: what's left is pure dispatch."""
    return x


def run_scale_block(
    workers_requested: int = 4, *, dispatch_rounds: int = 12
) -> dict:
    """DES + executor throughput: the ``scale`` block of the baseline.

    Three families of numbers:

    * **simulation throughput** — the :data:`SCALE_GRID` cells run
      in-process via :func:`run_experiment`, counting the engine's
      dispatched DES items (``RunResult.sim_events``): events/sec,
      node-simulations/sec and cells/sec of the single-process hot
      path (zero-delay fast lane + vectorized flow advance).
    * **worker accounting** — ``workers_requested`` vs the effective
      clamped count on this host (``resolve_workers``), so a 1-CPU CI
      runner is legible in the record instead of silently odd.
    * **pool dispatch** — ``dispatch_rounds`` rounds of a near-empty
      payload through (a) one persistent :class:`ParallelExecutor`
      pool, spawned once, and (b) the pre-1.1 dispatch shape: a fresh
      ``multiprocessing.Pool`` forked per round with ``chunksize=1``.
      Zero-work payloads isolate exactly what the redesign changed —
      per-round pool lifecycle + IPC — so the number is stable even
      when real cell work would drown it;
      ``pool_speedup_vs_forkpool > 1`` is the persistent pool paying
      off.  The real :data:`SCALE_GRID` cells additionally run once
      through each generation and must reproduce the serial records
      byte-for-byte (``deterministic``).
    """
    import multiprocessing

    base, axes_specs = SCALE_GRID
    cells = expand_grid(base, parse_sweeps(list(axes_specs)))
    configs = [cell.config for cell in cells]

    # 1. single-process simulation throughput
    events = nodes = 0
    t0 = time.perf_counter()
    serial_records = []
    for config in configs:
        res = run_experiment(argparse.Namespace(**dict(config)))
        events += res.sim_events
        nodes += res.n_nodes
        serial_records.append(res.to_dict())
    sim_wall = time.perf_counter() - t0

    mp_start = (
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    probe_items = list(range(workers_requested))

    # 2. persistent pool: spawn once, then real cells + dispatch rounds
    t1 = time.perf_counter()
    with ParallelExecutor(
        workers_requested, clamp=False, private_pool=True, mp_start=mp_start
    ) as ex:
        pool_report = ex.run(run_cell, configs)
        pool_cells_wall = time.perf_counter() - t1
        t2 = time.perf_counter()
        for _ in range(dispatch_rounds):
            ex.run(_dispatch_probe, probe_items)
        pool_dispatch_wall = time.perf_counter() - t2

    # 3. the legacy shape: fork a fresh Pool per round, one task per IPC
    ctx = multiprocessing.get_context(mp_start)
    t3 = time.perf_counter()
    with ctx.Pool(processes=workers_requested) as legacy:
        legacy_records = legacy.map(run_cell, configs, chunksize=1)
    legacy_cells_wall = time.perf_counter() - t3
    t4 = time.perf_counter()
    for _ in range(dispatch_rounds):
        with ctx.Pool(processes=workers_requested) as legacy:
            legacy.map(_dispatch_probe, probe_items, chunksize=1)
    legacy_dispatch_wall = time.perf_counter() - t4

    deterministic = serial_records == pool_report.results == legacy_records
    return {
        "grid": {"axes": list(axes_specs), "cells": len(configs)},
        "sim": {
            "wall_s": round(sim_wall, 4),
            "events": events,
            "events_per_sec": round(events / sim_wall, 1) if sim_wall > 0 else 0.0,
            "nodes_per_sec": round(nodes / sim_wall, 3) if sim_wall > 0 else 0.0,
            "cells_per_sec": round(len(configs) / sim_wall, 3)
            if sim_wall > 0 else 0.0,
        },
        "workers": {
            "requested": workers_requested,
            "effective": resolve_workers(workers_requested),
            "host_cpus": os.cpu_count(),
        },
        "pool": {
            "dispatch_rounds": dispatch_rounds,
            "persistent_dispatch_wall_s": round(pool_dispatch_wall, 4),
            "forkpool_dispatch_wall_s": round(legacy_dispatch_wall, 4),
            "pool_speedup_vs_forkpool": round(
                legacy_dispatch_wall / pool_dispatch_wall, 3
            ) if pool_dispatch_wall > 0 else 0.0,
            "persistent_cells_wall_s": round(pool_cells_wall, 4),
            "forkpool_cells_wall_s": round(legacy_cells_wall, 4),
            "batches": pool_report.batches,
        },
        "deterministic": deterministic,
    }


def run_dedup_block(
    base: List[str],
    axes_specs: Sequence[str],
    *,
    incremental: Optional[GridReport] = None,
) -> dict:
    """Paired incremental-vs-codec pass over the pinned grid.

    Both passes run page-granular incremental copy; the codec pass
    additionally routes every payload through the ``auto`` codec
    (delta/dedup/raw, cheapest per chunk).  Codec choice lives in the
    base config, not an axis, so the two passes derive identical
    per-cell seeds and pair cell-for-cell in grid order; the delta is
    the wire bytes the payload representation kept off the copy path
    *on top of* the dirty-extent savings.  ``below_incremental_all``
    asserts the codec pass moved strictly fewer bytes on every cell.
    """
    axes = parse_sweeps(list(axes_specs))
    if incremental is None:
        incremental = run_grid(
            base + ["--copy-granularity", "page"], axes, workers=1, cache=None
        )
    dedup = run_grid(
        base + ["--copy-granularity", "page", "--codec", "auto"],
        axes, workers=1, cache=None,
    )
    cells: List[dict] = []
    inc_gb_total = dedup_gb_total = delta_gb_total = 0.0
    blocks_new = blocks_ref = 0
    all_below = True
    for inc_rec, ded_rec in zip(incremental.records, dedup.records):
        ig = _cell_ckpt_gb(inc_rec)
        dg = _cell_ckpt_gb(ded_rec)
        below = dg < ig
        all_below = all_below and below
        inc_gb_total += ig
        dedup_gb_total += dg
        delta_gb_total += ded_rec.get("codec.delta_changed_gb", 0.0)
        blocks_new += ded_rec.get("codec.blocks_new", 0)
        blocks_ref += ded_rec.get("codec.blocks_ref", 0)
        cells.append({
            "mode": ded_rec["sweep.mode"],
            "nvm_gbps": ded_rec["sweep.nvm-gbps"],
            "incremental_gb": round(ig, 4),
            "dedup_gb": round(dg, 4),
            "bytes_saved_ratio": round(1.0 - dg / ig, 4) if ig > 0 else 0.0,
            "dedup_hit_rate": ded_rec.get("codec.dedup_hit_rate", 0.0),
            "below_incremental": below,
        })
    blocks = blocks_new + blocks_ref
    return {
        "codec": "auto",
        "cells": cells,
        "incremental_gb": round(inc_gb_total, 4),
        "dedup_gb": round(dedup_gb_total, 4),
        "bytes_saved_ratio": round(1.0 - dedup_gb_total / inc_gb_total, 4)
        if inc_gb_total > 0 else 0.0,
        "delta_changed_gb": round(delta_gb_total, 4),
        "dedup_hit_rate": round(blocks_ref / blocks, 4) if blocks else 0.0,
        "below_incremental_all": all_below,
    }


def _dedup_restart_check() -> Tuple[int, int]:
    """Checkpoint real payloads through the auto codec twice, crash,
    and restart with block-digest verification; returns
    ``(blocks_verified, digest_failures)``."""
    import numpy as np

    from ..alloc import NVAllocator
    from ..config import PrecopyPolicy
    from ..core import LocalCheckpointer, RestartManager, make_standalone_context
    from ..sim import Engine

    engine = Engine()
    ctx = make_standalone_context(name="n0", engine=engine)
    alloc = NVAllocator(
        "r0", ctx.nvmm, ctx.dram, phantom=False, clock=lambda: engine.now
    )
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none", codec="auto"))
    rng = np.random.default_rng(7)
    a = alloc.nvalloc("a", 256 * 1024)
    a.write(0, rng.integers(0, 255, size=256 * 1024, dtype=np.uint8))
    b = alloc.nvalloc("b", 128 * 1024)
    b.write(0, np.zeros(128 * 1024, dtype=np.uint8))
    p1 = engine.process(ck.checkpoint(blocking=False))
    engine.run()
    # second round: one re-dirtied page on `a` (delta/dedup base
    # exists now), `b` rewritten with identical content (pure dedup)
    a.write(0, rng.integers(0, 255, size=4096, dtype=np.uint8))
    b.write(0, np.zeros(128 * 1024, dtype=np.uint8))
    p2 = engine.process(ck.checkpoint(blocking=False))
    engine.run()
    if not (p1.ok and p2.ok):
        return (0, 1)
    ctx.nvmm.store.crash()
    ctx.nvmm.crash_process("r0")
    report = RestartManager(ctx).restart_process_sync(
        "r0", block_store=ck.destination.block_store
    )
    return (report.blocks_verified, report.digest_failures)


def run_dedup_smoke() -> int:
    """CI-sized codec proof: a 2-cell paired incremental-vs-codec run
    (wire bytes must drop on both cells) plus a real-payload
    checkpoint -> crash -> restart cycle whose block-digest
    verification must cover blocks and find zero mismatches."""
    t0 = time.perf_counter()
    base, _ = PINNED_GRID
    block = run_dedup_block(base, ["nvm-gbps=2.0", "mode=none,dcpcp"])
    verified, failed = _dedup_restart_check()
    wall = time.perf_counter() - t0
    ok = (
        block["below_incremental_all"]
        and block["dedup_hit_rate"] > 0.0
        and verified > 0
        and failed == 0
    )
    print(
        f"dedup smoke: {len(block['cells'])} cells, "
        f"incremental {block['incremental_gb']}GB -> codec "
        f"{block['dedup_gb']}GB (saved {block['bytes_saved_ratio']:.1%}, "
        f"hit rate {block['dedup_hit_rate']:.1%}), restart verified "
        f"{verified} blocks with {failed} mismatches, "
        f"{wall:.1f}s -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def run_replay_block(
    base: List[str], axes_specs: Sequence[str], *, whatif_mode: str = "dcpcp"
) -> dict:
    """Capture every grid cell in-process and differentially verify
    its trace-driven replay, then time a what-if policy sweep over the
    captured traces.

    Two numbers matter: ``cells_exact`` (every cell's same-config
    replay must reproduce the live byte accounting integer-for-integer
    — the emit/serialize/replay pipeline's end-to-end oracle) and
    ``speedup`` (wall-clock of replaying a policy grid from traces vs
    simulating it live — the reason the replay engine exists).
    """
    from ..exec.grid import expand_grid
    from ..replay import capture_cell, compare_to_run

    axes = parse_sweeps(list(axes_specs))
    cells = expand_grid(base, axes)
    captures = []
    exact = 0
    mismatches: List[str] = []
    t0 = time.perf_counter()
    for cell in cells:
        cap = capture_cell(cell.config)
        captures.append((cell, cap))
    live_wall = time.perf_counter() - t0
    for cell, cap in captures:
        report = compare_to_run(cap.engine().faithful(), cap.result)
        if report.matches:
            exact += 1
        else:
            mismatches.append(
                f"cell {dict(cell.overrides)}: {report.describe()}"
            )
    # what-if sweep: one captured trace per non-policy coordinate
    # (the whatif_mode captures), replayed under every policy mode —
    # the same cell count as the live grid, for an honest speedup
    modes = ["none", "cpc", "dcpc", "dcpcp"]
    whatif_sources = [
        cap
        for cell, cap in captures
        if dict(cell.overrides).get("mode", whatif_mode) == whatif_mode
    ] or [cap for _, cap in captures]
    t1 = time.perf_counter()
    whatif_cells = 0
    for cap in whatif_sources:
        engine = cap.engine()
        for mode in modes:
            engine.replay(mode)
            whatif_cells += 1
    replay_wall = time.perf_counter() - t1
    return {
        "cells": len(cells),
        "cells_exact": exact,
        "mismatches": mismatches,
        "live_wall_s": round(live_wall, 4),
        "whatif_cells": whatif_cells,
        "replay_wall_s": round(replay_wall, 6),
        "speedup": round(live_wall / replay_wall, 1) if replay_wall > 0 else 0.0,
    }


def run_replay_smoke() -> int:
    """CI-sized replay differential: 2 captured cells, replayed and
    byte-compared, well under 30 s."""
    base, _ = PINNED_GRID
    t0 = time.perf_counter()
    block = run_replay_block(base, ["nvm-gbps=2.0", "mode=none,dcpcp"])
    wall = time.perf_counter() - t0
    ok = block["cells"] == 2 and block["cells_exact"] == 2
    for line in block["mismatches"]:
        print(f"  {line}")
    print(
        f"replay smoke: {block['cells_exact']}/{block['cells']} cells "
        f"byte-exact, what-if speedup {block['speedup']}x, "
        f"{wall:.1f}s -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def run_scale_smoke() -> int:
    """CI-sized scale proof: one pass of the scale block; fails if the
    simulation throughput numbers are degenerate, if serial /
    persistent-pool / legacy-forkpool records diverge, or if the
    persistent pool's dispatch loses to re-forking a Pool per round."""
    t0 = time.perf_counter()
    block = run_scale_block()
    wall = time.perf_counter() - t0
    ok = (
        block["sim"]["events"] > 0
        and block["sim"]["events_per_sec"] > 0
        and block["deterministic"]
        and block["pool"]["pool_speedup_vs_forkpool"] >= 1.0
    )
    print(
        f"scale smoke: {block['sim']['events']} DES events at "
        f"{block['sim']['events_per_sec']:.0f}/s, "
        f"{block['sim']['cells_per_sec']:.2f} cells/s serial, "
        f"pool speedup vs forkpool {block['pool']['pool_speedup_vs_forkpool']}x "
        f"({block['workers']['effective']}/{block['workers']['requested']} "
        f"workers effective), deterministic={block['deterministic']}, "
        f"{wall:.1f}s -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def run_smoke(workers: int) -> int:
    """One cached sweep cell under the executor, cold then warm."""
    base, _ = PINNED_GRID
    axes = parse_sweeps(["nvm-gbps=2.0"])
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        cold = run_grid(base, axes, workers=workers, cache=ResultCache(tmp))
        warm = run_grid(base, axes, workers=workers, cache=ResultCache(tmp))
    ok = (
        cold.execution.cells_executed == 1
        and warm.execution.cells_executed == 0
        and warm.execution.cache_hits == 1
        and cold.records == warm.records
    )
    print(
        f"exec smoke: cold executed={cold.execution.cells_executed} "
        f"warm executed={warm.execution.cells_executed} "
        f"hits={warm.execution.cache_hits} -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.tools.bench",
        description="Pinned benchmark subset; emits the perf-trajectory JSON.",
    )
    p.add_argument("--out", default="BENCH_baseline.json",
                   help="JSON output path ('-' for stdout)")
    p.add_argument("--workers", default="auto",
                   help="parallel worker processes ('auto' = one per CPU; "
                        "requests above the host CPU count are clamped)")
    p.add_argument("--cache-dir", default=None,
                   help="reuse a persistent cache dir (default: fresh temp dir)")
    p.add_argument("--smoke", action="store_true",
                   help="run one cached sweep cell cold+warm and exit")
    p.add_argument("--replay-smoke", action="store_true",
                   help="capture 2 pinned cells, replay them, assert "
                        "byte-exact accounting, and exit")
    p.add_argument("--scale-smoke", action="store_true",
                   help="run the scale grid serial + persistent-pool + "
                        "legacy-forkpool, assert identical records and "
                        "pool speedup >= 1, and exit")
    p.add_argument("--dedup-smoke", action="store_true",
                   help="run a paired incremental-vs-codec cell pair, "
                        "assert the codec pass moves strictly fewer "
                        "bytes and a post-crash restart verifies block "
                        "digests cleanly, and exit")
    p.add_argument("--elastic-smoke", action="store_true",
                   help="run the elastic grow/shrink scenario, assert "
                        "incremental failover beats full resync and the "
                        "checkpoint-latency SLO held, and exit")
    p.add_argument("--qos-smoke", action="store_true",
                   help="run the pinned multi-tenant QoS scenario, "
                        "assert the guaranteed tenant holds its "
                        "interval/RPO SLOs while best-effort tenants "
                        "are throttled, and exit")
    p.add_argument("--trace", default=None, metavar="OUT.JSONL",
                   help="stream the serial reference run's structured "
                        "trace (policy decisions, copies, commits) as "
                        "JSON lines to this path")
    args = p.parse_args(argv)
    # honour the host: 'auto' and over-requests both land on the CPU
    # count (the old `max(workers, 4)` floor oversubscribed 1-CPU CI)
    workers = resolve_workers(args.workers)
    if args.smoke:
        return run_smoke(workers)
    if args.replay_smoke:
        return run_replay_smoke()
    if args.scale_smoke:
        return run_scale_smoke()
    if args.dedup_smoke:
        return run_dedup_smoke()
    if args.elastic_smoke:
        return run_elastic_smoke()
    if args.qos_smoke:
        return run_qos_smoke()

    t0 = time.perf_counter()
    record = run_benchmark(workers, cache_dir=args.cache_dir, trace_path=args.trace)
    record["total_wall_s"] = round(time.perf_counter() - t0, 3)
    payload = json.dumps(record, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(
            f"wrote {args.out}: {record['grid']['cells']} cells, "
            f"serial {record['serial']['wall_s']}s, "
            f"engine speedup {record['speedup']}x "
            f"(parallel {record['parallel_cold']['speedup_vs_serial']}x, "
            f"cached {record['cached_rerun']['speedup_vs_serial']}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
