"""Experiment driver CLI — a thin wrapper over :mod:`repro.exec.cell`.

Run one checkpointing experiment on the simulated testbed and print a
summary (optionally machine-readable JSON)::

    python -m repro.tools.experiment --app lammps --mode dcpcp \
        --nodes 4 --ranks-per-node 12 --iterations 6 \
        --nvm-gbps 1.0 --local-interval 40 --remote-interval 120

    python -m repro.tools.experiment --app gtc --mode none --no-remote \
        --json results.json

    python -m repro.tools.experiment --app synthetic --chunk-mb 25 \
        --checkpoint-mb 300 --hot-fraction 0.5 --mtbf-local 600 \
        --mtbf-remote 2400 --timeline

Every run is deterministic for a given ``--seed``.  The option surface,
config resolution and cell execution all live in
:mod:`repro.exec.cell` (re-exported here for compatibility); this
module owns only the human-facing output.
"""

from __future__ import annotations

import json
import sys

from ..exec.cell import (  # noqa: F401  (public compatibility re-exports)
    APPS,
    NON_SEMANTIC_OPTIONS,
    build_parser,
    resolve_config,
    result_to_dict,
    run_cell,
    run_experiment,
)

__all__ = [
    "build_parser",
    "resolve_config",
    "run_cell",
    "run_experiment",
    "result_to_dict",
    "main",
]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    result = run_experiment(args)
    summary = result_to_dict(result)

    print(f"{summary['app']} x{summary['n_ranks']} ranks, policy={summary['policy']}"
          f"{'' if summary['remote_precopy'] else ' (no remote pre-copy)'}")
    print(f"  execution time   : {summary['total_time_s']:.1f} s "
          f"(ideal {summary['ideal_time_s']:.0f} s, "
          f"overhead {summary['overhead_fraction']*100:.1f}%)")
    loc = summary["local"]
    print(f"  local            : {loc['checkpoints']} ckpts, avg blocking "
          f"{loc['avg_blocking_s']:.2f} s, {loc['coordinated_gb']:.1f} GB coordinated"
          f" + {loc['precopy_gb']:.1f} GB pre-copied")
    rem = summary["remote"]
    if rem["rounds"]:
        print(f"  remote           : {rem['rounds']} rounds, {rem['round_gb']:.1f} GB "
              f"at rounds + {rem['stream_gb']:.1f} GB streamed, helper "
              f"{rem['helper_utilization']*100:.1f}%")
    fail = summary["failures"]
    if fail["soft"] or fail["hard"]:
        print(f"  failures         : {fail['soft']} soft, {fail['hard']} hard, "
              f"{fail['recovery_s']:.1f} s recovering, "
              f"{fail['iterations_recomputed']} iterations recomputed")
    if args.timeline:
        actors = ["r0"]
        helpers = ["n0:helper"] if rem["rounds"] else []
        print("\n" + result.timeline.ascii_art(width=100, actors=actors + helpers))
    if args.json:
        payload = json.dumps(summary, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"  wrote JSON       : {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
