"""Multi-tenant QoS scenario driver: ``python -m repro.tools.qos``.

Runs the pinned checkpoint-as-a-service scenario from
:mod:`repro.tenancy` — three tenants sized from the paper's workload
models sharing one NVM device through per-tenant partitions, a
weighted-fair bandwidth bus and an admission controller — and distills
it into the ``qos`` block of ``BENCH_baseline.json``:

* per-tenant SLO attainment (checkpoint-interval and RPO), throttle
  time, admission/queue/reject counts and preemptions;
* a ``tenant.*`` trace-event census proving the admission and
  preemption decisions are observable on the bus, not just counted;
* a small tenant-labelled cluster run proving checkpoint traffic is
  attributable end-to-end (every rank's ``chunk.copied``/``commit``
  carries its tenant, and :class:`~repro.cluster.runner.RunResult`
  meters bytes per tenant);
* the acceptance booleans the CI smoke gates on: the guaranteed
  tenant meets its targets *under contention* (best-effort tenants
  demonstrably throttled, queueing and preemption both exercised)
  and the whole scenario is a pure function of its seed.

``--smoke`` runs the same block and exits nonzero when any acceptance
bound fails; ``repro.tools.bench --qos-smoke`` is the same entry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Set

from ..apps import SyntheticModel
from ..baselines import precopy_config
from ..cluster import Cluster, ClusterRunner
from ..config import ClusterConfig
from ..metrics.trace import BUS, CounterSink
from ..tenancy import run_scenario
from ..units import GB_per_sec

__all__ = [
    "ATTAINMENT_TARGET",
    "run_attribution_check",
    "run_qos_block",
    "run_qos_smoke",
    "main",
]

#: minimum per-SLO attainment the guaranteed tenant must hold on the
#: pinned scenario (1.0 is what it actually achieves; the target leaves
#: headroom for future profile retuning without moving the goalposts)
ATTAINMENT_TARGET = 0.95

#: pinned scenario coordinates
QOS_SEED = 7
QOS_DURATION = 600.0


def _scenario_with_census(seed: int, duration: float):
    """One scenario run with a trace census attached; returns
    ``(report, tenant.* event counts)``."""
    counter = CounterSink()
    BUS.attach(counter)
    try:
        report = run_scenario(seed=seed, duration=duration)
    finally:
        BUS.detach(counter)
    tenant_events = {
        kind: n
        for kind, n in sorted(counter.by_kind.items())
        if kind.startswith("tenant.")
    }
    return report, tenant_events


def run_attribution_check(seed: int = 11) -> dict:
    """Small tenant-labelled cluster run: two tenants on a 2-node
    testbed, every checkpoint event must carry its tenant label and
    the run result must meter bytes per tenant."""
    app = SyntheticModel(
        checkpoint_mb_per_rank=20,
        chunk_mb=5,
        iteration_compute_time=10.0,
        comm_mb_per_iteration=5,
    )
    cluster = Cluster(
        ClusterConfig(nodes=2, racks=1),
        nvm_write_bandwidth=GB_per_sec(2.0),
        seed=seed,
    )
    labelled: List[str] = []
    unlabelled = [0]

    def _observe(event) -> None:
        tenant = getattr(event, "tenant", "")
        if tenant:
            labelled.append(tenant)
        else:
            unlabelled[0] += 1

    sub = BUS.subscribe(_observe, kinds=["chunk.copied", "commit"])
    try:
        cluster.build(
            app,
            precopy_config(10, 30),
            ranks_per_node=2,
            tenancy={"r0": "prod", "r1": "prod", "r2": "batch", "r3": "batch"},
        )
        res = ClusterRunner(cluster).run(6)
    finally:
        BUS.unsubscribe(sub)
    tenants = res.to_dict().get("tenants", {})
    return {
        "tenants": tenants,
        "events_labelled": len(labelled),
        "events_unlabelled": unlabelled[0],
        "all_attributed": unlabelled[0] == 0
        and len(labelled) > 0
        and set(labelled) == {"prod", "batch"}
        and set(tenants) == {"prod", "batch"}
        and all(m["checkpoints"] > 0 for m in tenants.values()),
    }


def run_qos_block(seed: int = QOS_SEED, duration: float = QOS_DURATION) -> dict:
    """The ``qos`` block of the bench baseline."""
    t0 = time.perf_counter()
    report, tenant_events = _scenario_with_census(seed, duration)
    report2, tenant_events2 = _scenario_with_census(seed, duration)
    deterministic = report == report2 and tenant_events == tenant_events2

    tenants: Dict[str, dict] = report["tenants"]  # type: ignore[assignment]
    guaranteed = {n: t for n, t in tenants.items() if t["guaranteed"]}
    best_effort = {n: t for n, t in tenants.items() if not t["guaranteed"]}
    totals: Dict[str, int] = report["totals"]  # type: ignore[assignment]

    guaranteed_slo_met = bool(guaranteed) and all(
        t["interval_attainment"] >= ATTAINMENT_TARGET
        and t["rpo_attainment"] >= ATTAINMENT_TARGET
        for t in guaranteed.values()
    )
    best_effort_throttled = bool(best_effort) and all(
        t["throttle_time_s"] > 0.0 for t in best_effort.values()
    )
    attribution = run_attribution_check()
    wall = time.perf_counter() - t0
    return {
        "scenario": report,
        "tenant_events": tenant_events,
        "attribution": attribution,
        # the tentpole's acceptance bounds
        "attainment_target": ATTAINMENT_TARGET,
        "guaranteed_slo_met": guaranteed_slo_met,
        "best_effort_throttled": best_effort_throttled,
        "queueing_exercised": totals["queued"] > 0,
        "preemption_exercised": totals["preemptions"] > 0,
        "deterministic": deterministic,
        "wall_s": round(wall, 4),
    }


def run_qos_smoke(seed: int = QOS_SEED) -> int:
    """CI-sized acceptance check: on the pinned scenario the
    guaranteed tenant must hold both SLOs while every best-effort
    tenant is throttled, queueing and preemption must both have been
    exercised (and be visible as ``tenant.*`` trace events), tenant
    attribution must hold end-to-end through the cluster path, and
    the whole block must be deterministic."""
    block = run_qos_block(seed=seed)
    events: Dict[str, int] = block["tenant_events"]
    ok = (
        block["guaranteed_slo_met"]
        and block["best_effort_throttled"]
        and block["queueing_exercised"]
        and block["preemption_exercised"]
        and block["deterministic"]
        and block["attribution"]["all_attributed"]
        and events.get("tenant.admission", 0) > 0
        and events.get("tenant.preempt", 0) > 0
        and events.get("tenant.throttle", 0) > 0
        and events.get("tenant.slo", 0) > 0
    )
    tenants: Dict[str, dict] = block["scenario"]["tenants"]
    g = next(t for t in tenants.values() if t["guaranteed"])
    throttled = sum(
        t["throttle_time_s"] for t in tenants.values() if not t["guaranteed"]
    )
    totals = block["scenario"]["totals"]
    print(
        f"qos smoke: guaranteed interval/rpo attainment "
        f"{g['interval_attainment']:.2f}/{g['rpo_attainment']:.2f} "
        f"(target {block['attainment_target']:.2f}), best-effort "
        f"throttled {throttled:.1f}s across {totals['throttle_spans']} "
        f"spans, {totals['queued']} queued / {totals['preemptions']} "
        f"preempted / {totals['rejected']} rejected of "
        f"{totals['jobs_submitted']} jobs, "
        f"attribution={'OK' if block['attribution']['all_attributed'] else 'FAIL'}, "
        f"deterministic={block['deterministic']}, "
        f"{block['wall_s']:.1f}s -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.tools.qos",
        description="Multi-tenant checkpoint QoS scenario driver.",
    )
    p.add_argument("--out", default="-", help="JSON output path ('-' for stdout)")
    p.add_argument("--seed", type=int, default=QOS_SEED)
    p.add_argument("--smoke", action="store_true",
                   help="run the acceptance checks and exit 0/1")
    args = p.parse_args(argv)
    if args.smoke:
        return run_qos_smoke(seed=args.seed)
    block = run_qos_block(seed=args.seed)
    payload = json.dumps(block, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
