"""Stdlib lint gate: ban new imports of deprecated checkpointer shims.

The policy/destination/engine refactor left the historical entry points
in place as deprecation shims so downstream code keeps working — but
*new* library code must target the unified pipeline.  This checker
walks the AST of every non-test module under ``src/`` and fails on:

* ``make_pfs_transfer`` (use
  :class:`repro.core.destination.PfsDestination`);
* importing ``CheckpointStats`` from ``repro.core.local`` (it lives in
  :mod:`repro.core.engine`; the ``local`` re-export exists only for
  old callers);
* any mention of ``checkpoint_sync`` — the shim was removed in 1.1.0,
  and *defining* a method of that name is banned too, so the alias
  cannot quietly come back (use ``checkpoint()`` /
  ``checkpoint(blocking=False)``).

Runs on the plain stdlib so ``make lint`` works in environments without
ruff; CI layers ruff on top.  Usage::

    python -m repro.tools.lintcheck [paths...]

Exits non-zero listing every violation.  Tests are exempt (they cover
the shims' deprecation behaviour); the defining modules themselves are
exempt for their own names.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

__all__ = ["check_file", "check_tree", "main"]

#: deprecated names whose *import or call* is banned in non-test modules
BANNED_NAMES = {
    "make_pfs_transfer": "build a repro.core.destination.PfsDestination instead",
    "checkpoint_sync": "use checkpoint() / checkpoint(blocking=False)",
}

#: (module suffix, name): importing this name from this module is banned
BANNED_FROM = {
    ("repro.core.local", "CheckpointStats"): "import it from repro.core.engine",
    ("core.local", "CheckpointStats"): "import it from repro.core.engine",
    (".local", "CheckpointStats"): "import it from .engine",
}

#: files allowed to mention a banned name (they define/re-export it).
#: ``checkpoint_sync`` has no entry on purpose: the shim is deleted, so
#: *no* module may define or reference it.
DEFINING_MODULES = {
    "make_pfs_transfer": ("baselines/pfs.py", "baselines/__init__.py"),
    "CheckpointStats": ("core/local.py",),
}


Violation = Tuple[str, int, str]


def _is_exempt(path: str, name: str) -> bool:
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(suffix) for suffix in DEFINING_MODULES.get(name, ()))


def check_file(path: str) -> List[Violation]:
    """All banned-shim uses in one python file."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # a syntax error is its own violation
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    out: List[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                hint = BANNED_FROM.get((node.module, alias.name))
                if hint is None and node.level:  # relative import
                    hint = BANNED_FROM.get((f"{'.' * node.level}{node.module}", alias.name))
                if hint is not None and not _is_exempt(path, alias.name):
                    out.append(
                        (path, node.lineno,
                         f"deprecated import: from {node.module} import {alias.name} — {hint}")
                    )
                if alias.name in BANNED_NAMES and not _is_exempt(path, alias.name):
                    out.append(
                        (path, node.lineno,
                         f"deprecated import: {alias.name} — {BANNED_NAMES[alias.name]}")
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in BANNED_NAMES:
            if not _is_exempt(path, node.name):
                out.append(
                    (path, node.lineno,
                     f"banned definition: def {node.name} — {BANNED_NAMES[node.name]}")
                )
        elif isinstance(node, ast.Attribute) and node.attr in BANNED_NAMES:
            if not _is_exempt(path, node.attr):
                out.append(
                    (path, node.lineno,
                     f"deprecated use: .{node.attr} — {BANNED_NAMES[node.attr]}")
                )
        elif isinstance(node, ast.Name) and node.id in BANNED_NAMES:
            if not _is_exempt(path, node.id):
                out.append(
                    (path, node.lineno,
                     f"deprecated use: {node.id} — {BANNED_NAMES[node.id]}")
                )
    return out


def _python_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                yield os.path.join(dirpath, fn)


def check_tree(root: str) -> List[Violation]:
    out: List[Violation] = []
    for path in _python_files(root):
        out.extend(check_file(path))
    return out


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or ["src"]
    violations: List[Violation] = []
    for p in paths:
        if os.path.isdir(p):
            violations.extend(check_tree(p))
        else:
            violations.extend(check_file(p))
    for path, line, msg in violations:
        print(f"{path}:{line}: {msg}")
    if violations:
        print(f"lintcheck: {len(violations)} violation(s)")
        return 1
    print("lintcheck: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
