"""Elastic grow/shrink-under-load scenario: ``python -m repro.tools.elastic``.

One deterministic story, told three times over the same application
(half the footprint is write-once, so most committed chunks never
re-commit — the raw material of incremental failover):

* **clean** — no failures, no membership changes; calibrates the
  per-interval coordinated-checkpoint latency the cluster achieves
  undisturbed.
* **full-resync baseline** — two hard failures, no elasticity.  The
  early one (node 2) orphans node 1, which re-pairs and re-sends its
  full footprint; the late one kills node 1's *new* buddy and the
  classic failover path re-sends a full footprint again.  Its worst
  coordinated latency also calibrates the elastic arm's SLO: failures
  alone may spike checkpoints, and the SLO bound must separate
  migration pressure from failure noise.
* **elastic** — the same early failure, then a spare *joins* the buddy
  pool (the planner offloads the overloaded survivor onto it in
  bounded batches, interleaved with the live pre-copy stream and
  throttled against the SLO), the replaced node *drains* and departs,
  and finally the newcomer dies hard: the orphan fails over *back* to
  its pre-migration buddy, whose copies are still current for every
  chunk that did not re-commit — the re-sync sends only the delta.

The record compares total failover re-sync bytes: the elastic arm
(one full early re-sync + one incremental late one) must land strictly
below the baseline (two full re-syncs), and the elastic arm must hold
every coordinated checkpoint within the SLO while migrating.
``repro.tools.bench`` embeds this record as the ``elastic`` block;
``--smoke`` runs the same scenario and exits nonzero when either
acceptance bound fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import List, Optional

from ..apps import SyntheticModel
from ..baselines import precopy_config
from ..cluster import Cluster, ClusterRunner, FailureEvent, ScriptedInjector
from ..cluster.membership import MembershipEvent
from ..config import ClusterConfig, MigrationConfig
from ..units import GB_per_sec, to_GB

__all__ = [
    "build_elastic_cluster",
    "run_clean",
    "run_elastic",
    "run_full_resync_baseline",
    "run_elastic_block",
    "main",
]

#: scenario schedule (seconds of virtual time).  The early failure of
#: node 2 re-pairs its orphan (node 1) onto node 0, overloading it —
#: the imbalance the join rebalances away.
EARLY_FAIL_AT = 35.0
JOIN_AT = 60.0
DRAIN_AT = 95.0
LATE_FAIL_AT = 140.0
ITERATIONS = 16

#: slack over the calibration runs' worst coordinated latency
SLO_HEADROOM = 1.15


def scenario_app() -> SyntheticModel:
    return SyntheticModel(
        checkpoint_mb_per_rank=20,
        chunk_mb=5,
        iteration_compute_time=10.0,
        comm_mb_per_iteration=5,
        write_once_fraction=0.5,
    )


def build_elastic_cluster(
    *,
    seed: int = 11,
    migration: Optional[MigrationConfig] = None,
) -> Cluster:
    """6-node/2-rack testbed with 4 nodes computing and 2 spares: the
    spares have NVM and fabric connectivity but no ranks — the join
    candidates."""
    cluster = Cluster(
        ClusterConfig(nodes=6, racks=2),
        nvm_write_bandwidth=GB_per_sec(2.0),
        seed=seed,
    )
    cfg = precopy_config(10, 30)
    if migration is not None:
        cfg = replace(cfg, resilience=replace(cfg.resilience, migration=migration))
    cluster.build(scenario_app(), cfg, ranks_per_node=2, n_nodes_used=4)
    return cluster


def run_clean(seed: int = 11):
    """Undisturbed run; returns (result, worst coordinated latency)."""
    cluster = build_elastic_cluster(seed=seed)
    res = ClusterRunner(cluster).run(ITERATIONS)
    return res, _worst_latency(cluster)


def _worst_latency(cluster: Cluster) -> float:
    return max(
        (
            s.duration
            for state in cluster.all_ranks()
            for s in state.checkpointer.history
        ),
        default=0.0,
    )


def run_elastic(slo: float, seed: int = 11):
    """Early failure + join + drain + newcomer hard-death, migration on.

    On this ring pairing (0->1->2->3->0) the early death of node 2
    re-pairs node 1 onto node 0 (full re-sync #1) and leaves node 0
    hosting two sources.  The join of spare node 4 offloads node 1's
    copies onto it live; the replaced node 2 then drains out of the
    buddy pool and departs.  When node 4 dies, node 1 fails over *back*
    to node 0 — incrementally, because node 0 still holds every chunk
    that did not re-commit since the migration cutover."""
    migration = MigrationConfig(
        enabled=True,
        batch_bytes=8 * 1024 * 1024,
        slo_checkpoint_latency=slo,
    )
    cluster = build_elastic_cluster(seed=seed, migration=migration)
    runner = ClusterRunner(
        cluster,
        injector=ScriptedInjector(
            [
                FailureEvent(time=EARLY_FAIL_AT, node=2, kind="hard"),
                FailureEvent(time=LATE_FAIL_AT, node=4, kind="hard"),
            ]
        ),
        membership=[
            MembershipEvent(time=JOIN_AT, node=4, action="join"),
            MembershipEvent(time=DRAIN_AT, node=2, action="drain"),
        ],
    )
    return cluster, runner, runner.run(ITERATIONS)


def run_full_resync_baseline(seed: int = 11):
    """The same early failure with no elasticity, then node 1's (new)
    buddy dies late: both failovers re-send a full footprint."""
    cluster = build_elastic_cluster(seed=seed)
    runner = ClusterRunner(
        cluster,
        injector=ScriptedInjector(
            [
                FailureEvent(time=EARLY_FAIL_AT, node=2, kind="hard"),
                FailureEvent(time=LATE_FAIL_AT, node=1, kind="hard"),
            ]
        ),
    )
    return cluster, runner, runner.run(ITERATIONS)


def run_elastic_block(seed: int = 11) -> dict:
    """The ``elastic`` block of the bench baseline."""
    t0 = time.perf_counter()
    clean_res, clean_worst = run_clean(seed=seed)
    b_cluster, b_runner, b_res = run_full_resync_baseline(seed=seed)
    slo = SLO_HEADROOM * max(clean_worst, _worst_latency(b_cluster))
    _, e_runner, e_res = run_elastic(slo, seed=seed)
    wall = time.perf_counter() - t0
    ctrl = e_runner.membership_controller
    guard = e_runner.slo_guard
    return {
        "iterations": ITERATIONS,
        "slo_checkpoint_latency_s": round(slo, 6),
        "clean_max_ckpt_latency_s": round(clean_worst, 6),
        "elastic": {
            "total_time_s": round(e_res.total_time, 4),
            "joins": e_res.membership_joins,
            "drains": e_res.membership_drains,
            "departs": e_res.membership_departs,
            "migrations_completed": e_res.migrations_completed,
            "migrations_aborted": e_res.migrations_aborted,
            "migration_batches": e_res.migration_batches,
            "migration_gb": to_GB(e_res.migration_bytes),
            "slo_pauses": e_res.migration_slo_pauses,
            "throttled_batches": e_res.migration_throttled_batches,
            "max_ckpt_latency_s": round(e_res.migration_max_ckpt_latency, 6),
            "within_slo": guard.within_slo if guard is not None else False,
            "failover_resync_gb": to_GB(e_res.resync_bytes),
        },
        "baseline": {
            "total_time_s": round(b_res.total_time, 4),
            "failover_resync_gb": to_GB(b_res.resync_bytes),
        },
        # the tentpole's acceptance bounds
        "incremental_failover": 0 < e_res.resync_bytes < b_res.resync_bytes,
        "slo_held": guard.within_slo if guard is not None else False,
        "moves_failed": ctrl.moves_failed if ctrl is not None else -1,
        "wall_s": round(wall, 4),
    }


def run_elastic_smoke(seed: int = 11) -> int:
    """CI-sized acceptance check: the elastic arm must keep every
    coordinated checkpoint within the SLO while migrating, and its
    failovers must re-send strictly fewer bytes than the full-resync
    baseline's."""
    block = run_elastic_block(seed=seed)
    ok = (
        block["incremental_failover"]
        and block["slo_held"]
        and block["elastic"]["migrations_completed"] >= 1
        and block["elastic"]["departs"] >= 1
        and block["moves_failed"] == 0
    )
    print(
        f"elastic smoke: failover resync "
        f"{block['elastic']['failover_resync_gb']:.4f} GB vs full "
        f"{block['baseline']['failover_resync_gb']:.4f} GB, "
        f"max ckpt latency {block['elastic']['max_ckpt_latency_s']:.3f}s "
        f"vs SLO {block['slo_checkpoint_latency_s']:.3f}s, "
        f"{block['elastic']['migrations_completed']} migration(s) in "
        f"{block['elastic']['migration_batches']} batches, "
        f"{block['wall_s']:.1f}s -> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.tools.elastic",
        description="Elastic grow/shrink-under-load scenario driver.",
    )
    p.add_argument("--out", default="-", help="JSON output path ('-' for stdout)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--smoke", action="store_true",
                   help="run the acceptance checks and exit 0/1")
    args = p.parse_args(argv)
    if args.smoke:
        return run_elastic_smoke(seed=args.seed)
    block = run_elastic_block(seed=args.seed)
    payload = json.dumps(block, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
