"""Parameter-sweep CLI — a thin wrapper over :func:`repro.exec.run_grid`.

Example — Fig. 7 as a CSV, sharded over 4 workers with a warm cache::

    python -m repro.tools.sweep --app lammps --sweep nvm-gbps=0.5,1.0,2.0 \
        --sweep mode=none,dcpcp --iterations 6 --workers 4 \
        --cache-dir .repro-cache --out fig7.csv

Any scalar option of ``repro.tools.experiment`` can be swept; the
cross product of all ``--sweep`` axes runs on the
:mod:`repro.exec` engine — parallel execution is byte-identical to
serial, a populated ``--cache-dir`` re-executes only changed cells —
and one CSV row is written per cell.  Grid expansion, dispatch, and
CSV field selection all live in :mod:`repro.exec.grid` (re-exported
here for compatibility); this module owns only argument parsing and
the replay-mode sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Tuple

from ..errors import ConfigError
from ..exec.grid import (  # noqa: F401  (public compatibility re-exports)
    CSV_FIELDS,
    GridReport,
    GridSpec,
    collect_fields,
    parse_sweeps,
    run_grid,
    write_csv,
)

__all__ = [
    "parse_sweeps",
    "run_sweep",
    "run_replay_sweep",
    "collect_fields",
    "write_csv",
    "main",
]


def run_sweep(
    base_args: List[str],
    axes: List[Tuple[str, List[str]]],
    *,
    workers: int | str | None = 1,
    cache=None,
    derive_seeds: bool = True,
) -> List[dict]:
    """Run the cross product; returns one flat record per cell."""
    return run_grid(
        base_args, axes, workers=workers, cache=cache, derive_seeds=derive_seeds
    ).records


#: replay-mode sweep axes -> ReplayEngine.replay keyword arguments.
#: Anything else needs a live simulation, so it is rejected loudly.
REPLAY_AXES = {
    "mode": ("mode", str),
    "copy-granularity": ("copy_granularity", str),
    "nvm-gbps": ("nvm_gbps", float),
    "threshold-margin": ("threshold_margin", float),
    "codec": ("codec", str),
    "codec-novelty": ("codec_novelty", float),
}


def run_replay_sweep(
    trace: str, axes: List[Tuple[str, List[str]]]
) -> List[dict]:
    """Sweep the cross product of *axes* over one captured trace.

    No simulation runs: each cell is a trace-driven replay
    (:class:`~repro.replay.ReplayEngine`), so a policy/bandwidth grid
    that takes minutes live takes milliseconds here.  Only the axes in
    :data:`REPLAY_AXES` are replayable — anything that changes the
    *workload* (app, scale, intervals) needs a fresh capture."""
    import itertools

    from ..replay import ReplayEngine

    for name, _ in axes:
        if name not in REPLAY_AXES:
            raise ConfigError(
                f"axis {name!r} cannot be replayed from a trace; replayable "
                f"axes: {', '.join(sorted(REPLAY_AXES))} (run a live sweep "
                "for workload-shaping options)"
            )
    engine = ReplayEngine.from_jsonl(trace)
    records: List[dict] = []
    names = [name for name, _ in axes]
    for combo in itertools.product(*(values for _, values in axes)):
        kwargs = {}
        for name, raw in zip(names, combo):
            key, cast = REPLAY_AXES[name]
            kwargs[key] = cast(raw)
        record = engine.replay(**kwargs)
        for name, raw in zip(names, combo):
            record[f"sweep.{name}"] = raw
        records.append(record)
    return records


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.tools.sweep",
        description="Run a grid of NVM-checkpoints experiments; emit CSV.",
    )
    p.add_argument("--sweep", action="append", default=[], metavar="NAME=V1,V2",
                   help="axis to sweep (repeatable; cross product)")
    p.add_argument("--replay", default=None, metavar="TRACE.jsonl",
                   help="replay a captured trace instead of simulating: "
                        "sweep mode/copy-granularity/nvm-gbps/"
                        "threshold-margin/codec/codec-novelty over it "
                        "without re-running the app")
    p.add_argument("--out", default="-", help="CSV path ('-' for stdout)")
    p.add_argument("--workers", default="1", metavar="N",
                   help="parallel worker processes ('auto' = one per CPU; "
                        "clamped to the host CPU count)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache; reruns execute "
                        "only changed cells")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="stream every executed cell's trace events to PATH "
                        "as one versioned Jsonl file")
    p.add_argument("--no-cell-seeds", action="store_true",
                   help="do not derive per-cell RNG seeds; every cell "
                        "uses the base --seed verbatim")
    args, passthrough = p.parse_known_args(argv)
    if not args.sweep:
        p.error("at least one --sweep axis is required")
    axes = parse_sweeps(args.sweep)
    report: GridReport | None = None
    if args.replay:
        records = run_replay_sweep(args.replay, axes)
    else:
        report = run_grid(
            passthrough,
            axes,
            workers=args.workers,
            cache=args.cache_dir,
            trace=args.trace,
            derive_seeds=not args.no_cell_seeds,
        )
        records = report.records

    out = sys.stdout if args.out == "-" else open(args.out, "w", newline="", encoding="utf-8")
    try:
        write_csv(records, axes, out)
    finally:
        if out is not sys.stdout:
            out.close()
            if report is not None:
                ex = report.execution
                print(
                    f"wrote {len(records)} rows to {args.out} "
                    f"({ex.cells_executed} executed, {ex.cache_hits} cached, "
                    f"{ex.workers} worker{'s' if ex.workers != 1 else ''})"
                )
            else:
                print(
                    f"wrote {len(records)} replay rows to {args.out} "
                    f"(trace {args.replay}, no simulation)"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
