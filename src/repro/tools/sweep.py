"""Parameter-sweep CLI: run a grid of experiments, emit CSV.

Example — Fig. 7 as a CSV::

    python -m repro.tools.sweep --app lammps --sweep nvm-gbps=0.5,1.0,2.0 \
        --sweep mode=none,dcpcp --iterations 6 --out fig7.csv

Any scalar option of ``repro.tools.experiment`` can be swept; the
cross product of all ``--sweep`` axes runs deterministically and one
CSV row is written per cell.
"""

from __future__ import annotations

import argparse
import csv
import itertools
import sys
from typing import Dict, List, Sequence, Tuple

from .experiment import build_parser as build_experiment_parser
from .experiment import result_to_dict, run_experiment

__all__ = ["parse_sweeps", "run_sweep", "main"]

#: flat CSV columns pulled from result_to_dict
CSV_FIELDS = [
    "app", "policy", "remote_precopy", "n_nodes", "n_ranks", "iterations",
    "total_time_s", "ideal_time_s", "overhead_fraction",
    "local.checkpoints", "local.avg_blocking_s", "local.coordinated_gb",
    "local.precopy_gb", "local.fault_time_s",
    "remote.rounds", "remote.round_gb", "remote.stream_gb",
    "remote.helper_utilization",
    "fabric.ckpt_peak_1s_mb", "fabric.app_gb", "fabric.ckpt_gb",
    "failures.soft", "failures.hard", "failures.recovery_s",
]


def _flatten(d: dict, prefix: str = "") -> dict:
    out = {}
    for key, value in d.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{name}."))
        else:
            out[name] = value
    return out


def parse_sweeps(specs: Sequence[str]) -> List[Tuple[str, List[str]]]:
    """``["nvm-gbps=0.5,1.0", "mode=none,dcpcp"]`` -> axis list."""
    axes: List[Tuple[str, List[str]]] = []
    for spec in specs:
        if "=" not in spec:
            raise ValueError(f"sweep spec {spec!r} must look like name=v1,v2")
        name, _, values = spec.partition("=")
        vals = [v for v in values.split(",") if v]
        if not vals:
            raise ValueError(f"sweep spec {spec!r} has no values")
        axes.append((name.strip(), vals))
    return axes


def run_sweep(base_args: List[str], axes: List[Tuple[str, List[str]]]) -> List[dict]:
    """Run the cross product; returns one flat record per cell."""
    parser = build_experiment_parser()
    records: List[dict] = []
    names = [name for name, _ in axes]
    for combo in itertools.product(*(vals for _, vals in axes)):
        argv = list(base_args)
        for name, value in zip(names, combo):
            argv += [f"--{name}", value]
        args = parser.parse_args(argv)
        result = run_experiment(args)
        record = _flatten(result_to_dict(result))
        for name, value in zip(names, combo):
            record[f"sweep.{name}"] = value
        records.append(record)
    return records


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.tools.sweep",
        description="Run a grid of NVM-checkpoints experiments; emit CSV.",
    )
    p.add_argument("--sweep", action="append", default=[], metavar="NAME=V1,V2",
                   help="axis to sweep (repeatable; cross product)")
    p.add_argument("--out", default="-", help="CSV path ('-' for stdout)")
    args, passthrough = p.parse_known_args(argv)
    if not args.sweep:
        p.error("at least one --sweep axis is required")
    axes = parse_sweeps(args.sweep)
    records = run_sweep(passthrough, axes)

    sweep_cols = [f"sweep.{name}" for name, _ in axes]
    fields = sweep_cols + [f for f in CSV_FIELDS if records and f in records[0]]
    out = sys.stdout if args.out == "-" else open(args.out, "w", newline="", encoding="utf-8")
    try:
        writer = csv.DictWriter(out, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    finally:
        if out is not sys.stdout:
            out.close()
            print(f"wrote {len(records)} rows to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
