"""The synthetic multi-tenant scenario driver ("millions of users").

Co-locates several checkpointing tenants on one NVM device and drives
them with the traffic shape consolidated checkpoint services actually
see:

* **bursty Poisson arrivals** — exponential inter-arrival times per
  tenant, with a probabilistic burst multiplier (a correlated wave of
  checkpoint requests, e.g. a job array hitting its interval together);
* **heavy-tailed job sizes** — bounded Pareto around each tenant's
  base checkpoint footprint, which comes from the :mod:`repro.apps`
  workload models (GTC / LAMMPS / CM1 per-rank checkpoint bytes), so
  tenant mixes are the paper's applications, not arbitrary constants;
* per-tenant ``tenant.*`` trace events from the admission controller
  and the QoS bus.

Everything is seeded through :class:`~repro.sim.rng.RngStreams` named
streams, so a scenario is a pure function of its seed — the bench
``qos`` block runs it twice and pins equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..apps import CM1Model, GTCModel, LammpsModel
from ..config import PCM_CONFIG, BandwidthModelConfig
from ..memory.bandwidth import CoreContentionModel
from ..sim.engine import Engine
from ..sim.rng import RngStreams
from ..units import MB
from .admission import AdmissionController, TenantSpec
from .partition import NvmPartition, WeightedFairBus

__all__ = ["TenantProfile", "DEFAULT_PROFILES", "run_scenario"]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's contract plus its synthetic arrival process."""

    spec: TenantSpec
    #: mean seconds between checkpoint-job arrivals (Poisson)
    mean_interarrival: float
    #: fixed-cadence arrivals instead of Poisson — production tenants
    #: checkpoint on their interval, they don't arrive at random
    periodic: bool = False
    #: probability an arrival is a burst, and the burst's job count
    burst_prob: float = 0.0
    burst_size: int = 1
    #: base job size (bytes) — by convention an apps-model rank
    #: footprint; heavy-tailed scaling applies on top
    base_bytes: int = MB(256)
    #: bounded-Pareto tail: sizes scale by ``u^(-1/alpha)`` capped at
    #: ``tail_cap`` multiples of the base (smaller alpha = heavier tail)
    tail_alpha: float = 2.5
    tail_cap: float = 4.0


def _default_profiles() -> Tuple[TenantProfile, ...]:
    """The pinned three-tenant mix: one guaranteed production tenant
    and two best-effort tenants contending hard for the same device.

    Base job sizes come straight from the paper's workload models —
    a tenant is "a GTC allocation checkpointing through the service",
    not an abstract byte count.  Each job is a node's worth of ranks
    checkpointing together, so the device is genuinely contended."""
    gtc = 8 * int(GTCModel().checkpoint_bytes(0))  # 8 ranks x ~670 MB
    lammps = 6 * int(LammpsModel().checkpoint_bytes(0))  # 6 ranks x ~410 MB
    cm1 = 4 * int(CM1Model().checkpoint_bytes(0))  # 4 ranks x ~954 MB
    return (
        TenantProfile(
            spec=TenantSpec(
                name="gtc-prod",
                share=4.0,
                capacity_bytes=4 * gtc,
                interval=30.0,
                rpo=120.0,
                guaranteed=True,
            ),
            mean_interarrival=24.0,
            periodic=True,
            base_bytes=gtc,
            tail_alpha=4.0,
            tail_cap=1.2,
        ),
        TenantProfile(
            spec=TenantSpec(
                name="lammps-batch",
                share=1.0,
                capacity_bytes=8 * lammps,
                interval=45.0,
                rpo=240.0,
                guaranteed=False,
            ),
            mean_interarrival=8.0,
            burst_prob=0.35,
            burst_size=4,
            base_bytes=lammps,
            tail_alpha=2.2,
            tail_cap=2.5,
        ),
        TenantProfile(
            spec=TenantSpec(
                name="cm1-scavenger",
                share=0.5,
                capacity_bytes=6 * cm1,
                interval=60.0,
                rpo=600.0,
                guaranteed=False,
            ),
            mean_interarrival=12.0,
            burst_prob=0.25,
            burst_size=3,
            base_bytes=cm1,
            tail_alpha=1.8,
            tail_cap=3.0,
        ),
    )


DEFAULT_PROFILES: Tuple[TenantProfile, ...] = _default_profiles()


def _job_size(rng: RngStreams, stream: str, profile: TenantProfile) -> int:
    """Bounded-Pareto job size around the profile's base footprint."""
    u = float(rng.stream(stream).random())
    scale = min(profile.tail_cap, (1.0 - u) ** (-1.0 / profile.tail_alpha))
    return max(1, int(profile.base_bytes * scale))


def _arrivals(
    engine: Engine,
    rng: RngStreams,
    controller: AdmissionController,
    profile: TenantProfile,
    duration: float,
):
    """One tenant's bursty-Poisson submission process."""
    name = profile.spec.name
    gap_stream = f"tenancy.arrivals.{name}"
    burst_stream = f"tenancy.burst.{name}"
    size_stream = f"tenancy.size.{name}"
    while True:
        if profile.periodic:
            gap = profile.mean_interarrival
        else:
            gap = rng.exponential(gap_stream, profile.mean_interarrival)
        yield engine.timeout(gap)
        if engine.now >= duration:
            return
        n_jobs = 1
        if profile.burst_prob > 0.0:
            if float(rng.stream(burst_stream).random()) < profile.burst_prob:
                n_jobs = profile.burst_size
        for _ in range(n_jobs):
            controller.submit(name, _job_size(rng, size_stream, profile))


def run_scenario(
    seed: int = 7,
    duration: float = 600.0,
    profiles: Optional[Sequence[TenantProfile]] = None,
    *,
    max_running: int = 6,
    max_queue_depth: int = 12,
) -> Dict[str, object]:
    """Run the pinned multi-tenant scenario; returns the QoS report.

    The report is a pure function of ``(seed, duration, profiles)`` —
    deterministic DES, named RNG streams, sorted dict keys."""
    profiles = tuple(profiles) if profiles is not None else DEFAULT_PROFILES
    engine = Engine()
    rng = RngStreams(seed)
    contention = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
    partitions = {
        p.spec.name: NvmPartition(
            p.spec.name,
            p.spec.capacity_bytes or 16 * p.base_bytes,
            share=p.spec.share,
            guaranteed=p.spec.guaranteed,
        )
        for p in profiles
    }
    bus = WeightedFairBus(engine, contention, partitions)
    controller = AdmissionController(
        engine,
        bus,
        partitions,
        {p.spec.name: p.spec for p in profiles},
        max_running=max_running,
        max_queue_depth=max_queue_depth,
    )
    for profile in profiles:
        engine.process(
            _arrivals(engine, rng, controller, profile, duration),
            name=f"tenancy:arrivals:{profile.spec.name}",
        )
    engine.run(until=duration)
    # let in-flight transfers finish so SLO gaps are scored on complete
    # jobs (the device keeps draining after arrivals stop)
    engine.run(until=duration * 1.5)
    controller.finalize()
    tenants = controller.report()
    return {
        "seed": seed,
        "duration_s": duration,
        "tenants": tenants,
        "totals": {
            "jobs_submitted": len(controller.jobs),
            "admitted": controller.admitted,
            "queued": controller.queued,
            "rejected": controller.rejected,
            "preemptions": controller.preemptions,
            "bytes_moved": int(bus.total_bytes),
            "throttle_spans": bus.throttle_events,
        },
    }
