"""Admission control and checkpoint-job scheduling over the QoS bus.

Pivot-scheduling style: every checkpoint-job request is ruled on
explicitly — **admit** (start now), **queue** (bounded FIFO, drained as
running jobs finish), or **reject** (capacity quota exceeded, or queue
full) — and every ruling is a ``tenant.admission`` trace event, so the
scheduler's behaviour is replayable.

Guaranteed tenants get two extra levers:

* a free concurrency slot is *taken*, not waited for: when the device
  is fully booked, the controller preempts running best-effort jobs
  (``tenant.preempt`` events; the victims re-queue at the front and
  restart — checkpoints are idempotent, a torn copy is simply redone);
* an interval-SLO estimate gates dispatch: if the fair-share rate the
  :class:`~repro.tenancy.partition.WeightedFairBus` would give the
  job misses the tenant's interval target, best-effort victims are
  preempted until the estimate clears (or no victims remain).

SLO scoring, per tenant: **interval** attainment is the fraction of
jobs whose submit-to-finish latency met the tenant's interval target;
**RPO** attainment is the fraction of completion-to-completion gaps
within the RPO target (the recovery-point loss bound a tenant actually
experienced).  :meth:`AdmissionController.finalize` emits one
``tenant.slo`` event per tenant and :meth:`report` returns the
deterministic dict the bench ``qos`` block pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..errors import SimulationError, TransferCancelled
from ..metrics.trace import (
    BUS,
    TenantAdmissionEvent,
    TenantPreemptEvent,
    TenantSloEvent,
)
from ..sim.engine import Engine
from .partition import NvmPartition, WeightedFairBus

__all__ = ["TenantSpec", "CheckpointJob", "AdmissionController"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract: shares, quota and SLO targets."""

    name: str
    #: bandwidth share weight on the :class:`WeightedFairBus`
    share: float = 1.0
    #: capacity quota (bytes) of the tenant's :class:`NvmPartition`
    capacity_bytes: int = 0
    #: target submit-to-finish latency per checkpoint job (seconds)
    interval: float = 60.0
    #: recovery-point objective: max tolerated gap between consecutive
    #: completed checkpoints (seconds)
    rpo: float = 180.0
    #: guaranteed tenants may preempt best-effort tenants; best-effort
    #: tenants absorb throttling and preemption
    guaranteed: bool = False

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise SimulationError("tenant share must be positive")
        if self.interval <= 0 or self.rpo <= 0:
            raise SimulationError("tenant SLO targets must be positive")


@dataclass
class CheckpointJob:
    """One checkpoint request moving through the scheduler."""

    job_id: str
    tenant: str
    nbytes: int
    submitted_at: float
    decision: str = ""  # admit | queue | reject
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: times this job was preempted and restarted
    preemptions: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def tag(self) -> str:
        return f"{self.tenant}:{self.job_id}"


@dataclass
class _TenantSlo:
    """Per-tenant SLO bookkeeping."""

    jobs_completed: int = 0
    interval_met: int = 0
    rpo_gaps: int = 0
    rpo_met: int = 0
    last_completion: Optional[float] = None
    latencies: List[float] = field(default_factory=list)


class AdmissionController:
    """Admit / queue / reject / preempt checkpoint jobs per tenant."""

    def __init__(
        self,
        engine: Engine,
        bus: WeightedFairBus,
        partitions: Dict[str, NvmPartition],
        specs: Dict[str, TenantSpec],
        *,
        max_running: int = 8,
        max_queue_depth: int = 16,
    ) -> None:
        if max_running < 1:
            raise SimulationError("max_running must be >= 1")
        self.engine = engine
        self.bus = bus
        self.partitions = partitions
        self.specs = specs
        self.max_running = max_running
        self.max_queue_depth = max_queue_depth
        self._running: Dict[str, CheckpointJob] = {}
        self._queue: Deque[CheckpointJob] = deque()
        self._seq = 0
        #: tenant -> bytes of its last committed checkpoint (released
        #: from the partition when the next one commits — the
        #: two-version flip, collapsed to steady state)
        self._committed: Dict[str, int] = {}
        self._slo: Dict[str, _TenantSlo] = {t: _TenantSlo() for t in specs}
        # -- decision counters (the qos report) --
        self.admitted = 0
        self.queued = 0
        self.rejected = 0
        self.preemptions = 0
        self.jobs: List[CheckpointJob] = []

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    def submit(self, tenant: str, nbytes: int) -> CheckpointJob:
        """Rule on one checkpoint-job request (called at arrival time)."""
        if tenant not in self.specs:
            raise SimulationError(f"unknown tenant {tenant!r}")
        self._seq += 1
        job = CheckpointJob(
            job_id=f"j{self._seq}",
            tenant=tenant,
            nbytes=int(nbytes),
            submitted_at=self.engine.now,
        )
        self.jobs.append(job)
        spec = self.specs[tenant]
        part = self.partitions[tenant]
        # capacity is a hard wall: the new version must fit next to the
        # committed one until the flip
        if not part.reserve(job.nbytes):
            self._decide(job, "reject", reason="capacity")
            return job
        if len(self._running) >= self.max_running:
            if spec.guaranteed and self._preempt_for(job):
                pass  # a slot was freed by preemption
            elif len(self._queue) < self.max_queue_depth:
                self._decide(job, "queue", reason="busy")
                self._queue.append(job)
                return job
            else:
                part.release(job.nbytes)
                self._decide(job, "reject", reason="queue_full")
                return job
        if spec.guaranteed:
            # interval-SLO gate: would the fair share miss the target?
            self._preempt_until_estimate_clears(job)
        self._decide(job, "admit", partition=part.tenant)
        self._start(job)
        return job

    # ------------------------------------------------------------------
    # Scheduling internals.
    # ------------------------------------------------------------------

    def _decide(
        self, job: CheckpointJob, decision: str, *, partition: str = "", reason: str = ""
    ) -> None:
        job.decision = decision
        if decision == "admit":
            self.admitted += 1
        elif decision == "queue":
            self.queued += 1
        else:
            self.rejected += 1
        if BUS.active:
            BUS.emit(
                TenantAdmissionEvent(
                    t=self.engine.now,
                    actor="admission",
                    tenant=job.tenant,
                    decision=decision,
                    partition=partition,
                    reason=reason,
                    queue_depth=len(self._queue),
                )
            )

    def _estimate_latency(self, job: CheckpointJob) -> float:
        """Submit-to-finish estimate at the tenant's prospective fair
        share (elapsed queueing time counts against the target)."""
        rate = self.bus.estimate_rate(job.tenant, extra_flows=1)
        if rate <= 0:
            return float("inf")
        waited = self.engine.now - job.submitted_at
        return waited + job.nbytes / rate

    def _best_effort_victim(self) -> Optional[CheckpointJob]:
        """Deterministic victim pick: the best-effort running job that
        arrived last (LIFO — the least sunk progress to throw away;
        ties cannot happen, job ids are unique)."""
        candidates = [
            j
            for j in self._running.values()
            if not self.specs[j.tenant].guaranteed
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda j: (j.submitted_at, j.job_id))

    def _preempt(self, victim: CheckpointJob, beneficiary: str, reason: str) -> None:
        victim.preemptions += 1
        self.preemptions += 1
        if BUS.active:
            BUS.emit(
                TenantPreemptEvent(
                    t=self.engine.now,
                    actor="admission",
                    tenant=victim.tenant,
                    victim_job=victim.job_id,
                    beneficiary=beneficiary,
                    reason=reason,
                )
            )
        # cancelling the flow fails the job process's transfer event;
        # its except-handler re-queues the job at the front
        self.bus.cancel_tag(victim.tag)

    def _preempt_for(self, job: CheckpointJob) -> bool:
        """Free one concurrency slot for a guaranteed *job*."""
        victim = self._best_effort_victim()
        if victim is None:
            return False
        self._preempt(victim, job.tenant, "slot")
        return True

    def _preempt_until_estimate_clears(self, job: CheckpointJob) -> None:
        """Preempt best-effort load while the guaranteed job's interval
        estimate misses its target and victims remain."""
        spec = self.specs[job.tenant]
        while self._estimate_latency(job) > spec.interval:
            victim = self._best_effort_victim()
            if victim is None:
                break
            self._preempt(victim, job.tenant, "slo_risk")

    def _start(self, job: CheckpointJob) -> None:
        job.started_at = self.engine.now
        self._running[job.job_id] = job
        self.engine.process(self._job_proc(job), name=f"tenancy:{job.tag}")

    def _job_proc(self, job: CheckpointJob):
        try:
            yield self.bus.transfer(job.tenant, job.nbytes, tag=job.tag)
        except TransferCancelled:
            # preempted: back to the head of the queue; the partition
            # reservation is kept (the restarted job rewrites in place)
            self._running.pop(job.job_id, None)
            self._queue.appendleft(job)
            return
        self._running.pop(job.job_id, None)
        self._complete(job)
        self._dispatch()

    def _complete(self, job: CheckpointJob) -> None:
        now = self.engine.now
        job.finished_at = now
        part = self.partitions[job.tenant]
        # two-version flip: the previous committed copy is superseded
        prev = self._committed.get(job.tenant, 0)
        if prev:
            part.release(prev)
        self._committed[job.tenant] = job.nbytes
        spec = self.specs[job.tenant]
        slo = self._slo[job.tenant]
        slo.jobs_completed += 1
        latency = job.latency or 0.0
        slo.latencies.append(latency)
        if latency <= spec.interval:
            slo.interval_met += 1
        if slo.last_completion is not None:
            slo.rpo_gaps += 1
            if now - slo.last_completion <= spec.rpo:
                slo.rpo_met += 1
        slo.last_completion = now

    def _dispatch(self) -> None:
        """Drain the queue into freed concurrency slots (FIFO; the
        front may hold a preemption victim re-starting)."""
        while self._queue and len(self._running) < self.max_running:
            job = self._queue.popleft()
            if job.decision != "admit":
                job.decision = "admit"
            self._start(job)

    # ------------------------------------------------------------------
    # Scoring.
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Close accounting and emit one ``tenant.slo`` per tenant."""
        self.bus.finalize()
        if not BUS.active:
            return
        for tenant in sorted(self.specs):
            spec = self.specs[tenant]
            slo = self._slo[tenant]
            attainment = (
                slo.interval_met / slo.jobs_completed if slo.jobs_completed else 1.0
            )
            BUS.emit(
                TenantSloEvent(
                    t=self.engine.now,
                    actor="admission",
                    tenant=tenant,
                    jobs=slo.jobs_completed,
                    met=slo.interval_met,
                    attainment=attainment,
                    target=spec.interval,
                )
            )

    def report(self) -> Dict[str, dict]:
        """Deterministic per-tenant QoS summary (the bench block)."""
        out: Dict[str, dict] = {}
        for tenant in sorted(self.specs):
            spec = self.specs[tenant]
            slo = self._slo[tenant]
            part = self.partitions[tenant]
            submitted = [j for j in self.jobs if j.tenant == tenant]
            out[tenant] = {
                "guaranteed": spec.guaranteed,
                "share": spec.share,
                "jobs_submitted": len(submitted),
                "jobs_completed": slo.jobs_completed,
                "jobs_rejected": sum(1 for j in submitted if j.decision == "reject"),
                "preemptions": sum(j.preemptions for j in submitted),
                "interval_target_s": spec.interval,
                "interval_attainment": (
                    round(slo.interval_met / slo.jobs_completed, 6)
                    if slo.jobs_completed
                    else 1.0
                ),
                "rpo_target_s": spec.rpo,
                "rpo_attainment": (
                    round(slo.rpo_met / slo.rpo_gaps, 6) if slo.rpo_gaps else 1.0
                ),
                "mean_latency_s": (
                    round(sum(slo.latencies) / len(slo.latencies), 6)
                    if slo.latencies
                    else 0.0
                ),
                "throttle_time_s": round(self.bus.throttle_time.get(tenant, 0.0), 6),
                "bytes_moved": int(self.bus.bytes_by_tenant.get(tenant, 0.0)),
                "peak_capacity_used": part.peak_used_bytes,
                "capacity_rejections": part.reserve_failures,
            }
        return out
