"""Multi-tenant checkpoint-as-a-service over one NVM device (QoS layer).

The paper's economics — checkpoint cost re-solved from copy time on a
shared NVM device — assume one job owns the device.  A consolidated
node hosts many: this package virtualizes the NVM substrate the way
the hypervisor-virtualization related work partitions guest NVM, and
schedules checkpoint jobs against per-tenant targets the way the
pivot-scheduling exemplar meters per-app resources.

* :mod:`partition` — :class:`NvmPartition` carves per-tenant capacity
  quotas out of the device, and :class:`WeightedFairBus` shares the
  device's contended bandwidth (:class:`~repro.memory.bandwidth.
  CoreContentionModel`) across tenants by weighted water-filling with
  work-conserving borrowing of idle share;
* :mod:`admission` — :class:`AdmissionController` admits / queues /
  rejects checkpoint jobs against partition capacity and concurrency,
  preempts best-effort tenants when a guaranteed tenant's interval SLO
  is at risk, and scores per-tenant interval/RPO attainment;
* :mod:`driver` — the synthetic multi-tenant scenario: bursty Poisson
  arrivals with heavy-tailed job sizes, tenants sized from the
  :mod:`repro.apps` workload models, emitting ``tenant.*`` trace
  events and returning the deterministic QoS report the bench's
  ``qos`` block pins.
"""

from .admission import AdmissionController, CheckpointJob, TenantSpec
from .driver import DEFAULT_PROFILES, TenantProfile, run_scenario
from .partition import NvmPartition, WeightedFairBus

__all__ = [
    "NvmPartition",
    "WeightedFairBus",
    "TenantSpec",
    "CheckpointJob",
    "AdmissionController",
    "TenantProfile",
    "DEFAULT_PROFILES",
    "run_scenario",
]
