"""NVM virtualization: per-tenant capacity partitions and weighted
fair bandwidth sharing over one contended device.

:class:`NvmPartition` is the capacity half: a byte quota carved out of
the device for one tenant, with reserve/release accounting (admission
rejects what doesn't fit — the quota is a hard wall, never borrowed).

:class:`WeightedFairBus` is the bandwidth half.  The device's usable
aggregate rate still comes from the paper's Fig. 4 contention curve
(:class:`~repro.memory.bandwidth.CoreContentionModel`: capacity shrinks
as concurrent writers are added, each flow obeys the single-core cap),
but instead of splitting it equally per flow, the bus splits it across
*tenants* by weighted water-filling:

* each active tenant (>= 1 in-flight flow) gets capacity proportional
  to its configured share weight;
* a tenant's allocation is capped at its *demand* — ``n_flows x
  single-core cap`` — and surplus is redistributed over the remaining
  tenants (**work-conserving**: idle or demand-capped share is borrowed
  by whoever can use it, so a lone tenant on an idle device runs at
  full device speed regardless of its weight);
* a tenant allocated less than its demand is *throttled*: the bus
  accrues per-tenant throttle time and emits one
  ``tenant.throttle`` trace event per contiguous throttled span.

Flows therefore progress at per-tenant rates, and completion wakeups
follow the earliest finisher across heterogeneous rates — the same
advance/reschedule discipline as
:class:`~repro.sim.resources.BandwidthResource`, generalized to
non-uniform per-flow rates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError, TransferCancelled
from ..memory.bandwidth import CoreContentionModel
from ..metrics.trace import BUS, TenantThrottleEvent
from ..sim.engine import Engine
from ..sim.events import Event

__all__ = ["NvmPartition", "WeightedFairBus"]

#: see :mod:`repro.sim.resources` — same dust thresholds, same meaning
_EPSILON_BYTES = 1e-6
_EPSILON_SECONDS = 1e-9
#: allocations within this relative slack of demand don't count as
#: throttled (float noise from the water-filling redistribution)
_THROTTLE_SLACK = 1e-9


class NvmPartition:
    """One tenant's capacity slice of the NVM device.

    Capacity is a hard quota: :meth:`reserve` fails (returns ``False``)
    rather than borrowing from neighbours — checkpoint data is durable
    state, and capacity lent out cannot be reclaimed without deleting a
    tenant's recovery copy.  Bandwidth, by contrast, is work-conserving
    and borrowed freely (see :class:`WeightedFairBus`).
    """

    def __init__(
        self,
        tenant: str,
        capacity_bytes: int,
        *,
        share: float = 1.0,
        guaranteed: bool = False,
    ) -> None:
        if capacity_bytes <= 0:
            raise SimulationError("partition capacity must be positive")
        if share <= 0:
            raise SimulationError("partition share weight must be positive")
        self.tenant = tenant
        self.capacity_bytes = int(capacity_bytes)
        self.share = float(share)
        self.guaranteed = guaranteed
        self.used_bytes = 0
        #: high-water mark, for the QoS report
        self.peak_used_bytes = 0
        self.reserve_failures = 0

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def can_reserve(self, nbytes: int) -> bool:
        return nbytes <= self.available_bytes

    def reserve(self, nbytes: int) -> bool:
        """Claim *nbytes* of the quota; ``False`` (and a counted
        failure) when it doesn't fit."""
        if nbytes < 0:
            raise SimulationError("cannot reserve a negative byte count")
        if nbytes > self.available_bytes:
            self.reserve_failures += 1
            return False
        self.used_bytes += nbytes
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)
        return True

    def release(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.used_bytes:
            raise SimulationError(
                f"partition {self.tenant!r}: release({nbytes}) with "
                f"{self.used_bytes} reserved"
            )
        self.used_bytes -= nbytes


class _TenantFlow:
    """One in-flight transfer on the :class:`WeightedFairBus`."""

    __slots__ = ("flow_id", "tenant", "nbytes", "remaining", "event", "tag", "rate", "started_at")

    def __init__(
        self, flow_id: int, tenant: str, nbytes: float, event: Event, tag: str, now: float
    ) -> None:
        self.flow_id = flow_id
        self.tenant = tenant
        self.nbytes = nbytes
        self.remaining = nbytes
        self.event = event
        self.tag = tag
        self.rate = 0.0  # set by _recompute_rates before first advance
        self.started_at = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TenantFlow {self.flow_id} {self.tenant} tag={self.tag} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate:.0f}B/s>"
        )


class WeightedFairBus:
    """Per-tenant weighted fair sharing of one contended NVM device."""

    def __init__(
        self,
        engine: Engine,
        contention: CoreContentionModel,
        partitions: Dict[str, NvmPartition],
        name: str = "qos-bus",
    ) -> None:
        self.engine = engine
        self.contention = contention
        self.partitions = dict(partitions)
        self.name = name
        self._flows: Dict[int, _TenantFlow] = {}
        self._next_id = 0
        self._last_update = engine.now
        self._completion_token = 0
        # -- accounting --
        self.total_bytes = 0.0
        self.bytes_by_tenant: Dict[str, float] = {}
        self.throttle_time: Dict[str, float] = {}
        self.throttle_events: int = 0
        #: tenant -> (since, share-at-entry) for open throttled spans
        self._throttled: Dict[str, tuple] = {}

    # -- public API -----------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def tenant_flows(self, tenant: str) -> int:
        return sum(1 for f in self._flows.values() if f.tenant == tenant)

    def transfer(self, tenant: str, nbytes: float, tag: str = "") -> Event:
        """Move *nbytes* for *tenant*; the event fires on completion."""
        if tenant not in self.partitions:
            raise SimulationError(f"unknown tenant {tenant!r} on {self.name}")
        if nbytes < 0:
            raise SimulationError("cannot transfer a negative byte count")
        ev = self.engine.event(name=f"{self.name}.transfer({tenant},{nbytes:.0f})")
        if nbytes < _EPSILON_BYTES:
            ev.succeed(0.0)
            return ev
        self._advance()
        fid = self._next_id
        self._next_id += 1
        self._flows[fid] = _TenantFlow(fid, tenant, float(nbytes), ev, tag, self.engine.now)
        self._recompute_rates()
        self._reschedule()
        return ev

    def cancel_tag(self, tag: str) -> int:
        """Abort in-flight flows with *tag* (preemption); their events
        fail with :class:`TransferCancelled`."""
        self._advance()
        doomed = [f for f in self._flows.values() if f.tag == tag]
        for f in doomed:
            del self._flows[f.flow_id]
            f.event.fail(TransferCancelled(f"transfer {f.flow_id} ({f.tag!r}) preempted"))
        if doomed:
            self._recompute_rates()
            self._reschedule()
        return len(doomed)

    def estimate_rate(self, tenant: str, extra_flows: int = 1) -> float:
        """The per-tenant aggregate rate *tenant* would hold if it added
        *extra_flows* flows right now — the admission controller's SLO
        estimator.  Pure function of current state; adds nothing."""
        counts = self._tenant_counts()
        counts[tenant] = counts.get(tenant, 0) + extra_flows
        shares = self._water_fill(counts)
        return shares.get(tenant, 0.0)

    def finalize(self) -> None:
        """Close open throttled spans (end-of-scenario accounting)."""
        self._advance()
        now = self.engine.now
        for tenant in list(self._throttled):
            self._end_throttle(tenant, now)

    # -- internals --------------------------------------------------------------

    def _tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self._flows.values():
            counts[f.tenant] = counts.get(f.tenant, 0) + 1
        return counts

    def _water_fill(self, counts: Dict[str, int]) -> Dict[str, float]:
        """Weighted water-filling of the contended device capacity.

        Returns tenant -> allocated aggregate rate.  Active tenants
        split ``C_eff(total flows)`` proportionally to their share
        weights; allocations are capped at demand (``n x single-core
        cap``) and the freed surplus re-splits over the still-unsatiated
        tenants, so any share a tenant cannot use is borrowed — the
        work-conserving half of the QoS contract."""
        total_flows = sum(counts.values())
        if total_flows == 0:
            return {}
        capacity = self.contention.effective_capacity(total_flows)
        cap_per_flow = self.contention.single_core_cap
        demand = {t: n * cap_per_flow for t, n in counts.items()}
        shares: Dict[str, float] = {}
        unsatiated = [t for t in counts]
        capacity_left = capacity
        # each pass either satiates at least one tenant or terminates,
        # so this loop runs at most len(counts) times
        while unsatiated:
            total_weight = sum(self.partitions[t].share for t in unsatiated)
            satiated: List[str] = []
            for t in unsatiated:
                alloc = capacity_left * self.partitions[t].share / total_weight
                if alloc >= demand[t] - demand[t] * _THROTTLE_SLACK:
                    satiated.append(t)
            if not satiated:
                for t in unsatiated:
                    shares[t] = capacity_left * self.partitions[t].share / total_weight
                break
            for t in satiated:
                shares[t] = demand[t]
                capacity_left -= demand[t]
                unsatiated.remove(t)
            capacity_left = max(0.0, capacity_left)
        return shares

    def _recompute_rates(self) -> None:
        counts = self._tenant_counts()
        shares = self._water_fill(counts)
        for f in self._flows.values():
            f.rate = shares[f.tenant] / counts[f.tenant]
        # throttle-span tracking: a tenant is throttled while its
        # allocation sits below its demand (capped by contention, not
        # by its own flow count)
        now = self.engine.now
        cap_per_flow = self.contention.single_core_cap
        for tenant, n in counts.items():
            demand = n * cap_per_flow
            throttled = shares[tenant] < demand * (1.0 - _THROTTLE_SLACK)
            if throttled and tenant not in self._throttled:
                self._throttled[tenant] = (now, shares[tenant] / demand)
            elif not throttled and tenant in self._throttled:
                self._end_throttle(tenant, now)
        # tenants with no flows left close their span too
        for tenant in [t for t in self._throttled if t not in counts]:
            self._end_throttle(tenant, now)

    def _end_throttle(self, tenant: str, now: float) -> None:
        since, share = self._throttled.pop(tenant)
        duration = now - since
        if duration <= 0:
            return
        self.throttle_time[tenant] = self.throttle_time.get(tenant, 0.0) + duration
        self.throttle_events += 1
        if BUS.active:
            BUS.emit(
                TenantThrottleEvent(
                    t=now,
                    actor=self.name,
                    tenant=tenant,
                    duration=duration,
                    share=share,
                )
            )

    def _advance(self) -> None:
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: List[_TenantFlow] = []
        for f in self._flows.values():
            moved = f.rate * dt
            f.remaining -= moved
            progressed = min(moved, f.remaining + moved)
            self.total_bytes += progressed
            self.bytes_by_tenant[f.tenant] = (
                self.bytes_by_tenant.get(f.tenant, 0.0) + progressed
            )
            if f.remaining <= _EPSILON_BYTES and f.remaining <= f.rate * _EPSILON_SECONDS:
                finished.append(f)
        if finished:
            for f in finished:
                del self._flows[f.flow_id]
                f.event.succeed(now - f.started_at)
            self._recompute_rates()

    def _reschedule(self) -> None:
        self._completion_token += 1
        token = self._completion_token
        while self._flows:
            dust = [
                f
                for f in self._flows.values()
                if f.rate > 0 and f.remaining / f.rate < _EPSILON_SECONDS
            ]
            if not dust:
                break
            now = self.engine.now
            for f in dust:
                self.total_bytes += f.remaining
                self.bytes_by_tenant[f.tenant] = (
                    self.bytes_by_tenant.get(f.tenant, 0.0) + f.remaining
                )
                del self._flows[f.flow_id]
                f.event.succeed(now - f.started_at)
            self._recompute_rates()
        if not self._flows:
            return
        eta = self.engine.now + min(
            f.remaining / f.rate for f in self._flows.values() if f.rate > 0
        )
        self.engine.call_at(eta, lambda: self._on_wakeup(token))

    def _on_wakeup(self, token: int) -> None:
        if token != self._completion_token:
            return  # state changed since this wakeup was scheduled
        self._advance()
        self._reschedule()
