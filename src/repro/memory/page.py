"""Page tables with protection and dirty bits.

The paper's runtime uses hardware paging in two ways:

* **write protection** on all pages of a chunk after its pre-copy, so
  the first subsequent write faults and marks the whole chunk dirty
  (chunk-level protection amortizes the 6-12 us fault cost over the
  chunk instead of paying it per page);
* an **'nvdirty' bit per NVM page** (added by their kernel patch) that
  the remote helper reads via a syscall to find dirty pages *without*
  taking protection faults.

Python cannot trap real SIGSEGV, so writes flow through an explicit
barrier (:mod:`repro.core.tracking`); this module supplies the same
bookkeeping the hardware/kernel would: protection bits, dirty bits,
fault counting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import InvalidAddress
from ..units import PAGE_SIZE, pages_of

__all__ = ["PageTable", "StalePageMap"]


def _mask_extents(mask: np.ndarray, page_size: int, nbytes: int) -> List[Tuple[int, int]]:
    """Coalesce a page bitmap into ``(offset, nbytes)`` byte runs.

    Adjacent set pages merge into one extent; the final extent is
    clipped to the region size (the last page may be partial).
    """
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    # run breaks: positions where the page index jumps by > 1
    breaks = np.flatnonzero(np.diff(idx) > 1) + 1
    starts = idx[np.concatenate(([0], breaks))]
    ends = idx[np.concatenate((breaks - 1, [idx.size - 1]))] + 1
    extents: List[Tuple[int, int]] = []
    for s, e in zip(starts.tolist(), ends.tolist()):
        off = s * page_size
        end_b = min(e * page_size, nbytes)
        extents.append((off, end_b - off))
    return extents


class PageTable:
    """Per-region page state: write-protection and nvdirty bits.

    Offsets are byte offsets within the region; the table converts them
    to page indexes internally.
    """

    __slots__ = ("nbytes", "page_size", "n_pages", "_protected", "_nvdirty", "fault_count")

    def __init__(self, nbytes: int, page_size: int = PAGE_SIZE) -> None:
        if nbytes < 0:
            raise ValueError("region size must be >= 0")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.nbytes = nbytes
        self.page_size = page_size
        self.n_pages = pages_of(nbytes, page_size)
        self._protected = np.zeros(self.n_pages, dtype=bool)
        self._nvdirty = np.zeros(self.n_pages, dtype=bool)
        #: protection faults taken against this region (for cost accounting).
        self.fault_count = 0

    # -- helpers ------------------------------------------------------------

    def _page_range(self, offset: int, nbytes: int) -> Tuple[int, int]:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise InvalidAddress(
                f"access [{offset}, {offset + nbytes}) outside region of {self.nbytes} bytes"
            )
        if nbytes == 0:
            return (0, 0)
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        return (first, last + 1)

    def resize(self, nbytes: int) -> None:
        """Grow/shrink; new pages start unprotected and clean."""
        new_pages = pages_of(nbytes, self.page_size)
        prot = np.zeros(new_pages, dtype=bool)
        dirty = np.zeros(new_pages, dtype=bool)
        keep = min(self.n_pages, new_pages)
        prot[:keep] = self._protected[:keep]
        dirty[:keep] = self._nvdirty[:keep]
        self.nbytes = nbytes
        self.n_pages = new_pages
        self._protected = prot
        self._nvdirty = dirty

    # -- protection (chunk-level pre-copy support) -----------------------------

    def protect_all(self) -> None:
        """Write-protect every page (done right after a chunk pre-copy)."""
        self._protected[:] = True

    def unprotect_all(self) -> None:
        """Drop protection on every page (the chunk-level fault response:
        one fault unprotects the whole chunk)."""
        self._protected[:] = False

    def is_protected(self, offset: int, nbytes: int = 1) -> bool:
        """True if *any* page covering the byte range is protected."""
        first, last = self._page_range(offset, nbytes)
        return bool(self._protected[first:last].any())

    def any_protected(self) -> bool:
        return bool(self._protected.any())

    def record_fault(self) -> None:
        self.fault_count += 1

    # -- nvdirty bits (remote-helper support) --------------------------------------

    def mark_nvdirty(self, offset: int, nbytes: int) -> None:
        """Set the nvdirty bit on pages covering the byte range (the
        kernel would set this on NVM page writes)."""
        first, last = self._page_range(offset, nbytes)
        self._nvdirty[first:last] = True

    def mark_all_nvdirty(self) -> None:
        self._nvdirty[:] = True

    def collect_nvdirty(self, clear: bool = True) -> List[int]:
        """Page indexes currently dirty; optionally clear them (the
        helper's read-and-reset syscall)."""
        pages = np.flatnonzero(self._nvdirty).tolist()
        if clear:
            self._nvdirty[:] = False
        return pages

    def nvdirty_bytes(self) -> int:
        """Upper-bound byte count covered by dirty pages."""
        n_dirty = int(self._nvdirty.sum())
        if n_dirty == 0:
            return 0
        total = n_dirty * self.page_size
        # the final page may be partial
        if self._nvdirty[-1] and self.nbytes % self.page_size:
            total -= self.page_size - (self.nbytes % self.page_size)
        return total

    def clear_nvdirty(self) -> None:
        self._nvdirty[:] = False

    def clear_nvdirty_range(self, offset: int, nbytes: int) -> None:
        """Clear the nvdirty bit on pages fully covered by the byte
        range (callers pass page-aligned extents back from
        :meth:`nvdirty_extents`, so partial coverage does not arise)."""
        first, last = self._page_range(offset, nbytes)
        self._nvdirty[first:last] = False

    def nvdirty_extents(self, clear: bool = False) -> List[Tuple[int, int]]:
        """Dirty pages as coalesced ``(offset, nbytes)`` byte runs.

        Adjacent dirty pages merge into one extent; the final extent is
        clipped to the region size (the last page may be partial).
        With ``clear``, the read doubles as the kernel's
        read-and-reset.
        """
        extents = _mask_extents(self._nvdirty, self.page_size, self.nbytes)
        if clear:
            self._nvdirty[:] = False
        return extents


class StalePageMap:
    """Per-version-slot staleness bitmaps for incremental copy.

    "Dirty since the last checkpoint" is the wrong predicate under
    two-version shadow buffering: the in-progress slot alternates, so
    the slot written this checkpoint was last refreshed *two*
    checkpoints ago.  This map keeps one page bitmap per version slot
    (reusing :class:`PageTable`'s nvdirty bits) with the invariant

        ``stale[slot] ⊇ {pages where DRAM may differ from slot}``

    Every application write marks the page stale in **all** slots;
    copying a slot's extents clears exactly those pages in *that* slot
    only.  Fresh, resized, or rebuilt maps start all-stale — the safe
    direction is over-copying, never under-copying.
    """

    __slots__ = ("nbytes", "page_size", "n_pages", "_stale")

    def __init__(self, nbytes: int, n_slots: int, page_size: int = PAGE_SIZE) -> None:
        if n_slots < 1:
            raise ValueError("need at least one version slot")
        if nbytes < 0:
            raise ValueError("region size must be >= 0")
        self.nbytes = nbytes
        self.page_size = page_size
        self.n_pages = pages_of(nbytes, page_size)
        # one row per version slot over a single 2D bitmap, so the hot
        # operation — mark() on every application write — is one
        # column-slice assignment instead of a Python loop over slots
        self._stale = np.ones((n_slots, self.n_pages), dtype=bool)

    def _page_range(self, offset: int, nbytes: int) -> Tuple[int, int]:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise InvalidAddress(
                f"access [{offset}, {offset + nbytes}) outside region of {self.nbytes} bytes"
            )
        if nbytes == 0:
            return (0, 0)
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        return (first, last + 1)

    @property
    def n_slots(self) -> int:
        return self._stale.shape[0]

    def ensure_slots(self, n_slots: int) -> None:
        """Grow to *n_slots*; new slots start fully stale."""
        if n_slots > self.n_slots:
            extra = np.ones((n_slots - self.n_slots, self.n_pages), dtype=bool)
            self._stale = np.vstack((self._stale, extra))

    def mark(self, offset: int, nbytes: int) -> None:
        """A write landed on [offset, offset+nbytes): every slot's copy
        of those pages is now behind DRAM."""
        first, last = self._page_range(offset, nbytes)
        self._stale[:, first:last] = True

    def mark_all(self) -> None:
        self._stale[:] = True

    def extents(self, slot: int, clear: bool = False) -> List[Tuple[int, int]]:
        """Coalesced stale byte runs for one version slot."""
        row = self._stale[slot]
        extents = _mask_extents(row, self.page_size, self.nbytes)
        if clear:
            row[:] = False
        return extents

    def clear_extents(self, slot: int, extents: List[Tuple[int, int]]) -> None:
        """Mark exactly *extents* copied into *slot* (writes that raced
        the copy keep their stale bits — only the listed runs clear)."""
        row = self._stale[slot]
        for off, n in extents:
            first, last = self._page_range(off, n)
            row[first:last] = False

    def clear_all(self, slot: int) -> None:
        """A full-chunk copy refreshed *slot* entirely."""
        self._stale[slot, :] = False

    def stale_bytes(self, slot: int) -> int:
        row = self._stale[slot]
        n_dirty = int(row.sum())
        if n_dirty == 0:
            return 0
        total = n_dirty * self.page_size
        # the final page may be partial
        if bool(row[-1]) and self.nbytes % self.page_size:
            total -= self.page_size - (self.nbytes % self.page_size)
        return total

    def resize(self, nbytes: int) -> None:
        """Chunk was reallocated: every slot's region content is suspect
        until re-copied, so all slots go fully stale at the new size."""
        self.nbytes = nbytes
        self.n_pages = pages_of(nbytes, self.page_size)
        self._stale = np.ones((self.n_slots, self.n_pages), dtype=bool)
