"""The persistent byte store backing emulated NVM.

The paper emulates PCM by reserving a DRAM range at boot and pinning it
across application sessions.  Here the "device contents" live in a
:class:`PersistentStore`:

* :class:`InMemoryStore` — regions held in RAM; survives simulated
  process crashes (the store object *is* the NVM DIMM) and models the
  flush boundary: writes are cached and only become durable at
  :meth:`~PersistentStore.flush`, so :meth:`~PersistentStore.crash`
  rolls unflushed writes back.
* :class:`FileStore` — additionally durable across real Python process
  restarts (regions as files, metadata as JSON; atomic rename commits).

The checkpoint runtime always flushes before marking a version
committed (the paper's 'Linux cache flush kernel method'), so committed
data survives crash in both stores and the recovery protocol is
exercised for real.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import InvalidAddress, PersistenceError
from ..faults.crashpoints import fire

__all__ = ["PersistentStore", "InMemoryStore", "FileStore"]


def _as_u8(data: Any) -> np.ndarray:
    """View arbitrary buffer-like data as a flat uint8 array."""
    arr = np.asarray(data)
    return np.ascontiguousarray(arr).view(np.uint8).reshape(-1)


class PersistentStore(ABC):
    """Region-granular persistent byte storage with a flush boundary."""

    # -- region lifecycle ---------------------------------------------------

    @abstractmethod
    def create(self, region_id: str, nbytes: int) -> None:
        """Create a zero-filled region.  Fails if it already exists."""

    @abstractmethod
    def resize(self, region_id: str, nbytes: int) -> None:
        """Grow/shrink a region, preserving the common prefix."""

    @abstractmethod
    def delete(self, region_id: str) -> None:
        """Remove a region (immediately durable)."""

    @abstractmethod
    def exists(self, region_id: str) -> bool: ...

    @abstractmethod
    def size(self, region_id: str) -> int: ...

    @abstractmethod
    def list_regions(self) -> List[str]: ...

    # -- data ---------------------------------------------------------------

    @abstractmethod
    def write(self, region_id: str, offset: int, data: Any) -> None:
        """Store bytes at *offset* (cached until :meth:`flush`)."""

    @abstractmethod
    def read(self, region_id: str, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """Read bytes (uint8 array copy) from the *current* (possibly
        unflushed) contents."""

    # -- durability ---------------------------------------------------------

    @abstractmethod
    def flush(self) -> int:
        """Make all cached writes durable; returns bytes flushed."""

    @abstractmethod
    def crash(self) -> None:
        """Simulate power/process loss: discard unflushed writes,
        keeping the last flushed state."""

    @abstractmethod
    def corrupt(self, region_id: str, offset: int) -> None:
        """Flip one *durable* byte of a region (media bit-rot on the
        emulated DIMM).  Used by fault injection; the corruption
        survives :meth:`crash` and must be caught by checksums."""

    # -- metadata (small JSON-able records, durable at flush) ---------------

    @abstractmethod
    def put_meta(self, key: str, value: Any) -> None: ...

    @abstractmethod
    def get_meta(self, key: str, default: Any = None) -> Any: ...

    @abstractmethod
    def delete_meta(self, key: str) -> None: ...

    @abstractmethod
    def list_meta(self) -> List[str]: ...

    # -- shared helpers -------------------------------------------------------

    def _check_range(self, region_size: int, offset: int, nbytes: int, region_id: str) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > region_size:
            raise InvalidAddress(
                f"region {region_id!r}: access [{offset}, {offset + nbytes}) "
                f"outside size {region_size}"
            )


class InMemoryStore(PersistentStore):
    """RAM-resident store with write-back caching and crash rollback."""

    def __init__(self) -> None:
        #: durable (flushed) contents.
        self._durable: Dict[str, np.ndarray] = {}
        #: working contents (durable + unflushed writes), copy-on-write.
        self._working: Dict[str, np.ndarray] = {}
        self._dirty: set[str] = set()
        self._meta_durable: Dict[str, Any] = {}
        self._meta_working: Dict[str, Any] = {}
        self._meta_dirty_keys: set[str] = set()

    # -- lifecycle -----------------------------------------------------------

    def create(self, region_id: str, nbytes: int) -> None:
        if region_id in self._working:
            raise PersistenceError(f"region {region_id!r} already exists")
        if nbytes < 0:
            raise PersistenceError("region size must be >= 0")
        self._working[region_id] = np.zeros(nbytes, dtype=np.uint8)
        self._dirty.add(region_id)

    def resize(self, region_id: str, nbytes: int) -> None:
        cur = self._region(region_id)
        new = np.zeros(nbytes, dtype=np.uint8)
        keep = min(len(cur), nbytes)
        new[:keep] = cur[:keep]
        self._working[region_id] = new
        self._dirty.add(region_id)

    def delete(self, region_id: str) -> None:
        self._region(region_id)  # existence check
        self._working.pop(region_id, None)
        self._durable.pop(region_id, None)
        self._dirty.discard(region_id)

    def exists(self, region_id: str) -> bool:
        return region_id in self._working

    def size(self, region_id: str) -> int:
        return len(self._region(region_id))

    def list_regions(self) -> List[str]:
        return sorted(self._working)

    # -- data ------------------------------------------------------------------

    def _region(self, region_id: str) -> np.ndarray:
        try:
            return self._working[region_id]
        except KeyError:
            raise PersistenceError(f"unknown region {region_id!r}") from None

    def write(self, region_id: str, offset: int, data: Any) -> None:
        region = self._region(region_id)
        payload = _as_u8(data)
        self._check_range(len(region), offset, len(payload), region_id)
        if region_id not in self._dirty and region_id in self._durable:
            # copy-on-write so crash() can roll back to the durable copy
            region = region.copy()
            self._working[region_id] = region
        region[offset : offset + len(payload)] = payload
        self._dirty.add(region_id)

    def read(self, region_id: str, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        region = self._region(region_id)
        if nbytes is None:
            nbytes = len(region) - offset
        self._check_range(len(region), offset, nbytes, region_id)
        return region[offset : offset + nbytes].copy()

    # -- durability ----------------------------------------------------------------

    def flush(self) -> int:
        flushed = 0
        # sorted: the flush order must be deterministic so a crash
        # injected mid-flush lands on the same region every run
        for region_id in sorted(self._dirty):
            if region_id in self._working:
                self._durable[region_id] = self._working[region_id].copy()
                flushed += len(self._working[region_id])
                self._dirty.discard(region_id)
                fire("store.flush.mid", store=self, region_id=region_id)
        self._dirty.clear()
        fire("store.flush.before_meta", store=self)
        # metadata: snapshot only the keys written since the last flush
        # (a whole-table deep copy per flush dominates simulation time)
        for key in sorted(self._meta_dirty_keys):
            if key in self._meta_working:
                self._meta_durable[key] = json.loads(json.dumps(self._meta_working[key]))
            else:
                self._meta_durable.pop(key, None)
        self._meta_dirty_keys.clear()
        return flushed

    def crash(self) -> None:
        self._working = {rid: arr.copy() for rid, arr in self._durable.items()}
        self._dirty.clear()
        self._meta_working = {
            k: json.loads(json.dumps(v)) for k, v in self._meta_durable.items()
        }
        self._meta_dirty_keys.clear()

    def corrupt(self, region_id: str, offset: int) -> None:
        region = self._region(region_id)
        self._check_range(len(region), offset, 1, region_id)
        # rot the durable copy (the working copy too, if materialized
        # separately): reading it back after any crash sees the flip
        durable = self._durable.get(region_id)
        if durable is not None and offset < len(durable):
            durable[offset] ^= 0xFF
        if durable is None or region is not durable:
            region[offset] ^= 0xFF

    # -- metadata ---------------------------------------------------------------------

    def put_meta(self, key: str, value: Any) -> None:
        self._meta_working[key] = json.loads(json.dumps(value))
        self._meta_dirty_keys.add(key)

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self._meta_working.get(key, default)

    def delete_meta(self, key: str) -> None:
        self._meta_working.pop(key, None)
        self._meta_dirty_keys.add(key)

    def list_meta(self) -> List[str]:
        return sorted(self._meta_working)


class FileStore(PersistentStore):
    """Disk-backed store: one file per region plus a JSON metadata file.

    Writes go to an in-RAM working set; :meth:`flush` persists each
    dirty region atomically (write-temp + rename) and then the metadata
    file, so a crash between flushes leaves the previous consistent
    state on disk.  Re-instantiating with the same directory reloads
    the durable state — a true process restart.
    """

    _META_FILE = "meta.json"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._inner = InMemoryStore()
        self._deleted: set[str] = set()
        self._load()

    # -- disk layout -----------------------------------------------------------

    def _region_path(self, region_id: str) -> str:
        safe = region_id.replace(os.sep, "_").replace("..", "_")
        return os.path.join(self.directory, f"region_{safe}.bin")

    def _meta_path(self) -> str:
        return os.path.join(self.directory, self._META_FILE)

    def _load(self) -> None:
        meta_path = self._meta_path()
        if not os.path.exists(meta_path):
            return
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            raise PersistenceError(f"corrupt store metadata at {meta_path}") from err
        for key, value in payload.get("user_meta", {}).items():
            self._inner.put_meta(key, value)
        for region_id, size in payload.get("regions", {}).items():
            path = self._region_path(region_id)
            if not os.path.exists(path):
                raise PersistenceError(
                    f"store metadata lists region {region_id!r} but {path} is missing"
                )
            data = np.fromfile(path, dtype=np.uint8)
            if len(data) != size:
                raise PersistenceError(
                    f"region {region_id!r}: file has {len(data)} bytes, metadata says {size}"
                )
            self._inner.create(region_id, size)
            if size:
                self._inner.write(region_id, 0, data)
        self._inner.flush()

    # -- delegate lifecycle/data to the in-memory working set --------------------

    def create(self, region_id: str, nbytes: int) -> None:
        self._inner.create(region_id, nbytes)
        self._deleted.discard(region_id)

    def resize(self, region_id: str, nbytes: int) -> None:
        self._inner.resize(region_id, nbytes)

    def delete(self, region_id: str) -> None:
        self._inner.delete(region_id)
        self._deleted.add(region_id)

    def exists(self, region_id: str) -> bool:
        return self._inner.exists(region_id)

    def size(self, region_id: str) -> int:
        return self._inner.size(region_id)

    def list_regions(self) -> List[str]:
        return self._inner.list_regions()

    def write(self, region_id: str, offset: int, data: Any) -> None:
        self._inner.write(region_id, offset, data)

    def read(self, region_id: str, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        return self._inner.read(region_id, offset, nbytes)

    def put_meta(self, key: str, value: Any) -> None:
        self._inner.put_meta(key, value)

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self._inner.get_meta(key, default)

    def delete_meta(self, key: str) -> None:
        self._inner.delete_meta(key)

    def list_meta(self) -> List[str]:
        return self._inner.list_meta()

    # -- durability -------------------------------------------------------------------

    def flush(self) -> int:
        dirty = set(self._inner._dirty)
        flushed = self._inner.flush()
        for region_id in dirty:
            if not self._inner.exists(region_id):
                continue
            data = self._inner._durable[region_id]
            path = self._region_path(region_id)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    data.tofile(fh)
                os.replace(tmp, path)
            except OSError as err:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise PersistenceError(f"flush of region {region_id!r} failed") from err
        for region_id in self._deleted:
            path = self._region_path(region_id)
            if os.path.exists(path):
                os.unlink(path)
        self._deleted.clear()
        payload = {
            "regions": {rid: self._inner.size(rid) for rid in self._inner.list_regions()},
            "user_meta": {k: self._inner.get_meta(k) for k in self._inner.list_meta()},
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._meta_path())
        except OSError as err:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise PersistenceError("flush of store metadata failed") from err
        return flushed

    def crash(self) -> None:
        self._inner.crash()
        self._deleted.clear()

    def corrupt(self, region_id: str, offset: int) -> None:
        self._inner.corrupt(region_id, offset)
        path = self._region_path(region_id)
        if os.path.exists(path) and offset < os.path.getsize(path):
            with open(path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
