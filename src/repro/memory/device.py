"""Memory device models (DRAM and PCM) with Table-I timing and the
endurance/energy side effects the paper calls out (1e8 write cycles,
40x write energy/bit for PCM).

A :class:`MemoryDevice` is pure accounting + parameters: capacity
allocation, byte/page counters, wear and energy.  *Time* is charged
either analytically (:meth:`write_time` / :meth:`read_time`) or through
a processor-sharing bus created by
:func:`repro.memory.bandwidth.make_device_bus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import DeviceConfig
from ..errors import OutOfMemory
from ..units import pages_of

__all__ = ["MemoryDevice", "WearStats"]


@dataclass
class WearStats:
    """Cumulative wear/energy counters for one device."""

    bytes_written: float = 0.0
    bytes_read: float = 0.0
    page_writes: int = 0
    page_reads: int = 0
    write_energy_joules: float = 0.0

    def merge(self, other: "WearStats") -> None:
        self.bytes_written += other.bytes_written
        self.bytes_read += other.bytes_read
        self.page_writes += other.page_writes
        self.page_reads += other.page_reads
        self.write_energy_joules += other.write_energy_joules


class MemoryDevice:
    """One physical memory device in a node.

    Tracks allocations (simple byte budget — placement is handled by the
    allocator above), read/write traffic, wear-levelled endurance
    estimates and write energy.
    """

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self.allocated = 0
        self.wear = WearStats()
        #: allocation high-water mark, for capacity reports.
        self.peak_allocated = 0
        self._owners: Dict[str, int] = {}

    # -- capacity ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.config.capacity

    @property
    def free(self) -> int:
        return self.config.capacity - self.allocated

    def allocate(self, nbytes: int, owner: str = "") -> None:
        """Reserve *nbytes*; raises :class:`OutOfMemory` when the device
        is exhausted (the paper's 'local NVM space is a constraint'
        path)."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if self.allocated + nbytes > self.config.capacity:
            raise OutOfMemory(
                f"{self.config.name}: need {nbytes} bytes, only {self.free} free "
                f"of {self.config.capacity}"
            )
        self.allocated += nbytes
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        if owner:
            self._owners[owner] = self._owners.get(owner, 0) + nbytes

    def release(self, nbytes: int, owner: str = "") -> None:
        if nbytes < 0:
            raise ValueError("cannot release a negative size")
        if nbytes > self.allocated:
            raise ValueError(
                f"{self.config.name}: releasing {nbytes} bytes but only "
                f"{self.allocated} allocated"
            )
        self.allocated -= nbytes
        if owner and owner in self._owners:
            self._owners[owner] -= nbytes
            if self._owners[owner] <= 0:
                del self._owners[owner]

    def allocated_by(self, owner: str) -> int:
        return self._owners.get(owner, 0)

    # -- timing (analytic; used outside the DES and for latency floors) ----

    def write_time(self, nbytes: int) -> float:
        """Seconds to write *nbytes* at device peak bandwidth, with the
        per-page latency floor (1 us/page PCM writes dominate for small
        transfers)."""
        bw = self.config.write_bandwidth
        latency_floor = pages_of(nbytes, self.config.page_size) * self.config.page_write_latency
        return max(nbytes / bw, latency_floor) if nbytes > 0 else 0.0

    def read_time(self, nbytes: int) -> float:
        bw = self.config.read_bandwidth
        latency_floor = pages_of(nbytes, self.config.page_size) * self.config.page_read_latency
        return max(nbytes / bw, latency_floor) if nbytes > 0 else 0.0

    # -- traffic accounting -------------------------------------------------

    def record_write(self, nbytes: int) -> None:
        """Account a write's wear and energy (call once per completed
        copy into this device)."""
        self.wear.bytes_written += nbytes
        self.wear.page_writes += pages_of(nbytes, self.config.page_size)
        self.wear.write_energy_joules += nbytes * 8 * self.config.write_energy_per_bit

    def record_read(self, nbytes: int) -> None:
        self.wear.bytes_read += nbytes
        self.wear.page_reads += pages_of(nbytes, self.config.page_size)

    # -- endurance ----------------------------------------------------------

    def endurance_fraction_used(self) -> float:
        """Fraction of total device write endurance consumed, assuming
        ideal wear leveling (writes spread over all cells).  PCM's 1e8
        cycles make this non-negligible for checkpoint workloads; DRAM's
        1e16 makes it ~0."""
        total_cell_writes = self.config.write_endurance * self.config.capacity
        if total_cell_writes <= 0:
            return 0.0
        return self.wear.bytes_written / total_cell_writes

    def estimated_lifetime_seconds(self, elapsed: float) -> float:
        """Extrapolated device lifetime given the write traffic so far
        over *elapsed* simulated seconds (inf if no writes)."""
        used = self.endurance_fraction_used()
        if used <= 0.0 or elapsed <= 0.0:
            return float("inf")
        return elapsed / used

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryDevice {self.config.name} {self.allocated}/{self.config.capacity}B "
            f"written={self.wear.bytes_written:.0f}B>"
        )
