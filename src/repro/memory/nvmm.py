"""The NVM kernel manager — the paper's Linux memory-manager extension
rebuilt as a library object.

Responsibilities (mirroring §V "NVM Kernel"):

* ``nvmmap``-style allocation of NVM-backed regions per process;
* per-process **persistent metadata** describing every NVM region, used
  at restart to re-load persistent pages into the process;
* **cache flush** before data is marked consistent (charged as a cost,
  and realized as a store flush so unflushed data truly dies with a
  crash);
* the **nvdirty** page-bit interface used by the remote helper to find
  dirty pages without protection faults.

Regions may be *real* (bytes live in the persistent store — used by
the functional API, examples and tests) or *phantom* (size-only — used
by cluster-scale simulations where holding 48 x 410 MB of real bytes
would be pointless); both carry full page-table and accounting state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..config import DeviceConfig
from ..errors import AllocationError, PersistenceError
from ..units import usec
from .device import MemoryDevice
from .page import PageTable
from .persistence import InMemoryStore, PersistentStore

__all__ = ["NvmRegion", "NVMKernelManager"]

#: fixed cost of the kernel cache-flush method (clflush loop over the
#: dirty working set; small next to copy costs).
CACHE_FLUSH_COST = usec(120.0)

#: syscall cost for metadata operations (nvmmap, dirty-page query...).
SYSCALL_COST = usec(0.8)


class NvmRegion:
    """One mapped NVM region of a process."""

    __slots__ = ("manager", "pid", "name", "nbytes", "phantom", "pages", "region_id")

    def __init__(
        self,
        manager: "NVMKernelManager",
        pid: str,
        name: str,
        nbytes: int,
        phantom: bool,
    ) -> None:
        self.manager = manager
        self.pid = pid
        self.name = name
        self.nbytes = nbytes
        self.phantom = phantom
        self.pages = PageTable(nbytes, manager.device.config.page_size)
        self.region_id = f"{pid}/{name}"

    # -- data access ---------------------------------------------------------

    def write(self, offset: int, data: Any) -> int:
        """Store bytes; marks nvdirty pages and records device wear.
        Returns the byte count written."""
        payload = np.asarray(data)
        nbytes = payload.nbytes
        if not self.phantom:
            self.manager.store.write(self.region_id, offset, payload)
        else:
            self.pages._page_range(offset, nbytes)  # bounds check
        self.pages.mark_nvdirty(offset, nbytes)
        self.manager.device.record_write(nbytes)
        return nbytes

    def write_phantom(self, offset: int, nbytes: int) -> int:
        """Account a write of *nbytes* without payload (simulation mode)."""
        self.pages._page_range(offset, nbytes)
        self.pages.mark_nvdirty(offset, nbytes)
        self.manager.device.record_write(nbytes)
        return nbytes

    def read(self, offset: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """Read bytes back (zeros for phantom regions)."""
        if nbytes is None:
            nbytes = self.nbytes - offset
        self.manager.device.record_read(nbytes)
        if self.phantom:
            self.pages._page_range(offset, nbytes)
            return np.zeros(nbytes, dtype=np.uint8)
        return self.manager.store.read(self.region_id, offset, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "phantom" if self.phantom else "real"
        return f"<NvmRegion {self.region_id} {self.nbytes}B {kind}>"


class NVMKernelManager:
    """Allocates NVM regions and keeps per-process persistent metadata."""

    _META_PREFIX = "nvmm/proc:"

    def __init__(
        self,
        device: Optional[MemoryDevice] = None,
        store: Optional[PersistentStore] = None,
        device_config: Optional[DeviceConfig] = None,
    ) -> None:
        if device is None:
            from ..config import PCM_CONFIG

            device = MemoryDevice(device_config or PCM_CONFIG)
        self.device = device
        self.store = store if store is not None else InMemoryStore()
        #: live regions: (pid, name) -> NvmRegion
        self._regions: Dict[tuple[str, str], NvmRegion] = {}
        #: accumulated (virtual) syscall/flush cost, for callers that
        #: charge it to a clock.
        self.accrued_cost = 0.0
        self.syscall_count = 0
        self.flush_count = 0

    # -- metadata ------------------------------------------------------------

    def _meta_key(self, pid: str) -> str:
        return f"{self._META_PREFIX}{pid}"

    def _load_meta(self, pid: str) -> Dict[str, Any]:
        return self.store.get_meta(self._meta_key(pid), {"regions": {}})

    def _save_meta(self, pid: str, meta: Dict[str, Any]) -> None:
        self.store.put_meta(self._meta_key(pid), meta)

    def _charge(self, cost: float) -> None:
        self.accrued_cost += cost
        self.syscall_count += 1

    # -- nvmmap family ----------------------------------------------------------

    def nvmmap(self, pid: str, name: str, nbytes: int, phantom: bool = False) -> NvmRegion:
        """Allocate an NVM region for process *pid* (the 'nvmmap'
        system call).  The region is recorded in the process metadata
        so restart can find it."""
        key = (pid, name)
        if key in self._regions:
            raise AllocationError(f"region {name!r} already mapped for process {pid!r}")
        self._charge(SYSCALL_COST)
        self.device.allocate(nbytes, owner=pid)
        region = NvmRegion(self, pid, name, nbytes, phantom)
        if not phantom:
            if self.store.exists(region.region_id):
                # a stale region from a previous life without metadata
                # consistency would be a store bug
                raise PersistenceError(f"orphan store region {region.region_id!r}")
            self.store.create(region.region_id, nbytes)
        self._regions[key] = region
        meta = self._load_meta(pid)
        meta["regions"][name] = {"size": nbytes, "phantom": phantom}
        self._save_meta(pid, meta)
        return region

    def nvmunmap(self, pid: str, name: str) -> None:
        key = (pid, name)
        region = self._regions.pop(key, None)
        if region is None:
            raise AllocationError(f"region {name!r} not mapped for process {pid!r}")
        self._charge(SYSCALL_COST)
        self.device.release(region.nbytes, owner=pid)
        if not region.phantom and self.store.exists(region.region_id):
            self.store.delete(region.region_id)
        meta = self._load_meta(pid)
        meta["regions"].pop(name, None)
        self._save_meta(pid, meta)

    def nvmrealloc(self, pid: str, name: str, nbytes: int) -> NvmRegion:
        """Grow (or shrink) a mapped region, preserving contents."""
        key = (pid, name)
        region = self._regions.get(key)
        if region is None:
            raise AllocationError(f"region {name!r} not mapped for process {pid!r}")
        self._charge(SYSCALL_COST)
        delta = nbytes - region.nbytes
        if delta > 0:
            self.device.allocate(delta, owner=pid)
        elif delta < 0:
            self.device.release(-delta, owner=pid)
        if not region.phantom:
            self.store.resize(region.region_id, nbytes)
        region.nbytes = nbytes
        region.pages.resize(nbytes)
        meta = self._load_meta(pid)
        meta["regions"][name]["size"] = nbytes
        self._save_meta(pid, meta)
        return region

    def region(self, pid: str, name: str) -> NvmRegion:
        try:
            return self._regions[(pid, name)]
        except KeyError:
            raise AllocationError(f"region {name!r} not mapped for process {pid!r}") from None

    def process_regions(self, pid: str) -> List[NvmRegion]:
        return [r for (p, _), r in sorted(self._regions.items()) if p == pid]

    # -- restart support -----------------------------------------------------------

    def crash_process(self, pid: str) -> None:
        """Drop the *volatile* view of a process (its mapped-region
        objects); persistent store contents and metadata survive.
        Capacity stays reserved — the data is still in NVM."""
        for key in [k for k in self._regions if k[0] == pid]:
            del self._regions[key]

    def load_process(self, pid: str) -> Dict[str, NvmRegion]:
        """Restart path: rebuild region mappings from the persistent
        per-process metadata (§V: 'the information in the metadata
        structure ... is used to load the persistent pages to the
        process address space')."""
        self._charge(SYSCALL_COST)
        meta = self._load_meta(pid)
        out: Dict[str, NvmRegion] = {}
        for name, info in sorted(meta["regions"].items()):
            key = (pid, name)
            if key in self._regions:
                out[name] = self._regions[key]
                continue
            phantom = bool(info.get("phantom", False))
            nbytes = int(info["size"])
            if not phantom and not self.store.exists(f"{pid}/{name}"):
                raise PersistenceError(
                    f"metadata lists region {name!r} for {pid!r} but store has no data"
                )
            region = NvmRegion(self, pid, name, nbytes, phantom)
            self._regions[key] = region
            out[name] = region
        return out

    def known_processes(self) -> List[str]:
        """All pids with persistent metadata (restart discovery)."""
        prefix = self._META_PREFIX
        return sorted(k[len(prefix):] for k in self.store.list_meta() if k.startswith(prefix))

    # -- durability --------------------------------------------------------------------

    def cache_flush(self) -> float:
        """Flush CPU caches + persistent store: everything written so
        far becomes durable.  Returns the (virtual) cost to charge."""
        self.store.flush()
        self.flush_count += 1
        self.accrued_cost += CACHE_FLUSH_COST
        return CACHE_FLUSH_COST

    def take_accrued_cost(self) -> float:
        """Return and reset the accumulated syscall/flush cost."""
        cost, self.accrued_cost = self.accrued_cost, 0.0
        return cost
