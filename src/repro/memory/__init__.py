"""Emulated memory substrate: DRAM/PCM devices, per-core bandwidth
contention, page tables with protection bits, the file/in-memory
persistent store, and the NVM kernel manager (the paper's Linux
extension rebuilt as a library object).
"""

from .device import MemoryDevice
from .bandwidth import CoreContentionModel, make_device_bus
from .persistence import FileStore, InMemoryStore, PersistentStore
from .page import PageTable, StalePageMap
from .nvmm import NvmRegion, NVMKernelManager

__all__ = [
    "MemoryDevice",
    "CoreContentionModel",
    "make_device_bus",
    "PersistentStore",
    "InMemoryStore",
    "FileStore",
    "PageTable",
    "StalePageMap",
    "NVMKernelManager",
    "NvmRegion",
]
