"""Per-core effective bandwidth under contention (Figure 4).

The paper motivates pre-copy with the LANL parallel-memcpy observation:
per-core copy bandwidth drops ~67% from 1 to 12 concurrent processes,
and for a 2 GB/s NVM device the effective per-core write bandwidth in a
12-core node can fall to a few hundred MB/s.  The
:class:`CoreContentionModel` reproduces that curve analytically and
:func:`make_device_bus` turns it into a live processor-sharing resource
for the DES; :func:`measure_host_parallel_memcpy` additionally measures
the *host* machine's real curve (numpy copies release the GIL, so
threads genuinely contend on the memory bus) for the Fig. 4 benchmark.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

import numpy as np

from ..config import BandwidthModelConfig, DeviceConfig
from ..sim.engine import Engine
from ..sim.resources import BandwidthResource

__all__ = [
    "CoreContentionModel",
    "make_device_bus",
    "measure_host_parallel_memcpy",
]


class CoreContentionModel:
    """Effective bandwidth as a function of concurrent writer count.

    ``per_core_rate(n) = min(r1, C_eff(n)/n)`` where ``r1`` is the
    single-core cap and ``C_eff(n) = C / (1 + alpha*(n-1))`` shrinks
    with interference.  See :class:`repro.config.BandwidthModelConfig`.
    """

    def __init__(self, device: DeviceConfig, model: BandwidthModelConfig) -> None:
        self.device = device
        self.model = model
        self.peak = device.write_bandwidth
        self.single_core_cap = model.single_core_fraction * self.peak
        # the DES bus re-evaluates capacity/rate on *every* flow
        # arrival and departure; the domain is tiny (flow counts), so
        # memoizing the curves removes the hottest pure-function work
        # from sweep profiles at zero behavioural cost
        self._capacity_cache: Dict[int, float] = {}
        self._rate_cache: Dict[int, float] = {}
        self._curve_cache: Dict[tuple, List[float]] = {}

    def effective_capacity(self, n_flows: int) -> float:
        """Usable aggregate bandwidth with *n_flows* concurrent writers.

        Raises :class:`ValueError` for ``n_flows <= 0``: tenant shares
        can legitimately drive a partition's flow count to zero, and a
        silent ``peak`` answer there hid double-counting bugs."""
        if n_flows <= 0:
            raise ValueError("n_flows must be >= 1")
        cached = self._capacity_cache.get(n_flows)
        if cached is None:
            cached = self.peak / (1.0 + self.model.alpha * (n_flows - 1))
            self._capacity_cache[n_flows] = cached
        return cached

    def per_core_rate(self, n_flows: int) -> float:
        """Effective bytes/s available to each of *n_flows* writers."""
        if n_flows <= 0:
            raise ValueError("n_flows must be >= 1")
        cached = self._rate_cache.get(n_flows)
        if cached is None:
            cached = min(self.single_core_cap, self.effective_capacity(n_flows) / n_flows)
            self._rate_cache[n_flows] = cached
        return cached

    def aggregate_rate(self, n_flows: int) -> float:
        if n_flows <= 0:
            return 0.0
        return self.per_core_rate(n_flows) * n_flows

    def copy_time(self, nbytes: int, n_flows: int = 1) -> float:
        """Seconds for one of *n_flows* concurrent writers to move
        *nbytes*, including the per-transfer fixed overhead."""
        if n_flows <= 0:
            raise ValueError("n_flows must be >= 1")
        if nbytes <= 0:
            return 0.0
        return self.model.small_block_overhead + nbytes / self.per_core_rate(n_flows)

    def percore_curve(self, max_procs: int, nbytes: int) -> List[float]:
        """Per-core achieved bandwidth (bytes/s) for 1..max_procs
        concurrent copiers of *nbytes* each — the Figure 4 series.
        Memoized: sweep drivers re-request identical curves per cell."""
        key = (max_procs, nbytes)
        cached = self._curve_cache.get(key)
        if cached is None:
            cached = []
            for n in range(1, max_procs + 1):
                t = self.copy_time(nbytes, n)
                cached.append(nbytes / t if t > 0 else 0.0)
            self._curve_cache[key] = cached
        return list(cached)


def make_device_bus(
    engine: Engine,
    device: DeviceConfig,
    model: BandwidthModelConfig,
    name: str = "",
) -> BandwidthResource:
    """A processor-sharing bus for *device* with the contention model
    wired in (per-flow cap + interference capacity function)."""
    contention = CoreContentionModel(device, model)
    return BandwidthResource(
        engine,
        capacity=contention.peak,
        per_flow_cap=contention.single_core_cap,
        capacity_fn=contention.effective_capacity,
        name=name or f"{device.name}-bus",
    )


def measure_host_parallel_memcpy(
    proc_counts: Sequence[int] = (1, 2, 4, 8, 12),
    block_bytes: int = 33 * 1024 * 1024,
    repeats: int = 3,
) -> Dict[int, float]:
    """Measure per-thread memcpy bandwidth on the *host* for increasing
    thread counts — a live rerun of the LANL benchmark behind Fig. 4.

    Returns ``{n_threads: per_thread_bytes_per_second}``.  NumPy's
    ``copyto`` releases the GIL, so threads contend on the real memory
    bus; expect the same monotone per-thread decline as the paper.
    """
    n_items = block_bytes // 8
    results: Dict[int, float] = {}
    for n in proc_counts:
        srcs = [np.random.default_rng(i).random(n_items) for i in range(n)]
        dsts = [np.empty_like(s) for s in srcs]
        per_thread: List[float] = [0.0] * n
        barrier = threading.Barrier(n)

        def worker(idx: int) -> None:
            barrier.wait()
            t0 = time.perf_counter()
            for _ in range(repeats):
                np.copyto(dsts[idx], srcs[idx])
            dt = time.perf_counter() - t0
            per_thread[idx] = repeats * block_bytes / dt if dt > 0 else 0.0

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results[n] = float(np.mean(per_thread))
    return results
