"""Failure injection (§III failure model).

Failures arrive as a merged Poisson process: per-node soft failures at
rate ``1/mtbf_local`` (process/OS crash — node-local NVM survives, the
application recovers from its local checkpoint), hard failures at rate
``1/mtbf_remote`` (node unusable — recovery needs the buddy's remote
copy), and optionally *transient* failures at rate ``1/mtbf_transient``
(link flaps: the node's checkpoint-path connectivity drops for a random
outage window, then heals on its own — no state is lost, but in-flight
remote transfers tear down and the resilience layer must retry).

Draws come from named RNG streams, so a run's failure schedule is a
pure function of the seed.  The transient kind consumes its extra
streams ("failure.outage") only when a transient event actually fires,
and the soft/hard split is scaled so that disabling transients (the
default, ``mtbf_transient = inf``) reproduces the pre-transient
schedule bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import FailureConfig
from ..sim.rng import RngStreams

__all__ = ["FailureEvent", "FailureInjector", "ScriptedInjector"]

SOFT = "soft"
HARD = "hard"
TRANSIENT = "transient"


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure."""

    time: float
    node: int
    kind: str  # "soft" | "hard" | "transient"
    #: outage window for transient failures (0 for soft/hard).
    duration: float = 0.0

    @property
    def is_hard(self) -> bool:
        return self.kind == HARD

    @property
    def is_transient(self) -> bool:
        return self.kind == TRANSIENT


class FailureInjector:
    """Lazy generator of the cluster's failure schedule."""

    def __init__(self, config: FailureConfig, n_nodes: int, rng: Optional[RngStreams] = None) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if config.mtbf_local <= 0 or config.mtbf_remote <= 0:
            raise ValueError(
                f"MTBFs must be positive, got mtbf_local={config.mtbf_local} "
                f"mtbf_remote={config.mtbf_remote}"
            )
        if config.mtbf_transient <= 0:
            raise ValueError(
                f"mtbf_transient must be positive (inf disables), got {config.mtbf_transient}"
            )
        if config.transient_outage_mean <= 0:
            raise ValueError("transient_outage_mean must be positive")
        self.config = config
        self.n_nodes = n_nodes
        self.rng = rng or RngStreams(config.seed)
        lam_soft = n_nodes / config.mtbf_local
        lam_hard = n_nodes / config.mtbf_remote
        lam_transient = (
            0.0 if config.mtbf_transient == float("inf") else n_nodes / config.mtbf_transient
        )
        self.lambda_total = lam_soft + lam_hard + lam_transient
        if not (self.lambda_total > 0.0) or self.lambda_total == float("inf"):
            # both MTBFs infinite (no failures ever: 0/0) or either
            # zero-like (inf rate): there is no valid failure schedule
            raise ValueError(
                "failure rates must be positive and finite "
                f"(mtbf_local={config.mtbf_local}, mtbf_remote={config.mtbf_remote})"
            )
        # extreme mtbf ratios can round the probabilities to exactly
        # 0.0 or 1.0; clamping keeps them probabilities, and
        # next_failure() treats the degenerate endpoints explicitly so
        # rng.random() == 0.0 (which `< p_soft` would misclassify at
        # p_soft == 0) cannot emit the wrong failure kind
        self.p_transient = min(1.0, max(0.0, lam_transient / self.lambda_total))
        # soft share *among soft+hard*: kept relative (as before the
        # transient kind existed) so that p_transient == 0 reproduces
        # the historical schedule exactly
        perm = lam_soft + lam_hard
        self.p_soft = min(1.0, max(0.0, lam_soft / perm)) if perm > 0 else 0.0
        self._clock = 0.0
        self._pending: Optional[FailureEvent] = None
        self.injected: List[FailureEvent] = []

    def next_failure(self) -> FailureEvent:
        """The next failure strictly after the previous one."""
        if self._pending is not None:
            ev, self._pending = self._pending, None
        else:
            gap = self.rng.exponential("failure.gap", 1.0 / self.lambda_total)
            self._clock += gap
            node = int(self.rng.stream("failure.node").integers(0, self.n_nodes))
            # the kind stream is always consumed (schedule determinism
            # does not depend on the kind mix), but the degenerate
            # endpoints are decided without it: numpy's random() can
            # return exactly 0.0, which `< p_soft` would turn into a
            # hard failure even when hard failures are impossible
            draw = self.rng.stream("failure.kind").random()
            duration = 0.0
            if self.p_transient >= 1.0 or (
                self.p_transient > 0.0 and draw >= 1.0 - self.p_transient
            ):
                kind = TRANSIENT
                # the outage stream is touched only on transient events,
                # so enabling them never perturbs soft/hard schedules
                duration = self.rng.exponential(
                    "failure.outage", self.config.transient_outage_mean
                )
            else:
                # draw is uniform on [0, 1 - p_transient) here; scale
                # the soft threshold so P(soft | permanent) stays
                # lam_soft/(lam_soft+lam_hard) and the p_transient == 0
                # case matches the historical classification exactly
                scale = 1.0 - self.p_transient
                if self.p_soft >= 1.0:
                    kind = SOFT
                elif self.p_soft <= 0.0:
                    kind = HARD
                else:
                    kind = SOFT if draw < self.p_soft * scale else HARD
            ev = FailureEvent(time=self._clock, node=node, kind=kind, duration=duration)
        self.injected.append(ev)
        return ev

    def peek(self) -> FailureEvent:
        """Look at the next failure without consuming it."""
        if self._pending is None:
            self._pending = self.next_failure()
            self.injected.pop()
        return self._pending

    def schedule_until(self, horizon: float) -> List[FailureEvent]:
        """All failures up to *horizon* (pre-drawn; deterministic)."""
        out: List[FailureEvent] = []
        while self.peek().time <= horizon:
            out.append(self.next_failure())
        return out

    def expected_failures(self, elapsed: float) -> float:
        return elapsed * self.lambda_total

    @property
    def soft_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == SOFT)

    @property
    def hard_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == HARD)

    @property
    def transient_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == TRANSIENT)


class ScriptedInjector:
    """A drop-in :class:`FailureInjector` stand-in replaying a fixed
    event list — the deterministic way to script "kill this buddy at
    t=60" scenarios in tests and demos.

    Exposes the same ``peek``/``next_failure``/``injected`` surface the
    cluster runner consumes.  After the script is exhausted it reports
    one final event at ``t = inf`` that never fires.
    """

    _SENTINEL = FailureEvent(time=float("inf"), node=0, kind=SOFT)

    def __init__(self, events: Sequence[FailureEvent]) -> None:
        ordered = sorted(events, key=lambda e: e.time)
        for ev in ordered:
            if ev.kind not in (SOFT, HARD, TRANSIENT):
                raise ValueError(f"unknown failure kind {ev.kind!r}")
            if ev.kind == TRANSIENT and ev.duration <= 0:
                raise ValueError("transient events need a positive duration")
        self._script: List[FailureEvent] = ordered
        self._cursor = 0
        self.injected: List[FailureEvent] = []

    def peek(self) -> FailureEvent:
        if self._cursor < len(self._script):
            return self._script[self._cursor]
        return self._SENTINEL

    def next_failure(self) -> FailureEvent:
        ev = self.peek()
        if self._cursor < len(self._script):
            self._cursor += 1
        self.injected.append(ev)
        return ev

    @property
    def soft_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == SOFT)

    @property
    def hard_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == HARD)

    @property
    def transient_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == TRANSIENT)
