"""Failure injection (§III failure model).

Failures arrive as a merged Poisson process: per-node soft failures at
rate ``1/mtbf_local`` (process/OS crash — node-local NVM survives, the
application recovers from its local checkpoint) and hard failures at
rate ``1/mtbf_remote`` (node unusable — recovery needs the buddy's
remote copy).  The ASCI-Q statistic the paper cites (~64% of failures
soft) corresponds to the default rate ratio.

Draws come from a named RNG stream, so a run's failure schedule is a
pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..config import FailureConfig
from ..sim.rng import RngStreams

__all__ = ["FailureEvent", "FailureInjector"]

SOFT = "soft"
HARD = "hard"


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure."""

    time: float
    node: int
    kind: str  # "soft" | "hard"

    @property
    def is_hard(self) -> bool:
        return self.kind == HARD


class FailureInjector:
    """Lazy generator of the cluster's failure schedule."""

    def __init__(self, config: FailureConfig, n_nodes: int, rng: Optional[RngStreams] = None) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.config = config
        self.n_nodes = n_nodes
        self.rng = rng or RngStreams(config.seed)
        lam_soft = n_nodes / config.mtbf_local
        lam_hard = n_nodes / config.mtbf_remote
        self.lambda_total = lam_soft + lam_hard
        self.p_soft = lam_soft / self.lambda_total
        self._clock = 0.0
        self._pending: Optional[FailureEvent] = None
        self.injected: List[FailureEvent] = []

    def next_failure(self) -> FailureEvent:
        """The next failure strictly after the previous one."""
        if self._pending is not None:
            ev, self._pending = self._pending, None
        else:
            gap = self.rng.exponential("failure.gap", 1.0 / self.lambda_total)
            self._clock += gap
            node = int(self.rng.stream("failure.node").integers(0, self.n_nodes))
            kind = SOFT if self.rng.stream("failure.kind").random() < self.p_soft else HARD
            ev = FailureEvent(time=self._clock, node=node, kind=kind)
        self.injected.append(ev)
        return ev

    def peek(self) -> FailureEvent:
        """Look at the next failure without consuming it."""
        if self._pending is None:
            self._pending = self.next_failure()
            self.injected.pop()
        return self._pending

    def schedule_until(self, horizon: float) -> List[FailureEvent]:
        """All failures up to *horizon* (pre-drawn; deterministic)."""
        out: List[FailureEvent] = []
        while self.peek().time <= horizon:
            out.append(self.next_failure())
        return out

    def expected_failures(self, elapsed: float) -> float:
        return elapsed * self.lambda_total

    @property
    def soft_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == SOFT)

    @property
    def hard_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == HARD)
