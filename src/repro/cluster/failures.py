"""Failure injection (§III failure model).

Failures arrive as a merged Poisson process: per-node soft failures at
rate ``1/mtbf_local`` (process/OS crash — node-local NVM survives, the
application recovers from its local checkpoint) and hard failures at
rate ``1/mtbf_remote`` (node unusable — recovery needs the buddy's
remote copy).  The ASCI-Q statistic the paper cites (~64% of failures
soft) corresponds to the default rate ratio.

Draws come from a named RNG stream, so a run's failure schedule is a
pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..config import FailureConfig
from ..sim.rng import RngStreams

__all__ = ["FailureEvent", "FailureInjector"]

SOFT = "soft"
HARD = "hard"


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure."""

    time: float
    node: int
    kind: str  # "soft" | "hard"

    @property
    def is_hard(self) -> bool:
        return self.kind == HARD


class FailureInjector:
    """Lazy generator of the cluster's failure schedule."""

    def __init__(self, config: FailureConfig, n_nodes: int, rng: Optional[RngStreams] = None) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if config.mtbf_local <= 0 or config.mtbf_remote <= 0:
            raise ValueError(
                f"MTBFs must be positive, got mtbf_local={config.mtbf_local} "
                f"mtbf_remote={config.mtbf_remote}"
            )
        self.config = config
        self.n_nodes = n_nodes
        self.rng = rng or RngStreams(config.seed)
        lam_soft = n_nodes / config.mtbf_local
        lam_hard = n_nodes / config.mtbf_remote
        self.lambda_total = lam_soft + lam_hard
        if not (self.lambda_total > 0.0) or self.lambda_total == float("inf"):
            # both MTBFs infinite (no failures ever: 0/0) or either
            # zero-like (inf rate): there is no valid failure schedule
            raise ValueError(
                "failure rates must be positive and finite "
                f"(mtbf_local={config.mtbf_local}, mtbf_remote={config.mtbf_remote})"
            )
        # extreme mtbf ratios can round p_soft to exactly 0.0 or 1.0;
        # clamping keeps it a probability, and next_failure() treats the
        # degenerate endpoints explicitly so rng.random() == 0.0 (which
        # `< p_soft` would misclassify at p_soft == 0) cannot emit the
        # wrong failure kind
        self.p_soft = min(1.0, max(0.0, lam_soft / self.lambda_total))
        self._clock = 0.0
        self._pending: Optional[FailureEvent] = None
        self.injected: List[FailureEvent] = []

    def next_failure(self) -> FailureEvent:
        """The next failure strictly after the previous one."""
        if self._pending is not None:
            ev, self._pending = self._pending, None
        else:
            gap = self.rng.exponential("failure.gap", 1.0 / self.lambda_total)
            self._clock += gap
            node = int(self.rng.stream("failure.node").integers(0, self.n_nodes))
            # the kind stream is always consumed (schedule determinism
            # does not depend on the soft/hard mix), but the degenerate
            # endpoints are decided without it: numpy's random() can
            # return exactly 0.0, which `< p_soft` would turn into a
            # hard failure even when hard failures are impossible
            draw = self.rng.stream("failure.kind").random()
            if self.p_soft >= 1.0:
                kind = SOFT
            elif self.p_soft <= 0.0:
                kind = HARD
            else:
                kind = SOFT if draw < self.p_soft else HARD
            ev = FailureEvent(time=self._clock, node=node, kind=kind)
        self.injected.append(ev)
        return ev

    def peek(self) -> FailureEvent:
        """Look at the next failure without consuming it."""
        if self._pending is None:
            self._pending = self.next_failure()
            self.injected.pop()
        return self._pending

    def schedule_until(self, horizon: float) -> List[FailureEvent]:
        """All failures up to *horizon* (pre-drawn; deterministic)."""
        out: List[FailureEvent] = []
        while self.peek().time <= horizon:
            out.append(self.next_failure())
        return out

    def expected_failures(self, elapsed: float) -> float:
        return elapsed * self.lambda_total

    @property
    def soft_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == SOFT)

    @property
    def hard_count(self) -> int:
        return sum(1 for e in self.injected if e.kind == HARD)
