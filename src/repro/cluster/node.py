"""One simulated compute node: context + ranks + checkpoint machinery.

A node owns a :class:`~repro.core.context.NodeContext` (devices, NVM
bus, CPU cores, kernel manager over its own persistent store) and the
per-rank state: allocator, application binding, local checkpointer.
The remote helper is attached by the cluster builder once buddies are
known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..alloc.nvmalloc import NVAllocator
from ..apps.base import ApplicationModel, RankBinding
from ..config import CheckpointConfig, NodeConfig
from ..core.context import NodeContext, make_standalone_context
from ..core.local import LocalCheckpointer
from ..core.remote import RemoteHelper
from ..memory.persistence import InMemoryStore
from ..metrics.timeline import Timeline
from ..net.interconnect import Fabric
from ..sim.engine import Engine

__all__ = ["ClusterNode", "RankState"]


@dataclass
class RankState:
    """Everything belonging to one application rank."""

    rank: str
    rank_index: int
    node_id: int
    allocator: NVAllocator
    binding: RankBinding
    checkpointer: LocalCheckpointer


class ClusterNode:
    """One node of the simulated testbed."""

    def __init__(
        self,
        node_id: int,
        engine: Engine,
        config: NodeConfig,
        *,
        nvm_write_bandwidth: Optional[float] = None,
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.node_config = config
        self.nvm_write_bandwidth = nvm_write_bandwidth
        self.ctx: NodeContext = make_standalone_context(
            config=config,
            store=InMemoryStore(),
            engine=engine,
            name=f"n{node_id}",
            nvm_write_bandwidth=nvm_write_bandwidth,
        )
        self.ranks: List[RankState] = []
        self.helper: Optional[RemoteHelper] = None
        self.failed = False
        self.incarnation = 0

    # ------------------------------------------------------------------
    # Rank construction.
    # ------------------------------------------------------------------

    def add_rank(
        self,
        rank_index: int,
        app: ApplicationModel,
        ckpt_config: CheckpointConfig,
        *,
        fabric: Optional[Fabric] = None,
        neighbors=(),
        timeline: Optional[Timeline] = None,
        phantom: bool = True,
        destination_factory=None,
        transfer_fn=None,
        stage_to_nvm: bool = True,
        tenant: str = "",
    ) -> RankState:
        """*destination_factory* is ``(ctx, rank, allocator) -> Destination``
        selecting the checkpoint backend (default: the node's NVM shadow
        arena).  ``transfer_fn``/``stage_to_nvm`` are the legacy data-path
        overrides, kept for compatibility.  *tenant* attributes the
        rank's checkpoint traffic in multi-tenant runs."""
        rank = f"r{rank_index}"
        allocator = NVAllocator(
            rank,
            self.ctx.nvmm,
            self.ctx.dram,
            two_versions=ckpt_config.two_versions,
            phantom=phantom,
            clock=lambda: self.engine.now,
        )
        binding = RankBinding(
            rank=rank,
            node_id=self.node_id,
            allocator=allocator,
            engine=self.engine,
            fabric=fabric,
            neighbors=neighbors,
            fault_cost=ckpt_config.precopy.fault_cost,
        )
        app.allocate(binding, rank_index)
        checkpointer = LocalCheckpointer(
            self.ctx,
            allocator,
            ckpt_config.precopy,
            destination=(
                destination_factory(self.ctx, rank, allocator)
                if destination_factory is not None
                else None
            ),
            timeline=timeline,
            with_checksums=ckpt_config.checksums,
            tenant=tenant,
            transfer_fn=transfer_fn(rank) if transfer_fn is not None else None,
            stage_to_nvm=stage_to_nvm,
        )
        state = RankState(
            rank=rank,
            rank_index=rank_index,
            node_id=self.node_id,
            allocator=allocator,
            binding=binding,
            checkpointer=checkpointer,
        )
        self.ranks.append(state)
        return state

    # ------------------------------------------------------------------
    # Failure handling.
    # ------------------------------------------------------------------

    def replace_hardware(self) -> None:
        """Hard failure: the node is swapped for a spare — fresh
        devices, fresh (empty) NVM store, fresh context.  All rank
        state must be rebuilt by the caller (the runner restores data
        from the buddy)."""
        self.incarnation += 1
        self.ctx = make_standalone_context(
            config=self.node_config,
            store=InMemoryStore(),
            engine=self.engine,
            name=f"n{self.node_id}v{self.incarnation}",
            nvm_write_bandwidth=self.nvm_write_bandwidth,
        )
        self.ranks = []
        self.helper = None
        self.failed = False

    def crash_volatile(self) -> None:
        """Soft failure: volatile state dies, NVM store survives
        (unflushed writes roll back)."""
        self.ctx.nvmm.store.crash()
        for state in self.ranks:
            self.ctx.nvmm.crash_process(state.rank)

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def checkpoint_bytes(self) -> int:
        return sum(s.allocator.checkpoint_bytes for s in self.ranks)

    def total_bytes_to_nvm(self) -> int:
        return sum(s.checkpointer.total_bytes_to_nvm for s in self.ranks)

    def total_coordinated_bytes(self) -> int:
        return sum(s.checkpointer.total_coordinated_bytes for s in self.ranks)

    def total_precopy_bytes(self) -> int:
        return sum(s.checkpointer.total_precopy_bytes for s in self.ranks)
