"""The cluster builder: engine + topology + fabric + populated nodes.

Mirrors the paper's testbed by default (8 nodes x 12 cores, 40 Gb/s
IB) but everything scales: rank count, NVM bandwidth (the Fig. 7-9
x-axis), intervals, pre-copy policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps.base import ApplicationModel
from ..config import CheckpointConfig, ClusterConfig
from ..core.remote import RemoteHelper
from ..errors import ClusterError
from ..metrics.timeline import Timeline
from ..net.interconnect import Fabric
from ..net.topology import Topology
from ..sim.engine import Engine
from ..sim.rng import RngStreams
from .node import ClusterNode, RankState

__all__ = ["Cluster"]


class Cluster:
    """A fully wired simulated testbed."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        nvm_write_bandwidth: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or ClusterConfig()
        self.engine = Engine()
        self.rng = RngStreams(seed)
        self.topology = Topology(self.config.nodes, self.config.racks)
        self.fabric = Fabric(self.engine, self.config.nodes, self.config.interconnect)
        self.timeline = Timeline()
        self.nodes: List[ClusterNode] = [
            ClusterNode(
                i,
                self.engine,
                self.config.node,
                nvm_write_bandwidth=nvm_write_bandwidth,
            )
            for i in range(self.config.nodes)
        ]
        self.app: Optional[ApplicationModel] = None
        self.ckpt_config: Optional[CheckpointConfig] = None
        self._built = False

    # ------------------------------------------------------------------
    # Population.
    # ------------------------------------------------------------------

    def build(
        self,
        app: ApplicationModel,
        ckpt_config: CheckpointConfig,
        *,
        ranks_per_node: Optional[int] = None,
        n_nodes_used: Optional[int] = None,
        phantom: bool = True,
        with_remote: bool = True,
        pfs=None,
        compression=None,
        tenancy: Optional[Dict[str, str]] = None,
    ) -> "Cluster":
        """Distribute ranks over nodes and attach checkpoint machinery.

        ``ranks_per_node`` defaults to the node's core count minus one
        when a helper core is reserved (the paper dedicates a core to
        the checkpoint helper).

        ``pfs`` (a :class:`repro.baselines.pfs.PfsModel`) switches the
        coordinated checkpoints to the traditional PFS path: every rank
        writes through the globally shared I/O resource instead of its
        node-local NVM (the baseline the paper's introduction motivates
        against).

        ``tenancy`` maps rank names (``"r0"``, ``"r1"``, ...) to tenant
        names: each rank's checkpoint traffic — local engine, pre-copy
        and the remote helper stream — is stamped with its tenant on
        every ``chunk.copied``/``commit`` trace event, and the runner
        aggregates per-tenant byte/commit metering."""
        if self._built:
            raise ClusterError("cluster already built")
        self.app = app
        self.ckpt_config = ckpt_config
        n_nodes = n_nodes_used or self.config.nodes
        if n_nodes > self.config.nodes:
            raise ClusterError(f"{n_nodes} nodes requested, only {self.config.nodes} exist")
        if ranks_per_node is None:
            reserve = 1 if (ckpt_config.helper_core and with_remote) else 0
            ranks_per_node = self.config.node.cores - reserve
        destination_factory = None
        if pfs is not None:
            from ..core.destination import PfsDestination

            destination_factory = (
                lambda ctx, rank, alloc: PfsDestination(pfs, rank, ctx, alloc)
            )
        rank_index = 0
        for node in self.nodes[:n_nodes]:
            for _ in range(ranks_per_node):
                neighbors = self.topology.neighbors(node.node_id, degree=2)
                node.add_rank(
                    rank_index,
                    app,
                    ckpt_config,
                    fabric=self.fabric,
                    neighbors=[n for n in neighbors if n < n_nodes],
                    timeline=self.timeline,
                    phantom=phantom,
                    destination_factory=destination_factory,
                    tenant=(tenancy or {}).get(f"r{rank_index}", ""),
                )
                rank_index += 1
        if with_remote:
            for node in self.nodes[:n_nodes]:
                buddy_id = self.topology.buddy_of(node.node_id)
                if buddy_id >= n_nodes:
                    buddy_id = (node.node_id + 1) % n_nodes
                node.helper = RemoteHelper(
                    node.node_id,
                    node.ctx,
                    self.fabric,
                    buddy_id,
                    self.nodes[buddy_id].ctx,
                    [s.allocator for s in node.ranks],
                    ckpt_config,
                    timeline=self.timeline,
                    compression=compression,
                    tenants={
                        s.rank: s.checkpointer.tenant
                        for s in node.ranks
                        if s.checkpointer.tenant
                    },
                )
                # the remote stream's prediction rhythm follows each
                # rank's local checkpoints
                for state in node.ranks:
                    state.checkpointer.on_complete.append(
                        self._make_local_ckpt_hook(node, state.rank)
                    )
        self._built = True
        return self

    def _make_local_ckpt_hook(self, node: ClusterNode, rank: str):
        def hook(stats) -> None:
            if node.helper is not None:
                node.helper.notify_local_checkpoint(rank)

        return hook

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    @property
    def active_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.ranks]

    def all_ranks(self) -> List[RankState]:
        out: List[RankState] = []
        for node in self.nodes:
            out.extend(node.ranks)
        return out

    @property
    def n_ranks(self) -> int:
        return sum(len(n.ranks) for n in self.nodes)

    def node_of_rank(self, rank: str) -> ClusterNode:
        for node in self.nodes:
            for s in node.ranks:
                if s.rank == rank:
                    return node
        raise ClusterError(f"unknown rank {rank!r}")

    def helpers(self) -> List[RemoteHelper]:
        return [n.helper for n in self.nodes if n.helper is not None]

    # ------------------------------------------------------------------
    # Aggregate accounting.
    # ------------------------------------------------------------------

    def total_bytes_to_nvm(self) -> int:
        return sum(n.total_bytes_to_nvm() for n in self.nodes)

    def total_remote_bytes(self) -> int:
        return sum(h.total_remote_bytes for h in self.helpers())

    def checkpoint_bytes(self) -> int:
        return sum(n.checkpoint_bytes for n in self.nodes)
