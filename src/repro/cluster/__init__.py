"""The simulated testbed: nodes, the cluster builder, a minimal MPI-like
coordination layer (barriers for coordinated checkpoints), failure
injection and the end-to-end experiment runner.
"""

from .mpi import Barrier
from .failures import FailureEvent, FailureInjector, ScriptedInjector
from .membership import MembershipController, MembershipEvent
from .node import ClusterNode, RankState
from .cluster import Cluster
from .runner import ClusterRunner, RunResult

__all__ = [
    "Barrier",
    "FailureEvent",
    "FailureInjector",
    "ScriptedInjector",
    "MembershipController",
    "MembershipEvent",
    "ClusterNode",
    "RankState",
    "Cluster",
    "ClusterRunner",
    "RunResult",
]
