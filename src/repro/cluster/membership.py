"""Planned cluster membership: joins and drains, alongside crash
failures (:mod:`repro.cluster.failures`).

A :class:`MembershipEvent` is an *operator action*, not a fault: a node
**joins** the buddy pool (new capacity — remote copies rebalance onto
it) or **drains** for decommission (its hosted copies evacuate first;
it departs only once nothing checkpoints to it anymore).  The
:class:`MembershipController` DES process replays a scripted schedule
against the live :class:`~repro.resilience.directory.BuddyDirectory`,
asks the :class:`~repro.resilience.migration.MigrationPlanner` for the
per-node moves each event implies, and hands the plans to the runner's
migration launcher.  Ownership changes happen at migration *cutover* —
never here — so a failed or aborted migration leaves the old pairing
protecting the source.

Membership is checkpoint-layer elasticity: application ranks stay where
they are; what moves is the buddy-hosting role (who holds whose remote
copies).  A spare node built with ``n_nodes_used < nodes`` is the
natural join candidate — it has NVM and fabric connectivity but no
ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ClusterError
from ..metrics.trace import BUS, MembershipChangeEvent

__all__ = ["JOIN", "DRAIN", "MembershipEvent", "MembershipController"]

JOIN = "join"
DRAIN = "drain"


@dataclass(frozen=True)
class MembershipEvent:
    """One planned membership change."""

    time: float
    node: int
    action: str  # "join" | "drain"

    def __post_init__(self) -> None:
        if self.action not in (JOIN, DRAIN):
            raise ClusterError(
                f"unknown membership action {self.action!r} (join|drain)"
            )


class MembershipController:
    """Replays a membership schedule against the live directory.

    ``launch_migration(plan, done)`` is the runner's hook: it must
    either start a :class:`~repro.resilience.migration.MigrationTask`
    for the plan and arrange for ``done(plan, completed)`` to be called
    exactly once when the task cuts over or aborts, or return ``False``
    when the plan cannot start (source helper gone / already
    retargeted) — the controller then counts the move as failed.
    """

    def __init__(
        self,
        engine,
        directory,
        schedule: Sequence[MembershipEvent],
        *,
        planner=None,
        launch_migration: Optional[Callable] = None,
        on_change: Optional[Callable[[MembershipEvent], None]] = None,
    ) -> None:
        self.engine = engine
        self.directory = directory
        self.schedule: List[MembershipEvent] = sorted(
            schedule, key=lambda e: (e.time, e.node, e.action)
        )
        self.planner = planner
        self.launch_migration = launch_migration
        self.on_change = on_change
        self.joins = 0
        self.drains = 0
        self.departs = 0
        self.plans_issued = 0
        self.moves_completed = 0
        self.moves_failed = 0
        #: draining node -> outstanding evacuation migrations
        self._pending_drains: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # The DES process.
    # ------------------------------------------------------------------

    def run(self):
        for ev in self.schedule:
            if ev.time > self.engine.now:
                yield self.engine.timeout(ev.time - self.engine.now)
            self.apply(ev)

    def apply(self, ev: MembershipEvent) -> None:
        if ev.action == JOIN:
            self._join(ev)
        else:
            self._drain(ev)
        if self.on_change is not None:
            self.on_change(ev)

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------

    def _emit(self, node: int, action: str, moves: int) -> None:
        if BUS.active:
            BUS.emit(
                MembershipChangeEvent(
                    t=self.engine.now,
                    actor="membership",
                    node=node,
                    action=action,
                    moves=moves,
                )
            )

    def _launch(self, plans) -> int:
        started = 0
        for plan in plans:
            self.plans_issued += 1
            if self.launch_migration is not None and self.launch_migration(
                plan, self._move_done
            ):
                started += 1
            else:
                self.moves_failed += 1
        return started

    def _join(self, ev: MembershipEvent) -> None:
        self.directory.admit(ev.node)
        self.joins += 1
        plans = self.planner.plan_join(ev.node) if self.planner is not None else []
        started = self._launch(plans)
        self._emit(ev.node, JOIN, started)

    def _drain(self, ev: MembershipEvent) -> None:
        self.directory.retire(ev.node)
        self.drains += 1
        plans = self.planner.plan_drain(ev.node) if self.planner is not None else []
        started = self._launch(plans)
        if started:
            self._pending_drains[ev.node] = started
        else:
            self._try_depart(ev.node)
        self._emit(ev.node, DRAIN, started)

    # ------------------------------------------------------------------
    # Migration completion plumbing.
    # ------------------------------------------------------------------

    def _move_done(self, plan, completed: bool) -> None:
        """Called once per launched plan, at cutover or abort."""
        if completed:
            self.moves_completed += 1
        else:
            self.moves_failed += 1
        if plan.reason == "drain" and plan.from_buddy in self._pending_drains:
            self._pending_drains[plan.from_buddy] -= 1
            if self._pending_drains[plan.from_buddy] <= 0:
                del self._pending_drains[plan.from_buddy]
                self._try_depart(plan.from_buddy)

    def _try_depart(self, node: int) -> None:
        """Depart once nothing checkpoints to the node anymore.  An
        aborted evacuation leaves an orphan behind: the node stays
        retired (hosting, but no new pairings) rather than abandoning
        the copies."""
        if self.directory.depart(node):
            self.departs += 1
            self._emit(node, "depart", 0)
