"""Per-phase logic of a cluster run.

The orchestration shell — process lifecycle, the job loop, background
machinery, result collection — lives in
:mod:`repro.cluster.runner`.  This module holds what happens *inside*
a run: the compute/barrier/checkpoint segment every rank executes each
iteration, and the failure phases (transient outage, soft reboot, hard
replace, orphan re-pairing and background re-sync).

Every function takes the :class:`~repro.cluster.runner.ClusterRunner`
as its first argument and operates on its state; the runner exposes
thin delegating methods so existing callers (and tests) are
unaffected.  Generator functions are DES fragments — drive them with
``yield from``.
"""

from __future__ import annotations

from ..metrics import timeline as tl
from ..metrics.trace import BUS, FailoverEvent
from .failures import FailureEvent
from .node import ClusterNode, RankState

__all__ = [
    "SOFT_REBOOT_DELAY",
    "HARD_REPLACE_DELAY",
    "segment",
    "apply_transient",
    "handle_failure",
    "buddy_capacity_ok",
    "orphan_failover",
    "repair_orphan",
    "resync_proc",
    "start_migration",
    "migration_proc",
    "recover_soft",
    "fetch_source_for",
    "recover_hard",
]

#: seconds a node takes to reboot after a soft failure before it can
#: fetch its checkpoint (OS + process respawn).
SOFT_REBOOT_DELAY = 5.0
#: seconds to swap in replacement hardware after a hard failure.
HARD_REPLACE_DELAY = 30.0


# ----------------------------------------------------------------------
# The per-iteration segment.
# ----------------------------------------------------------------------


def segment(runner, state: RankState, iteration: int):
    """One rank's iteration: compute (+writes +communication), a
    global barrier, then the coordinated local checkpoint."""
    t0 = runner.cluster.engine.now
    yield from runner.app.compute_iteration(state.binding, iteration)
    runner.cluster.timeline.record(
        state.rank, tl.COMPUTE, t0, runner.cluster.engine.now
    )
    yield runner.barrier.wait()
    if runner.local_checkpoints:
        yield from state.checkpointer.checkpoint(blocking=False)


# ----------------------------------------------------------------------
# Failure phases.
# ----------------------------------------------------------------------


def apply_transient(runner, ev: FailureEvent) -> None:
    """A link flap on one node's checkpoint path: fail its in-flight
    checkpoint transfers, fail-fast new ones, and schedule the heal."""
    engine = runner.cluster.engine
    fabric = runner.cluster.fabric
    runner.transient_failures += 1
    node_id = ev.node
    fabric.begin_outage(node_id)
    end = engine.now + ev.duration
    engine.call_at(end, lambda: fabric.end_outage(node_id))
    if runner.cluster.timeline is not None:
        runner.cluster.timeline.record(f"n{node_id}", tl.OUTAGE, engine.now, end)


def handle_failure(runner, ev: FailureEvent, procs):
    engine = runner.cluster.engine
    t0 = engine.now
    node = runner.cluster.nodes[ev.node]
    # stop the world: kill rank processes, break the barrier, tear
    # down in-flight traffic
    for p in procs:
        p.kill()
    runner.barrier.reset()
    for n in runner.cluster.active_nodes:
        n.ctx.nvm_bus.cancel_matching(None)
    for lp in runner.cluster.fabric.links:
        lp.egress.cancel_matching(None)
        lp.ingress.cancel_matching(None)
    for state in runner.cluster.all_ranks():
        if state.checkpointer.precopy is not None:
            state.checkpointer.precopy.pause()
    if ev.kind == "soft":
        runner.soft_failures += 1
        yield from recover_soft(runner, node)
        rollback = runner.committed_iteration
    else:
        runner.hard_failures += 1
        if runner.directory is not None:
            runner.directory.mark_failed(node.node_id)
            # until the replacement boots, the node is unreachable
            # on the checkpoint path (heartbeats to it fail fast)
            runner.cluster.fabric.begin_outage(node.node_id)
            orphan_failover(runner, node)
        rollback = yield from recover_hard(runner, node)
    runner.iterations_recomputed += max(0, runner.committed_iteration - rollback)
    runner.committed_iteration = rollback
    # reset chunk dirty state: DRAM now matches the rollback point.
    # With migration bookkeeping on, a chunk whose current buddy holds
    # its latest commit generation is *provably* still covered (rollback
    # restores committed state, which is exactly what was streamed), so
    # only epoch-mismatched chunks re-dirty — the incremental-failover
    # saving.  Without it, conservatively re-dirty everything.
    held_by_pid = {}
    if runner.migration_enabled:
        for n in runner.cluster.active_nodes:
            h = n.helper
            if h is None:
                continue
            held = h._replicated.get(h.buddy_id, {})
            for a in h.ranks:
                held_by_pid[a.pid] = (h, held)
    for state in runner.cluster.all_ranks():
        entry = held_by_pid.get(state.allocator.pid)
        for chunk in state.allocator.chunks():
            fresh = chunk.committed_version < 0
            chunk.dirty_local = fresh
            if entry is None:
                chunk.dirty_remote = True
            else:
                h, held = entry
                key = (state.allocator.pid, chunk.chunk_id)
                chunk.dirty_remote = held.get(key) != h._dirty_epoch.get(key, 0)
            chunk.protected = not fresh
            chunk.begin_interval()
        if state.checkpointer.precopy is not None:
            state.checkpointer.precopy.begin_interval()
            state.checkpointer.precopy.resume()
        state.checkpointer.last_checkpoint_end = engine.now
    # the dirty-state reset above re-dirtied chunks; nodes mid-re-sync
    # must re-cover them through the same drain
    for nid in runner._resyncing:
        h = runner.cluster.nodes[nid].helper
        if h is not None:
            if runner.migration_enabled:
                h.enqueue_unreplicated()
            else:
                h.enqueue_all()
    runner.recovery_time += engine.now - t0
    if runner.cluster.timeline is not None:
        runner.cluster.timeline.record(f"n{ev.node}", tl.RESTART, t0, engine.now)


def buddy_capacity_ok(runner, orphan_id: int, candidate_id: int, pending=()) -> bool:
    """Can the candidate's NVM hold the orphan's remote copies on
    top of what it already hosts?  Re-pairing doubles the buddy
    load, and on capacity-tight configs the only viable host is the
    (empty) replacement hardware — the deferred-repair path.
    ``pending`` names sources a planner sweep has already routed onto
    the candidate; their copies are in flight but not yet on the
    device, so the gate must hold for the combined footprint."""
    n_versions = 2 if runner.ckpt_config.two_versions else 1
    needed = 0
    for nid in (orphan_id, *pending):
        helper = runner.cluster.nodes[nid].helper
        if helper is None:
            continue
        needed += n_versions * sum(
            sum(c.nbytes for c in a.persistent_chunks()) for a in helper.ranks
        )
    return runner.cluster.nodes[candidate_id].ctx.nvmm.device.free >= needed


def orphan_failover(runner, dead: ClusterNode) -> None:
    """Nodes whose buddy just died hard: enter degraded mode, then
    re-pair to a healthy neighbor where one exists (a re-sync
    rebuilds protection in the background).  With no healthy
    candidate (2-node cluster) the repair waits for the
    replacement hardware."""
    for n in runner.cluster.active_nodes:
        h = n.helper
        if n is dead or h is None or h.buddy_id != dead.node_id:
            continue
        ctrl = runner.controllers.get(n.node_id)
        if ctrl is not None:
            ctrl.enter("buddy-failed")
        h.pause_rounds()
        new_buddy = runner.directory.repair(
            n.node_id, fits=lambda o, c: buddy_capacity_ok(runner, o, c)
        )
        if new_buddy is None:
            runner._deferred_orphans.append(n.node_id)
        else:
            repair_orphan(runner, n.node_id, new_buddy)


def repair_orphan(runner, orphan_id: int, new_buddy: int) -> None:
    """Re-point an orphan's helper (and monitor) at its new buddy
    and start the background re-sync of committed chunks."""
    from ..resilience import ResyncTask

    engine = runner.cluster.engine
    node = runner.cluster.nodes[orphan_id]
    helper = node.helper
    if helper is None:
        return
    # with migration bookkeeping on, failing over to a buddy that was
    # streamed to before re-sends only the chunks whose commit
    # generation moved — not the full footprint
    helper.retarget(
        new_buddy,
        runner.cluster.nodes[new_buddy].ctx,
        incremental=runner.migration_enabled,
    )
    monitor = runner.monitors.get(orphan_id)
    if monitor is not None:
        monitor.retarget(new_buddy)
    rcfg = runner.ckpt_config.resilience
    task = ResyncTask(
        helper,
        timeline=runner.cluster.timeline,
        failure_limit=rcfg.resync_failure_limit,
    )
    runner._resyncing[orphan_id] = task
    runner._bg_procs.append(
        engine.process(
            resync_proc(runner, orphan_id, task), name=f"n{orphan_id}:resync"
        )
    )


def resync_proc(runner, node_id: int, task):
    try:
        yield from task.run()
    finally:
        if runner._resyncing.get(node_id) is task:
            del runner._resyncing[node_id]
    if task.completed:
        runner.resyncs_completed += 1
        runner.resync_bytes += task.bytes_sent
        ctrl = runner.controllers.get(node_id)
        if ctrl is not None:
            ctrl.exit()
    elif task.failure_limited:
        # the failure budget ran out (not a newer retarget): the node
        # is still unprotected — keep it in degraded mode until a later
        # repair or recovery succeeds
        runner.resyncs_aborted += 1
        ctrl = runner.controllers.get(node_id)
        if ctrl is not None:
            ctrl.enter("resync-aborted")


def start_migration(runner, plan, done) -> bool:
    """Launch a bounded-batch live migration for one plan (the
    membership controller's hook).  Returns False when the plan can no
    longer start — source helper gone, or its pairing already moved on
    from what the planner saw."""
    from ..resilience.migration import MigrationTask

    engine = runner.cluster.engine
    node = runner.cluster.nodes[plan.node]
    helper = node.helper
    if helper is None or helper.buddy_id != plan.from_buddy:
        return False
    if plan.node in runner._resyncing:
        # a re-sync owns the helper's queue right now; migrating the
        # pairing out from under it would race the drain
        return False
    mcfg = runner.ckpt_config.resilience.migration

    def on_cutover(task) -> None:
        runner.migrations_completed += 1
        runner.migration_bytes_total += task.bytes_sent
        runner.directory.rebind(plan.node, plan.to_buddy)
        monitor = runner.monitors.get(plan.node)
        if monitor is not None:
            monitor.retarget(plan.to_buddy)
        done(plan, True)

    def on_abort(task) -> None:
        runner.migrations_aborted += 1
        done(plan, False)

    task = MigrationTask(
        helper,
        plan,
        runner.cluster.nodes[plan.to_buddy].ctx,
        batch_bytes=mcfg.batch_bytes,
        guard=runner.slo_guard,
        timeline=runner.cluster.timeline,
        check_interval=mcfg.slo_check_interval,
        pace_fraction=mcfg.pace_fraction,
        failure_limit=mcfg.failure_limit,
        retry_pause=mcfg.retry_pause,
        on_cutover=on_cutover,
        on_abort=on_abort,
    )
    runner._migrations.append(task)
    runner._bg_procs.append(
        engine.process(
            migration_proc(runner, task),
            name=f"n{plan.node}:migrate->{plan.to_buddy}",
        )
    )
    return True


def migration_proc(runner, task):
    yield from task.run()


def recover_soft(runner, node: ClusterNode):
    """Reboot + all ranks reload their committed local checkpoint."""
    engine = runner.cluster.engine
    node.ctx.nvmm.store.crash()  # unflushed writes die with the node
    yield engine.timeout(SOFT_REBOOT_DELAY)
    factor = (
        runner.failure_config.local_restart_factor if runner.failure_config else 1.0
    )
    fetches = []
    for n in runner.cluster.active_nodes:
        fetches.extend(
            n.ctx.nvm_bus.transfer_many(
                [
                    (state.allocator.checkpoint_bytes * factor, f"{state.rank}:restart")
                    for state in n.ranks
                ]
            )
        )
    if fetches:
        yield engine.all_of(fetches)


def fetch_source_for(runner, node: ClusterNode, old_helper) -> int:
    """Which node holds the dead node's remote copies (and becomes
    the replacement's buddy)?  The live directory when resilience is
    on; otherwise the helper's own pairing, falling back to the
    topology — never an index into ``active_nodes`` (which can
    self-pair or point at a dead slot)."""
    if runner.directory is not None:
        repaired = runner.directory.repair(
            node.node_id, fits=lambda o, c: buddy_capacity_ok(runner, o, c)
        )
        if repaired is not None:
            return repaired
    if old_helper is not None:
        return old_helper.buddy_id
    buddy_id = runner.cluster.topology.buddy_of(node.node_id)
    if buddy_id != node.node_id and runner.cluster.nodes[buddy_id].ranks:
        return buddy_id
    others = [
        n.node_id for n in runner.cluster.active_nodes if n.node_id != node.node_id
    ]
    if not others:
        return node.node_id
    n_nodes = runner.cluster.topology.n_nodes
    return min(others, key=lambda m: (m - node.node_id) % n_nodes)


def recover_hard(runner, node: ClusterNode):
    """Replace the node, refetch its ranks' state from the buddy,
    survivors reload locally; roll back to the remote capture."""
    from ..core.remote import RemoteHelper

    engine = runner.cluster.engine
    # which iteration did the buddy last capture for this node?
    rollback = 0
    if not node.ranks:
        # a rank-less buddy host (a spare admitted via membership) lost
        # no application state: survivors keep their committed progress
        # and only the copies it hosted must be re-covered (failover)
        rollback = runner.committed_iteration
    elif node.helper is not None and node.helper.history:
        last_start = node.helper.history[-1].start
        for t, it in runner._committed_log:
            if t <= last_start:
                rollback = it
    old_helper = node.helper
    old_rank_indices = [s.rank_index for s in node.ranks]
    # a rank-less node has no state to fetch — and asking the directory
    # would spuriously re-pair it as a source
    buddy_id = fetch_source_for(runner, node, old_helper) if node.ranks else None
    # stop machinery owned by the dead node
    for state in node.ranks:
        state.checkpointer.stop_background()
    if old_helper is not None:
        old_helper.stop()
    # replacement hardware
    yield engine.timeout(HARD_REPLACE_DELAY)
    node.replace_hardware()
    if runner.directory is not None:
        runner.directory.mark_recovered(node.node_id)
        runner.cluster.fabric.end_outage(node.node_id)
    # rebuild ranks on the fresh node
    for rank_index in old_rank_indices:
        neighbors = [
            n
            for n in runner.cluster.topology.neighbors(node.node_id, degree=2)
            if runner.cluster.nodes[n].ranks
        ]
        node.add_rank(
            rank_index,
            runner.app,
            runner.ckpt_config,
            fabric=runner.cluster.fabric,
            neighbors=neighbors,
            timeline=runner.cluster.timeline,
            phantom=True,
        )
    # fetch the dead node's state from the buddy; survivors reload locally
    factor = (
        runner.failure_config.remote_restart_factor if runner.failure_config else 1.0
    )
    fetches = []
    for state in node.ranks:
        fetches.append(
            runner.cluster.fabric.transfer(
                buddy_id,
                node.node_id,
                state.allocator.checkpoint_bytes * factor,
                tag=f"{state.rank}:rfetch",
            )
        )
    for n in runner.cluster.active_nodes:
        if n is node:
            continue
        fetches.extend(
            n.ctx.nvm_bus.transfer_many(
                [
                    (state.allocator.checkpoint_bytes, f"{state.rank}:restart")
                    for state in n.ranks
                ]
            )
        )
    if fetches:
        yield engine.all_of(fetches)
    # new background machinery for the replacement node
    if runner.ckpt_config is not None and old_helper is not None:
        node.helper = RemoteHelper(
            node.node_id,
            node.ctx,
            runner.cluster.fabric,
            buddy_id,
            runner.cluster.nodes[buddy_id].ctx,
            [s.allocator for s in node.ranks],
            runner.ckpt_config,
            timeline=runner.cluster.timeline,
            resilience=runner.transports.get(node.node_id),
        )
        node.helper.start_background()
        runner._bg_procs.append(
            engine.process(node.helper.run(), name=f"{node.helper.owner}:rounds")
        )
        # the rebuilt checkpointers must feed the new helper's
        # stream queue, like Cluster.build wired the originals
        for state in node.ranks:
            state.checkpointer.on_complete.append(
                runner.cluster._make_local_ckpt_hook(node, state.rank)
            )
            runner._attach_slo_observer(state)
        if runner.directory is not None:
            runner.directory._buddy[node.node_id] = buddy_id
            monitor = runner.monitors.get(node.node_id)
            if monitor is not None:
                # retarget resets health silently (no up-transition
                # fires), so leave degraded mode explicitly: the
                # replacement has a healthy buddy again
                monitor.retarget(buddy_id)
            ctrl = runner.controllers.get(node.node_id)
            if ctrl is not None:
                ctrl.exit()
    if runner.local_checkpoints:
        for state in node.ranks:
            state.checkpointer.start_background()
    if runner.directory is not None:
        # orphans that had no healthy re-pair candidate wait for
        # the replacement: repair them now (typically back onto the
        # replacement hardware)
        deferred, runner._deferred_orphans = runner._deferred_orphans, []
        for orphan_id in deferred:
            new_buddy = runner.directory.repair(
                orphan_id, fits=lambda o, c: buddy_capacity_ok(runner, o, c)
            )
            if new_buddy is not None:
                repair_orphan(runner, orphan_id, new_buddy)
            else:
                runner._deferred_orphans.append(orphan_id)
    else:
        # helpers that used the dead node as their buddy lost their
        # remote copies: re-point them at the replacement hardware
        for n in runner.cluster.active_nodes:
            h = n.helper
            if h is not None and h.buddy_id == node.node_id and n is not node:
                from ..core.remote import RemoteTarget

                h.buddy_ctx = node.ctx
                h.targets = {
                    a.pid: RemoteTarget(
                        a.pid, node.ctx, two_versions=runner.ckpt_config.two_versions
                    )
                    for a in h.ranks
                }
                for pid, target in h.targets.items():
                    dest = h.destinations.get(pid)
                    if dest is not None:
                        dest.retarget(target)
                    else:
                        h.destinations[pid] = h._make_destination(pid, target)
                if BUS.active:
                    BUS.emit(
                        FailoverEvent(
                            t=engine.now,
                            actor=h.owner,
                            from_target=f"n{node.node_id}",
                            to_target=f"n{node.node_id}",
                            reason="buddy hardware replaced",
                        )
                    )
                # every remote copy on the dead buddy is gone:
                # everything must be re-sent
                h.enqueue_all()
    return rollback
