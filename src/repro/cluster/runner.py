"""End-to-end experiment runner.

Drives a built :class:`~repro.cluster.cluster.Cluster` through N
application iterations with coordinated local checkpoints, background
remote checkpointing, and (optionally) injected failures with full
recovery:

* **soft failure** — the node's volatile state dies; after a reboot
  delay every rank reloads its committed checkpoint from node-local
  NVM (transfers simulated on the NVM buses) and the run rolls back to
  the last locally-committed iteration;
* **hard failure** — the node is replaced with fresh hardware; its
  ranks' state is fetched from the buddy's committed remote copies
  over the fabric, survivors reload locally, and the run rolls back to
  the last *remotely*-captured iteration (the K(I+t_lcl)/2 recompute
  term of §III);
* **transient failure** — a link flap: the node's checkpoint-path
  connectivity drops for the event's outage window and heals on its
  own.  No state is lost and the application keeps computing, but
  in-flight remote transfers tear down and the resilience layer
  (:mod:`repro.resilience`) must retry them.

When the checkpoint config's :class:`~repro.config.ResilienceConfig`
is enabled *and* failures are injected, the runner wires the
resilience layer in: per-node retrying transports around the helpers'
RDMA sends, buddy heartbeat monitors, a live
:class:`~repro.resilience.directory.BuddyDirectory` that re-pairs
orphaned nodes, paced background re-sync of committed chunks to the
new buddy, and per-node degraded-mode controllers that drop to
local-only checkpointing (with a model-re-solved interval) while a
node has no healthy remote target.

Simulation-scale note: in cluster runs chunks are *phantom* (sizes and
dirty state, no payloads) and soft restart reuses the in-memory rank
objects, charging the restart transfers; the object-level
crash-and-rebuild path is exercised by the functional API tests
instead.  Timing, traffic and rollback behaviour — what the paper's
evaluation measures — are fully simulated here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..config import FailureConfig, PrecopyPolicy
from ..errors import ClusterError, ProcessKilled
from ..metrics import timeline as tl
from ..sim.rng import RngStreams
from . import phases
from .cluster import Cluster
from .failures import FailureEvent, FailureInjector
from .mpi import Barrier
from .node import ClusterNode, RankState

__all__ = ["ClusterRunner", "RunResult"]

# Re-exported for backward compatibility: the recovery-phase logic
# (and its timing constants) lives in repro.cluster.phases.
SOFT_REBOOT_DELAY = phases.SOFT_REBOOT_DELAY
HARD_REPLACE_DELAY = phases.HARD_REPLACE_DELAY


@dataclass
class RunResult:
    """Everything a benchmark needs from one run."""

    app_name: str = ""
    policy_mode: str = ""
    remote_precopy: bool = False
    n_ranks: int = 0
    n_nodes: int = 0
    iterations: int = 0
    total_time: float = 0.0
    #: pure-compute seconds per iteration (the app model's target)
    compute_per_iteration: float = 0.0

    # -- local checkpointing --
    coordinated_bytes: int = 0
    local_precopy_bytes: int = 0
    #: coordinated bytes page-granular extents did NOT move
    bytes_saved: int = 0
    total_nvm_bytes: int = 0
    local_ckpt_time_avg: float = 0.0  # mean coordinated duration per rank-ckpt
    local_ckpt_time_total: float = 0.0  # T_lcl averaged over ranks
    local_checkpoints: int = 0
    fault_time_total: float = 0.0

    # -- remote checkpointing --
    remote_rounds: int = 0
    remote_round_bytes: int = 0
    remote_precopy_bytes: int = 0
    helper_utilization: float = 0.0
    rounds_behind: int = 0

    # -- fabric --
    fabric_peak_window_bytes: float = 0.0
    #: peak per-window volume of checkpoint traffic only (Fig. 10)
    fabric_ckpt_peak_window_bytes: float = 0.0
    fabric_app_bytes: float = 0.0
    fabric_ckpt_bytes: float = 0.0
    #: checkpoint-traffic bytes per window over the run (Fig. 10 series)
    fabric_series: List[Tuple[float, float]] = field(default_factory=list)

    # -- failures --
    soft_failures: int = 0
    hard_failures: int = 0
    transient_failures: int = 0
    recovery_time: float = 0.0
    iterations_recomputed: int = 0

    # -- resilience layer --
    #: retried transfer attempts across all node transports
    transfer_retries: int = 0
    #: transfers that exhausted their retry budget
    transfers_abandoned: int = 0
    #: per-attempt stall timeouts that cancelled and re-issued a flow
    transfer_timeouts: int = 0
    heartbeats_sent: int = 0
    #: buddy down-transitions observed by the health monitors
    buddy_down_detections: int = 0
    #: orphan re-pairings performed by the buddy directory
    buddy_repairs: int = 0
    resyncs_completed: int = 0
    resync_bytes: int = 0
    degraded_entries: int = 0
    degraded_time_total: float = 0.0

    # -- online policy autotuning --
    autotune_switches: int = 0
    autotune_nudges: int = 0
    #: final per-rank policy modes, comma-joined and deduplicated
    autotune_final_policy: str = ""

    # -- payload codec (delta/dedup representation layer) --
    #: set when a non-raw codec was configured; gates the extra
    #: ``codec`` block in :meth:`to_dict` so raw runs (goldens, caches,
    #: sweeps) stay byte-identical
    codec: bool = False
    codec_name: str = "raw"
    #: pre-encoding bytes the copy paths would have moved raw
    codec_logical_bytes: int = 0
    #: bytes actually charged to the NVM bus / fabric
    codec_wire_bytes: int = 0
    #: delta payloads' genuinely-changed bytes
    codec_delta_bytes: int = 0
    codec_blocks_new: int = 0
    codec_blocks_ref: int = 0

    # -- elastic membership / live migration --
    #: set when the run had a membership schedule; gates the extra
    #: ``membership`` block in :meth:`to_dict` so runs without elastic
    #: membership (goldens, caches, sweeps) stay byte-identical
    elastic: bool = False
    membership_joins: int = 0
    membership_drains: int = 0
    membership_departs: int = 0
    migrations_planned: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    migration_batches: int = 0
    migration_bytes: int = 0
    #: batches delayed because checkpoint latency neared the SLO
    migration_slo_pauses: int = 0
    migration_throttled_batches: int = 0
    #: worst per-interval coordinated-checkpoint latency observed
    migration_max_ckpt_latency: float = 0.0
    #: re-sync tasks that exhausted their failure budget (node left
    #: degraded) — also surfaced as ``resync.aborted`` trace events
    resyncs_aborted: int = 0

    # -- multi-tenant metering --
    #: set when any rank carried a tenant label; gates the extra
    #: ``tenants`` block in :meth:`to_dict` so untenanted runs
    #: (goldens, caches, sweeps) stay byte-identical
    tenants: bool = False
    #: tenant -> {ranks, checkpoints, coordinated_bytes, precopy_bytes,
    #: bytes_saved} aggregated over the tenant's ranks
    tenant_metering: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- engine throughput --
    #: DES items (events + callbacks) the engine dispatched for this
    #: run.  Host-dependent denominator for the bench ``scale`` block;
    #: deliberately NOT part of ``to_dict()`` so cached records, sweep
    #: CSVs and golden fixtures stay byte-identical across hosts.
    sim_events: int = 0

    timeline: object = None

    @property
    def ideal_time(self) -> float:
        """Lower bound: compute only, no checkpoints/contention."""
        return self.iterations * self.compute_per_iteration

    def efficiency_vs(self, ideal: "RunResult") -> float:
        """The paper's efficiency metric: ideal runtime / actual."""
        if self.total_time <= 0:
            return 0.0
        return ideal.total_time / self.total_time

    @property
    def checkpoint_overhead_fraction(self) -> float:
        """(actual - ideal) / ideal against the analytic lower bound."""
        ideal = self.ideal_time
        if ideal <= 0:
            return 0.0
        return (self.total_time - ideal) / ideal

    def to_dict(self) -> dict:
        """JSON-friendly summary of the run — the canonical record the
        execution engine caches, shards and flattens into sweep CSVs."""
        from ..units import to_GB, to_MB

        out = {
            "app": self.app_name,
            "policy": self.policy_mode,
            "remote_precopy": self.remote_precopy,
            "n_nodes": self.n_nodes,
            "n_ranks": self.n_ranks,
            "iterations": self.iterations,
            "total_time_s": self.total_time,
            "ideal_time_s": self.ideal_time,
            "overhead_fraction": self.checkpoint_overhead_fraction,
            "local": {
                "checkpoints": self.local_checkpoints,
                "avg_blocking_s": self.local_ckpt_time_avg,
                "coordinated_gb": to_GB(self.coordinated_bytes),
                "precopy_gb": to_GB(self.local_precopy_bytes),
                "saved_gb": to_GB(self.bytes_saved),
                "fault_time_s": self.fault_time_total,
            },
            "remote": {
                "rounds": self.remote_rounds,
                "round_gb": to_GB(self.remote_round_bytes),
                "stream_gb": to_GB(self.remote_precopy_bytes),
                "helper_utilization": self.helper_utilization,
            },
            "fabric": {
                "ckpt_peak_1s_mb": to_MB(self.fabric_ckpt_peak_window_bytes),
                "app_gb": to_GB(self.fabric_app_bytes),
                "ckpt_gb": to_GB(self.fabric_ckpt_bytes),
            },
            "failures": {
                "soft": self.soft_failures,
                "hard": self.hard_failures,
                "transient": self.transient_failures,
                "recovery_s": self.recovery_time,
                "iterations_recomputed": self.iterations_recomputed,
            },
            "resilience": {
                "transfer_retries": self.transfer_retries,
                "transfer_timeouts": self.transfer_timeouts,
                "transfers_abandoned": self.transfers_abandoned,
                "heartbeats": self.heartbeats_sent,
                "buddy_down_detections": self.buddy_down_detections,
                "buddy_repairs": self.buddy_repairs,
                "resyncs_completed": self.resyncs_completed,
                "resync_gb": to_GB(self.resync_bytes),
                "degraded_entries": self.degraded_entries,
                "degraded_time_s": self.degraded_time_total,
            },
            "autotune": {
                "switches": self.autotune_switches,
                "nudges": self.autotune_nudges,
                "final_policy": self.autotune_final_policy,
            },
        }
        if self.codec:
            blocks = self.codec_blocks_new + self.codec_blocks_ref
            out["codec"] = {
                "name": self.codec_name,
                "logical_gb": to_GB(self.codec_logical_bytes),
                "wire_gb": to_GB(self.codec_wire_bytes),
                "saved_gb": to_GB(
                    max(0, self.codec_logical_bytes - self.codec_wire_bytes)
                ),
                "delta_changed_gb": to_GB(self.codec_delta_bytes),
                "blocks_new": self.codec_blocks_new,
                "blocks_ref": self.codec_blocks_ref,
                "dedup_hit_rate": self.codec_blocks_ref / blocks if blocks else 0.0,
            }
        if self.elastic:
            out["membership"] = {
                "joins": self.membership_joins,
                "drains": self.membership_drains,
                "departs": self.membership_departs,
                "migrations_planned": self.migrations_planned,
                "migrations_completed": self.migrations_completed,
                "migrations_aborted": self.migrations_aborted,
                "migration_batches": self.migration_batches,
                "migration_gb": to_GB(self.migration_bytes),
                "slo_pauses": self.migration_slo_pauses,
                "throttled_batches": self.migration_throttled_batches,
                "max_ckpt_latency_s": self.migration_max_ckpt_latency,
                "resyncs_aborted": self.resyncs_aborted,
            }
        if self.tenants:
            out["tenants"] = {
                name: {
                    "ranks": int(m["ranks"]),
                    "checkpoints": int(m["checkpoints"]),
                    "coordinated_gb": to_GB(m["coordinated_bytes"]),
                    "precopy_gb": to_GB(m["precopy_bytes"]),
                    "saved_gb": to_GB(m["bytes_saved"]),
                }
                for name, m in sorted(self.tenant_metering.items())
            }
        return out


class ClusterRunner:
    """Drives one cluster through one experiment."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        local_checkpoints: bool = True,
        failure_config: Optional[FailureConfig] = None,
        fail_until_iteration: Optional[int] = None,
        archive=None,
        injector=None,
        membership=None,
    ) -> None:
        if cluster.app is None or cluster.ckpt_config is None:
            raise ClusterError("cluster must be built before running")
        self.cluster = cluster
        self.app = cluster.app
        self.ckpt_config = cluster.ckpt_config
        self.local_checkpoints = local_checkpoints
        self.failure_config = failure_config
        self.fail_until_iteration = fail_until_iteration
        #: optional third-tier archiver (repro.core.archive.ArchiveTier)
        self.archive = archive
        #: ``injector`` accepts any object with the FailureInjector
        #: surface (peek/next_failure/injected) — e.g. a
        #: :class:`~repro.cluster.failures.ScriptedInjector`
        self.injector = injector
        if self.injector is None and failure_config is not None:
            self.injector = FailureInjector(
                failure_config,
                len(cluster.active_nodes),
                RngStreams(failure_config.seed),
            )
        self.barrier = Barrier(cluster.engine, cluster.n_ranks, name="ckpt-barrier")
        self.committed_iteration = 0
        self._committed_log: List[Tuple[float, int]] = [(0.0, 0)]
        self.recovery_time = 0.0
        self.iterations_recomputed = 0
        self.soft_failures = 0
        self.hard_failures = 0
        self.transient_failures = 0
        self._end_time = None
        self._bg_procs = []
        #: per-rank OnlinePolicyTuner instances (autotuned runs only)
        self.tuners: List = []
        # -- resilience layer (wired in _start_background when enabled) --
        self.directory = None
        self.transports: Dict[int, object] = {}
        self.monitors: Dict[int, object] = {}
        self.controllers: Dict[int, object] = {}
        self._resyncing: Dict[int, object] = {}
        self._deferred_orphans: List[int] = []
        #: cached peeked failure so interleaved segment restarts never
        #: skip or duplicate an injector event
        self._pending_failure: Optional[FailureEvent] = None
        self.resyncs_completed = 0
        self.resync_bytes = 0
        self.resyncs_aborted = 0
        # -- elastic membership / live migration --
        #: planned join/drain schedule (sequence of MembershipEvent)
        self._membership_schedule = list(membership) if membership else []
        self.membership_controller = None
        self.slo_guard = None
        self._migrations: List = []
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.migration_bytes_total = 0

    @property
    def resilience_active(self) -> bool:
        """The resilience layer only activates for runs that inject
        failures or play a membership schedule: without either there is
        nothing to survive or rebalance and the run stays byte-identical
        to the pre-resilience runner."""
        return (
            (self.injector is not None or bool(self._membership_schedule))
            and self.ckpt_config.resilience.enabled
            and any(n.helper is not None for n in self.cluster.active_nodes)
        )

    @property
    def migration_enabled(self) -> bool:
        """Live migration / incremental-failover bookkeeping is opt-in
        (``resilience.migration.enabled``) so the default failover path
        stays byte-identical to the pre-migration runner."""
        return (
            self.directory is not None
            and self.ckpt_config.resilience.migration.enabled
        )

    # ------------------------------------------------------------------
    # Public entry point.
    # ------------------------------------------------------------------

    def run(self, iterations: int) -> RunResult:
        engine = self.cluster.engine
        self._start_background()
        job = engine.process(self._job(iterations), name="job")
        # if the job dies (bug or unhandled failure), make sure the
        # background timers stop so engine.run() can drain
        job.add_callback(lambda ev: self._stop_background())
        engine.run()
        if not job.ok:
            raise job.exception  # type: ignore[misc]
        for proc in self._bg_procs:
            if proc.triggered and not proc.ok and not isinstance(
                proc.exception, ProcessKilled
            ):
                raise proc.exception  # a background helper died
        return self._collect(iterations)

    # ------------------------------------------------------------------
    # Background machinery.
    # ------------------------------------------------------------------

    def _start_background(self) -> None:
        engine = self.cluster.engine
        if self.local_checkpoints:
            for state in self.cluster.all_ranks():
                state.checkpointer.start_background()
            acfg = getattr(self.ckpt_config, "autotune", None)
            if acfg is not None and acfg.enabled and not self.tuners:
                from ..core.autotune import OnlinePolicyTuner

                for i, state in enumerate(self.cluster.all_ranks()):
                    tuner = OnlinePolicyTuner.from_config(
                        state.checkpointer, acfg, seed_offset=i
                    )
                    self.tuners.append(tuner.attach())
        for node in self.cluster.active_nodes:
            if node.helper is not None:
                node.helper.start_background()
                self._bg_procs.append(
                    engine.process(node.helper.run(), name=f"{node.helper.owner}:rounds")
                )
        if self.resilience_active:
            self._start_resilience()
        if self._membership_schedule and self.directory is not None:
            self._start_membership()
        if self.archive is not None:
            self._bg_procs.append(engine.process(self.archive.run(), name="archive"))

    def _start_resilience(self) -> None:
        from ..resilience import (
            BuddyDirectory,
            DegradedModeController,
            HealthMonitor,
            ResilientTransport,
            RetryPolicy,
        )

        engine = self.cluster.engine
        rcfg = self.ckpt_config.resilience
        policy = RetryPolicy.from_config(rcfg)
        participants = [
            n.node_id for n in self.cluster.active_nodes if n.helper is not None
        ]
        self.directory = BuddyDirectory(self.cluster.topology, participants)
        for node in self.cluster.active_nodes:
            if node.helper is None:
                continue
            nid = node.node_id
            # the directory mirrors the pairing the cluster actually
            # built (Cluster.build and BuddyDirectory share the same
            # fallback rule, but the helper is the source of truth)
            self.directory._buddy[nid] = node.helper.buddy_id
            transport = ResilientTransport(nid, self.cluster.rng, policy)
            self.transports[nid] = transport
            node.helper.resilience = transport
            self.controllers[nid] = DegradedModeController(
                nid,
                clock=lambda: engine.now,
                normal_interval=self.ckpt_config.local_interval,
                solve_interval=self._make_degraded_solver(nid),
                timeline=self.cluster.timeline,
                on_enter=self._make_interval_hook(nid),
                on_exit=self._make_interval_hook(nid),
            )
            monitor = HealthMonitor(
                nid,
                node.helper.buddy_id,
                self.cluster.fabric,
                interval=rcfg.heartbeat_interval,
                timeout=rcfg.heartbeat_timeout,
                miss_threshold=rcfg.heartbeat_miss_threshold,
                payload_bytes=rcfg.heartbeat_bytes,
                on_down=self._make_on_down(nid),
                on_up=self._make_on_up(nid),
            )
            self.monitors[nid] = monitor
            self._bg_procs.append(engine.process(monitor.run(), name=f"n{nid}:hb"))

    def _start_membership(self) -> None:
        from ..resilience.migration import MigrationPlanner, SloGuard
        from .membership import MembershipController

        engine = self.cluster.engine
        mcfg = self.ckpt_config.resilience.migration
        self.slo_guard = SloGuard(
            latency_slo=mcfg.slo_checkpoint_latency,
            risk_fraction=mcfg.slo_risk_fraction,
            throttle_fraction=mcfg.slo_throttle_fraction,
        )
        for state in self.cluster.all_ranks():
            self._attach_slo_observer(state)
        planner = None
        launch = None
        if mcfg.enabled:
            planner = MigrationPlanner(
                self.directory,
                fits=lambda orphan, cand, pending: phases.buddy_capacity_ok(
                    self, orphan, cand, pending
                ),
            )
            launch = lambda plan, done: phases.start_migration(self, plan, done)
        self.membership_controller = MembershipController(
            engine,
            self.directory,
            self._membership_schedule,
            planner=planner,
            launch_migration=launch,
        )
        self._bg_procs.append(
            engine.process(self.membership_controller.run(), name="membership")
        )

    def _attach_slo_observer(self, state) -> None:
        """Feed every coordinated-checkpoint duration of this rank into
        the SLO guard (re-attached for replacement ranks after a hard
        failure)."""
        guard = self.slo_guard
        if guard is None:
            return
        state.checkpointer.on_complete.append(
            lambda stats, g=guard: g.observe(stats.duration)
        )

    def _make_interval_hook(self, node_id: int):
        """Apply a (degraded or restored) local interval to the node's
        checkpoint machinery — the helper's pacing config follows it."""

        def apply(interval: float) -> None:
            node = self.cluster.nodes[node_id]
            if node.helper is not None:
                node.helper.config = replace(
                    node.helper.config, local_interval=interval
                )

        return apply

    def _make_degraded_solver(self, node_id: int):
        """Re-solve the local interval for local-only operation from
        the §III model with this run's actual parameters."""

        def solve() -> float:
            normal = self.ckpt_config.local_interval
            rcfg = self.ckpt_config.resilience
            node = self.cluster.nodes[node_id]
            try:
                from ..models.notation import ModelParams
                from ..resilience.degraded import degraded_local_interval

                fc = self.failure_config
                ckpt_bytes = max(
                    (s.allocator.checkpoint_bytes for s in node.ranks), default=0
                )
                nvm_bw = (
                    node.nvm_write_bandwidth
                    or self.cluster.config.node.nvm.write_bandwidth
                )
                params = ModelParams(
                    compute_time=max(1.0, self.app.iteration_compute_time) * 100.0,
                    checkpoint_bytes=max(1.0, float(ckpt_bytes)),
                    nvm_bw_per_core=nvm_bw,
                    remote_bw=self.cluster.config.interconnect.effective_bandwidth,
                    local_interval=normal,
                    remote_interval=self.ckpt_config.remote_interval,
                    mtbf_local=fc.mtbf_local if fc is not None else 3600.0,
                    mtbf_remote=fc.mtbf_remote if fc is not None else 14400.0,
                )
                return degraded_local_interval(
                    params, min_interval=rcfg.degraded_min_interval
                )
            except (ValueError, ZeroDivisionError):
                return max(rcfg.degraded_min_interval, normal / 2.0)

        return solve

    def _make_on_down(self, node_id: int):
        """Heartbeat monitor declared the buddy unreachable: drop to
        local-only checkpointing until it comes back or a re-pair +
        re-sync completes.  Idempotent vs. the runner's own (omniscient)
        hard-failure handling."""

        def on_down(buddy_id: int) -> None:
            ctrl = self.controllers.get(node_id)
            if ctrl is not None:
                ctrl.enter("buddy-unreachable")
            helper = self.cluster.nodes[node_id].helper
            if helper is not None:
                helper.pause_rounds()

        return on_down

    def _make_on_up(self, node_id: int):
        def on_up(buddy_id: int) -> None:
            if node_id in self._resyncing:
                # a re-sync owns the recovery; it exits degraded mode
                # itself when the chunks are re-covered
                return
            ctrl = self.controllers.get(node_id)
            if ctrl is not None:
                ctrl.exit()
            helper = self.cluster.nodes[node_id].helper
            if helper is not None:
                helper.resume_rounds()

        return on_up

    def _stop_background(self) -> None:
        for tuner in self.tuners:
            tuner.detach()
        for state in self.cluster.all_ranks():
            state.checkpointer.stop_background()
        for node in self.cluster.active_nodes:
            if node.helper is not None:
                node.helper.stop()
        for monitor in self.monitors.values():
            monitor.stop()
        if self.archive is not None:
            self.archive.stop()

    # ------------------------------------------------------------------
    # The job loop.
    # ------------------------------------------------------------------

    def _job(self, iterations: int):
        engine = self.cluster.engine
        it = 0
        while it < iterations:
            procs = [
                engine.process(self._segment(state, it), name=f"{state.rank}.it{it}")
                for state in self.cluster.all_ranks()
            ]
            seg_done = engine.all_of(procs)
            restart_segment = False
            while not restart_segment:
                waits = [seg_done]
                next_fail: Optional[FailureEvent] = None
                if self.injector is not None and (
                    self.fail_until_iteration is None or it < self.fail_until_iteration
                ):
                    # cache the peeked event: segment restarts and
                    # transient handling must neither skip nor
                    # duplicate injector draws
                    if self._pending_failure is None:
                        self._pending_failure = self.injector.peek()
                    next_fail = self._pending_failure
                    if not math.isfinite(next_fail.time):
                        # ScriptedInjector exhausted: never arm a timer
                        # at t=inf (it would drag the engine clock out)
                        next_fail = None
                    elif next_fail.time > engine.now:
                        waits.append(engine.timeout(next_fail.time - engine.now))
                    # a failure "due" in the past fires immediately
                    else:
                        waits.append(engine.timeout(0.0))
                idx, _ = yield engine.any_of(waits)
                if idx == 0:
                    it += 1
                    if self.local_checkpoints:
                        self.committed_iteration = it
                        self._committed_log.append((engine.now, it))
                    break
                assert next_fail is not None
                self.injector.next_failure()  # consume the event
                self._pending_failure = None
                if next_fail.is_transient:
                    # the application keeps computing through a link
                    # flap; only the checkpoint path is affected
                    self._apply_transient(next_fail)
                    continue
                yield from self._handle_failure(next_fail, procs)
                it = self.committed_iteration
                restart_segment = True
        for ctrl in self.controllers.values():
            ctrl.finalize()
        # record the finish line *before* winding background timers
        # down (their final timer ticks advance virtual time past the
        # application's end otherwise)
        self._end_time = self.cluster.engine.now
        self._stop_background()
        return it

    def _segment(self, state: RankState, iteration: int):
        """One rank's iteration segment (see :func:`phases.segment`)."""
        return phases.segment(self, state, iteration)

    # ------------------------------------------------------------------
    # Failure handling — the phase logic lives in repro.cluster.phases;
    # these thin delegates keep the historical method surface.
    # ------------------------------------------------------------------

    def _apply_transient(self, ev: FailureEvent) -> None:
        phases.apply_transient(self, ev)

    def _handle_failure(self, ev: FailureEvent, procs):
        return phases.handle_failure(self, ev, procs)

    def _buddy_capacity_ok(self, orphan_id: int, candidate_id: int) -> bool:
        return phases.buddy_capacity_ok(self, orphan_id, candidate_id)

    def _orphan_failover(self, dead: ClusterNode) -> None:
        phases.orphan_failover(self, dead)

    def _repair_orphan(self, orphan_id: int, new_buddy: int) -> None:
        phases.repair_orphan(self, orphan_id, new_buddy)

    def _resync_proc(self, node_id: int, task):
        return phases.resync_proc(self, node_id, task)

    def _recover_soft(self, node: ClusterNode):
        return phases.recover_soft(self, node)

    def _fetch_source_for(self, node: ClusterNode, old_helper) -> int:
        return phases.fetch_source_for(self, node, old_helper)

    def _recover_hard(self, node: ClusterNode):
        return phases.recover_hard(self, node)

    # ------------------------------------------------------------------
    # Result collection.
    # ------------------------------------------------------------------

    def _collect(self, iterations: int) -> RunResult:
        cluster = self.cluster
        engine = cluster.engine
        ranks = cluster.all_ranks()
        n_ranks = len(ranks)
        res = RunResult(
            app_name=self.app.name,
            policy_mode=self.ckpt_config.precopy.mode,
            remote_precopy=self.ckpt_config.remote_precopy,
            n_ranks=n_ranks,
            n_nodes=len(cluster.active_nodes),
            iterations=iterations,
            total_time=engine.now if self._end_time is None else self._end_time,
            compute_per_iteration=self.app.iteration_compute_time,
            sim_events=engine.events_processed,
            timeline=cluster.timeline,
        )
        # local
        all_stats = [s for state in ranks for s in state.checkpointer.history]
        res.local_checkpoints = len(all_stats)
        res.coordinated_bytes = sum(state.checkpointer.total_coordinated_bytes for state in ranks)
        res.local_precopy_bytes = sum(state.checkpointer.total_precopy_bytes for state in ranks)
        res.bytes_saved = sum(state.checkpointer.total_bytes_saved for state in ranks)
        res.total_nvm_bytes = res.coordinated_bytes + res.local_precopy_bytes
        if all_stats:
            res.local_ckpt_time_avg = sum(s.duration for s in all_stats) / len(all_stats)
        res.local_ckpt_time_total = (
            sum(state.checkpointer.total_checkpoint_time for state in ranks) / max(1, n_ranks)
        )
        res.fault_time_total = sum(state.binding.fault_time for state in ranks)
        # multi-tenant metering: aggregate the per-rank counters by the
        # tenant label stamped at build time (untenanted ranks meter
        # under "" only if mixed with labelled ones)
        if any(state.checkpointer.tenant for state in ranks):
            res.tenants = True
            for state in ranks:
                ck = state.checkpointer
                m = res.tenant_metering.setdefault(
                    ck.tenant,
                    {
                        "ranks": 0,
                        "checkpoints": 0,
                        "coordinated_bytes": 0,
                        "precopy_bytes": 0,
                        "bytes_saved": 0,
                    },
                )
                m["ranks"] += 1
                m["checkpoints"] += len(ck.history)
                m["coordinated_bytes"] += ck.total_coordinated_bytes
                m["precopy_bytes"] += ck.total_precopy_bytes
                m["bytes_saved"] += ck.total_bytes_saved
        # remote
        helpers = cluster.helpers()
        res.remote_rounds = sum(len(h.history) for h in helpers)
        res.remote_round_bytes = sum(h.total_round_bytes for h in helpers)
        res.remote_precopy_bytes = sum(h.total_precopy_bytes for h in helpers)
        res.rounds_behind = sum(h.rounds_behind for h in helpers)
        t_end = engine.now if self._end_time is None else self._end_time
        if helpers and t_end > 0:
            res.helper_utilization = sum(
                h.helper_utilization(t_end) for h in helpers
            ) / len(helpers)
        # payload codec (local engines + remote helpers share counters)
        codec_on = [
            s
            for s in [state.checkpointer for state in ranks] + list(helpers)
            if getattr(s, "codec", None) is not None
        ]
        if codec_on:
            res.codec = True
            res.codec_name = codec_on[0].codec.name
            res.codec_logical_bytes = sum(s.codec_logical_bytes for s in codec_on)
            res.codec_wire_bytes = sum(s.codec_wire_bytes for s in codec_on)
            res.codec_delta_bytes = sum(s.codec_delta_bytes for s in codec_on)
            res.codec_blocks_new = sum(s.codec_blocks_new for s in codec_on)
            res.codec_blocks_ref = sum(s.codec_blocks_ref for s in codec_on)
        # fabric
        CKPT_KINDS = ["rckpt", "rprecopy", "rfetch", "resync", "migrate"]
        res.fabric_peak_window_bytes = cluster.fabric.peak_window_usage(1.0, t_end)
        res.fabric_ckpt_peak_window_bytes = cluster.fabric.peak_window_usage(
            1.0, t_end, kinds=CKPT_KINDS
        )
        res.fabric_app_bytes = cluster.fabric.total_bytes(":app")
        res.fabric_ckpt_bytes = (
            cluster.fabric.total_bytes(":rckpt") + cluster.fabric.total_bytes(":rprecopy")
        )
        res.fabric_series = cluster.fabric.windowed_usage(
            max(1.0, t_end / 200), t_end, kinds=CKPT_KINDS
        )
        # failures
        res.soft_failures = self.soft_failures
        res.hard_failures = self.hard_failures
        res.transient_failures = self.transient_failures
        res.recovery_time = self.recovery_time
        res.iterations_recomputed = self.iterations_recomputed
        # resilience
        for transport in self.transports.values():
            res.transfer_retries += transport.stats.retries
            res.transfer_timeouts += transport.stats.timeouts
            res.transfers_abandoned += transport.stats.abandoned
        for monitor in self.monitors.values():
            res.heartbeats_sent += monitor.stats.beats
            res.buddy_down_detections += monitor.stats.detections
        for ctrl in self.controllers.values():
            res.degraded_entries += ctrl.entries
            res.degraded_time_total += ctrl.degraded_time
        if self.directory is not None:
            res.buddy_repairs = len(self.directory.repairs)
        res.resyncs_completed = self.resyncs_completed
        res.resync_bytes = self.resync_bytes
        res.resyncs_aborted = self.resyncs_aborted
        # elastic membership / live migration
        ctrl = self.membership_controller
        if ctrl is not None:
            res.elastic = True
            res.membership_joins = ctrl.joins
            res.membership_drains = ctrl.drains
            res.membership_departs = ctrl.departs
            res.migrations_planned = ctrl.plans_issued
        res.migrations_completed = self.migrations_completed
        res.migrations_aborted = self.migrations_aborted
        res.migration_bytes = self.migration_bytes_total
        res.migration_batches = sum(t.batches for t in self._migrations)
        res.migration_slo_pauses = sum(t.slo_pauses for t in self._migrations)
        res.migration_throttled_batches = sum(
            t.throttled_batches for t in self._migrations
        )
        if self.slo_guard is not None:
            res.migration_max_ckpt_latency = self.slo_guard.max_latency
        # autotuning
        if self.tuners:
            res.autotune_switches = sum(len(t.switches) for t in self.tuners)
            res.autotune_nudges = sum(t.nudges for t in self.tuners)
            res.autotune_final_policy = ",".join(
                sorted({t.current for t in self.tuners})
            )
        return res
