"""End-to-end experiment runner.

Drives a built :class:`~repro.cluster.cluster.Cluster` through N
application iterations with coordinated local checkpoints, background
remote checkpointing, and (optionally) injected failures with full
recovery:

* **soft failure** — the node's volatile state dies; after a reboot
  delay every rank reloads its committed checkpoint from node-local
  NVM (transfers simulated on the NVM buses) and the run rolls back to
  the last locally-committed iteration;
* **hard failure** — the node is replaced with fresh hardware; its
  ranks' state is fetched from the buddy's committed remote copies
  over the fabric, survivors reload locally, and the run rolls back to
  the last *remotely*-captured iteration (the K(I+t_lcl)/2 recompute
  term of §III).

Simulation-scale note: in cluster runs chunks are *phantom* (sizes and
dirty state, no payloads) and soft restart reuses the in-memory rank
objects, charging the restart transfers; the object-level
crash-and-rebuild path is exercised by the functional API tests
instead.  Timing, traffic and rollback behaviour — what the paper's
evaluation measures — are fully simulated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import FailureConfig, PrecopyPolicy
from ..errors import ClusterError, ProcessKilled
from ..metrics import timeline as tl
from ..sim.rng import RngStreams
from .cluster import Cluster
from .failures import FailureEvent, FailureInjector
from .mpi import Barrier
from .node import ClusterNode, RankState

__all__ = ["ClusterRunner", "RunResult"]

#: seconds a node takes to reboot after a soft failure before it can
#: fetch its checkpoint (OS + process respawn).
SOFT_REBOOT_DELAY = 5.0
#: seconds to provision a replacement node after a hard failure.
HARD_REPLACE_DELAY = 30.0


@dataclass
class RunResult:
    """Everything a benchmark needs from one run."""

    app_name: str = ""
    policy_mode: str = ""
    remote_precopy: bool = False
    n_ranks: int = 0
    n_nodes: int = 0
    iterations: int = 0
    total_time: float = 0.0
    #: pure-compute seconds per iteration (the app model's target)
    compute_per_iteration: float = 0.0

    # -- local checkpointing --
    coordinated_bytes: int = 0
    local_precopy_bytes: int = 0
    total_nvm_bytes: int = 0
    local_ckpt_time_avg: float = 0.0  # mean coordinated duration per rank-ckpt
    local_ckpt_time_total: float = 0.0  # T_lcl averaged over ranks
    local_checkpoints: int = 0
    fault_time_total: float = 0.0

    # -- remote checkpointing --
    remote_rounds: int = 0
    remote_round_bytes: int = 0
    remote_precopy_bytes: int = 0
    helper_utilization: float = 0.0
    rounds_behind: int = 0

    # -- fabric --
    fabric_peak_window_bytes: float = 0.0
    #: peak per-window volume of checkpoint traffic only (Fig. 10)
    fabric_ckpt_peak_window_bytes: float = 0.0
    fabric_app_bytes: float = 0.0
    fabric_ckpt_bytes: float = 0.0
    #: checkpoint-traffic bytes per window over the run (Fig. 10 series)
    fabric_series: List[Tuple[float, float]] = field(default_factory=list)

    # -- failures --
    soft_failures: int = 0
    hard_failures: int = 0
    recovery_time: float = 0.0
    iterations_recomputed: int = 0

    timeline: object = None

    @property
    def ideal_time(self) -> float:
        """Lower bound: compute only, no checkpoints/contention."""
        return self.iterations * self.compute_per_iteration

    def efficiency_vs(self, ideal: "RunResult") -> float:
        """The paper's efficiency metric: ideal runtime / actual."""
        if self.total_time <= 0:
            return 0.0
        return ideal.total_time / self.total_time

    @property
    def checkpoint_overhead_fraction(self) -> float:
        """(actual - ideal) / ideal against the analytic lower bound."""
        ideal = self.ideal_time
        if ideal <= 0:
            return 0.0
        return (self.total_time - ideal) / ideal

    def to_dict(self) -> dict:
        """JSON-friendly summary of the run — the canonical record the
        execution engine caches, shards and flattens into sweep CSVs."""
        from ..units import to_GB, to_MB

        return {
            "app": self.app_name,
            "policy": self.policy_mode,
            "remote_precopy": self.remote_precopy,
            "n_nodes": self.n_nodes,
            "n_ranks": self.n_ranks,
            "iterations": self.iterations,
            "total_time_s": self.total_time,
            "ideal_time_s": self.ideal_time,
            "overhead_fraction": self.checkpoint_overhead_fraction,
            "local": {
                "checkpoints": self.local_checkpoints,
                "avg_blocking_s": self.local_ckpt_time_avg,
                "coordinated_gb": to_GB(self.coordinated_bytes),
                "precopy_gb": to_GB(self.local_precopy_bytes),
                "fault_time_s": self.fault_time_total,
            },
            "remote": {
                "rounds": self.remote_rounds,
                "round_gb": to_GB(self.remote_round_bytes),
                "stream_gb": to_GB(self.remote_precopy_bytes),
                "helper_utilization": self.helper_utilization,
            },
            "fabric": {
                "ckpt_peak_1s_mb": to_MB(self.fabric_ckpt_peak_window_bytes),
                "app_gb": to_GB(self.fabric_app_bytes),
                "ckpt_gb": to_GB(self.fabric_ckpt_bytes),
            },
            "failures": {
                "soft": self.soft_failures,
                "hard": self.hard_failures,
                "recovery_s": self.recovery_time,
                "iterations_recomputed": self.iterations_recomputed,
            },
        }


class ClusterRunner:
    """Drives one cluster through one experiment."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        local_checkpoints: bool = True,
        failure_config: Optional[FailureConfig] = None,
        fail_until_iteration: Optional[int] = None,
        archive=None,
    ) -> None:
        if cluster.app is None or cluster.ckpt_config is None:
            raise ClusterError("cluster must be built before running")
        self.cluster = cluster
        self.app = cluster.app
        self.ckpt_config = cluster.ckpt_config
        self.local_checkpoints = local_checkpoints
        self.failure_config = failure_config
        self.fail_until_iteration = fail_until_iteration
        #: optional third-tier archiver (repro.core.archive.ArchiveTier)
        self.archive = archive
        self.injector: Optional[FailureInjector] = None
        if failure_config is not None:
            self.injector = FailureInjector(
                failure_config,
                len(cluster.active_nodes),
                RngStreams(failure_config.seed),
            )
        self.barrier = Barrier(cluster.engine, cluster.n_ranks, name="ckpt-barrier")
        self.committed_iteration = 0
        self._committed_log: List[Tuple[float, int]] = [(0.0, 0)]
        self.recovery_time = 0.0
        self.iterations_recomputed = 0
        self.soft_failures = 0
        self.hard_failures = 0
        self._end_time = None
        self._bg_procs = []

    # ------------------------------------------------------------------
    # Public entry point.
    # ------------------------------------------------------------------

    def run(self, iterations: int) -> RunResult:
        engine = self.cluster.engine
        self._start_background()
        job = engine.process(self._job(iterations), name="job")
        # if the job dies (bug or unhandled failure), make sure the
        # background timers stop so engine.run() can drain
        job.add_callback(lambda ev: self._stop_background())
        engine.run()
        if not job.ok:
            raise job.exception  # type: ignore[misc]
        for proc in self._bg_procs:
            if proc.triggered and not proc.ok and not isinstance(
                proc.exception, ProcessKilled
            ):
                raise proc.exception  # a background helper died
        return self._collect(iterations)

    # ------------------------------------------------------------------
    # Background machinery.
    # ------------------------------------------------------------------

    def _start_background(self) -> None:
        engine = self.cluster.engine
        if self.local_checkpoints:
            for state in self.cluster.all_ranks():
                state.checkpointer.start_background()
        for node in self.cluster.active_nodes:
            if node.helper is not None:
                node.helper.start_background()
                self._bg_procs.append(
                    engine.process(node.helper.run(), name=f"{node.helper.owner}:rounds")
                )
        if self.archive is not None:
            self._bg_procs.append(engine.process(self.archive.run(), name="archive"))

    def _stop_background(self) -> None:
        for state in self.cluster.all_ranks():
            state.checkpointer.stop_background()
        for node in self.cluster.active_nodes:
            if node.helper is not None:
                node.helper.stop()
        if self.archive is not None:
            self.archive.stop()

    # ------------------------------------------------------------------
    # The job loop.
    # ------------------------------------------------------------------

    def _job(self, iterations: int):
        engine = self.cluster.engine
        it = 0
        while it < iterations:
            procs = [
                engine.process(self._segment(state, it), name=f"{state.rank}.it{it}")
                for state in self.cluster.all_ranks()
            ]
            seg_done = engine.all_of(procs)
            waits = [seg_done]
            next_fail: Optional[FailureEvent] = None
            if self.injector is not None and (
                self.fail_until_iteration is None or it < self.fail_until_iteration
            ):
                next_fail = self.injector.peek()
                if next_fail.time > engine.now:
                    waits.append(engine.timeout(next_fail.time - engine.now))
                # a failure "due" in the past fires immediately
                else:
                    waits.append(engine.timeout(0.0))
            idx, _ = yield engine.any_of(waits)
            if idx == 0:
                it += 1
                if self.local_checkpoints:
                    self.committed_iteration = it
                    self._committed_log.append((engine.now, it))
            else:
                assert next_fail is not None
                self.injector.next_failure()  # consume the event
                yield from self._handle_failure(next_fail, procs)
                it = self.committed_iteration
        # record the finish line *before* winding background timers
        # down (their final timer ticks advance virtual time past the
        # application's end otherwise)
        self._end_time = self.cluster.engine.now
        self._stop_background()
        return it

    def _segment(self, state: RankState, iteration: int):
        """One rank's iteration: compute (+writes +communication), a
        global barrier, then the coordinated local checkpoint."""
        t0 = self.cluster.engine.now
        yield from self.app.compute_iteration(state.binding, iteration)
        self.cluster.timeline.record(
            state.rank, tl.COMPUTE, t0, self.cluster.engine.now
        )
        yield self.barrier.wait()
        if self.local_checkpoints:
            yield from state.checkpointer.checkpoint(blocking=False)

    # ------------------------------------------------------------------
    # Failure handling.
    # ------------------------------------------------------------------

    def _handle_failure(self, ev: FailureEvent, procs):
        engine = self.cluster.engine
        t0 = engine.now
        node = self.cluster.nodes[ev.node]
        # stop the world: kill rank processes, break the barrier, tear
        # down in-flight traffic
        for p in procs:
            p.kill()
        self.barrier.reset()
        for n in self.cluster.active_nodes:
            n.ctx.nvm_bus.cancel_matching(None)
        for lp in self.cluster.fabric.links:
            lp.egress.cancel_matching(None)
            lp.ingress.cancel_matching(None)
        for state in self.cluster.all_ranks():
            if state.checkpointer.precopy is not None:
                state.checkpointer.precopy.pause()
        if ev.kind == "soft":
            self.soft_failures += 1
            yield from self._recover_soft(node)
            rollback = self.committed_iteration
        else:
            self.hard_failures += 1
            rollback = yield from self._recover_hard(node)
        self.iterations_recomputed += max(0, self.committed_iteration - rollback)
        self.committed_iteration = rollback
        # reset chunk dirty state: DRAM now matches the rollback point
        for state in self.cluster.all_ranks():
            for chunk in state.allocator.chunks():
                fresh = chunk.committed_version < 0
                chunk.dirty_local = fresh
                chunk.dirty_remote = True
                chunk.protected = not fresh
                chunk.begin_interval()
            if state.checkpointer.precopy is not None:
                state.checkpointer.precopy.begin_interval()
                state.checkpointer.precopy.resume()
            state.checkpointer.last_checkpoint_end = engine.now
        self.recovery_time += engine.now - t0
        if self.cluster.timeline is not None:
            self.cluster.timeline.record(f"n{ev.node}", tl.RESTART, t0, engine.now)

    def _recover_soft(self, node: ClusterNode):
        """Reboot + all ranks reload their committed local checkpoint."""
        engine = self.cluster.engine
        node.ctx.nvmm.store.crash()  # unflushed writes die with the node
        yield engine.timeout(SOFT_REBOOT_DELAY)
        factor = self.failure_config.local_restart_factor if self.failure_config else 1.0
        fetches = []
        for n in self.cluster.active_nodes:
            for state in n.ranks:
                fetches.append(
                    n.ctx.nvm_bus.transfer(
                        state.allocator.checkpoint_bytes * factor,
                        tag=f"{state.rank}:restart",
                    )
                )
        if fetches:
            yield engine.all_of(fetches)

    def _recover_hard(self, node: ClusterNode):
        """Replace the node, refetch its ranks' state from the buddy,
        survivors reload locally; roll back to the remote capture."""
        from ..core.remote import RemoteHelper

        engine = self.cluster.engine
        # which iteration did the buddy last capture for this node?
        rollback = 0
        if node.helper is not None and node.helper.history:
            last_start = node.helper.history[-1].start
            for t, it in self._committed_log:
                if t <= last_start:
                    rollback = it
        old_helper = node.helper
        old_rank_indices = [s.rank_index for s in node.ranks]
        buddy_id = old_helper.buddy_id if old_helper is not None else (node.node_id + 1) % len(
            self.cluster.active_nodes
        )
        # stop machinery owned by the dead node
        for state in node.ranks:
            state.checkpointer.stop_background()
        if old_helper is not None:
            old_helper.stop()
        # replacement hardware
        yield engine.timeout(HARD_REPLACE_DELAY)
        node.replace_hardware()
        # rebuild ranks on the fresh node
        for rank_index in old_rank_indices:
            neighbors = [
                n for n in self.cluster.topology.neighbors(node.node_id, degree=2)
                if self.cluster.nodes[n].ranks
            ]
            node.add_rank(
                rank_index,
                self.app,
                self.ckpt_config,
                fabric=self.cluster.fabric,
                neighbors=neighbors,
                timeline=self.cluster.timeline,
                phantom=True,
            )
        # fetch the dead node's state from the buddy; survivors reload locally
        factor = self.failure_config.remote_restart_factor if self.failure_config else 1.0
        fetches = []
        for state in node.ranks:
            fetches.append(
                self.cluster.fabric.transfer(
                    buddy_id,
                    node.node_id,
                    state.allocator.checkpoint_bytes * factor,
                    tag=f"{state.rank}:rfetch",
                )
            )
        for n in self.cluster.active_nodes:
            if n is node:
                continue
            for state in n.ranks:
                fetches.append(
                    n.ctx.nvm_bus.transfer(
                        state.allocator.checkpoint_bytes, tag=f"{state.rank}:restart"
                    )
                )
        if fetches:
            yield engine.all_of(fetches)
        # new background machinery for the replacement node
        if self.ckpt_config is not None and old_helper is not None:
            node.helper = RemoteHelper(
                node.node_id,
                node.ctx,
                self.cluster.fabric,
                buddy_id,
                self.cluster.nodes[buddy_id].ctx,
                [s.allocator for s in node.ranks],
                self.ckpt_config,
                timeline=self.cluster.timeline,
            )
            node.helper.start_background()
            self._bg_procs.append(
                engine.process(node.helper.run(), name=f"{node.helper.owner}:rounds")
            )
            # the rebuilt checkpointers must feed the new helper's
            # stream queue, like Cluster.build wired the originals
            for state in node.ranks:
                state.checkpointer.on_complete.append(
                    self.cluster._make_local_ckpt_hook(node, state.rank)
                )
        if self.local_checkpoints:
            for state in node.ranks:
                state.checkpointer.start_background()
        # helpers that used the dead node as their buddy lost their
        # remote copies: re-point them at the replacement hardware
        for n in self.cluster.active_nodes:
            h = n.helper
            if h is not None and h.buddy_id == node.node_id and n is not node:
                from ..core.remote import RemoteTarget

                h.buddy_ctx = node.ctx
                h.targets = {
                    a.pid: RemoteTarget(a.pid, node.ctx, two_versions=self.ckpt_config.two_versions)
                    for a in h.ranks
                }
                # every remote copy on the dead buddy is gone:
                # everything must be re-sent
                h.enqueue_all()
        return rollback

    # ------------------------------------------------------------------
    # Result collection.
    # ------------------------------------------------------------------

    def _collect(self, iterations: int) -> RunResult:
        cluster = self.cluster
        engine = cluster.engine
        ranks = cluster.all_ranks()
        n_ranks = len(ranks)
        res = RunResult(
            app_name=self.app.name,
            policy_mode=self.ckpt_config.precopy.mode,
            remote_precopy=self.ckpt_config.remote_precopy,
            n_ranks=n_ranks,
            n_nodes=len(cluster.active_nodes),
            iterations=iterations,
            total_time=engine.now if self._end_time is None else self._end_time,
            compute_per_iteration=self.app.iteration_compute_time,
            timeline=cluster.timeline,
        )
        # local
        all_stats = [s for state in ranks for s in state.checkpointer.history]
        res.local_checkpoints = len(all_stats)
        res.coordinated_bytes = sum(state.checkpointer.total_coordinated_bytes for state in ranks)
        res.local_precopy_bytes = sum(state.checkpointer.total_precopy_bytes for state in ranks)
        res.total_nvm_bytes = res.coordinated_bytes + res.local_precopy_bytes
        if all_stats:
            res.local_ckpt_time_avg = sum(s.duration for s in all_stats) / len(all_stats)
        res.local_ckpt_time_total = (
            sum(state.checkpointer.total_checkpoint_time for state in ranks) / max(1, n_ranks)
        )
        res.fault_time_total = sum(state.binding.fault_time for state in ranks)
        # remote
        helpers = cluster.helpers()
        res.remote_rounds = sum(len(h.history) for h in helpers)
        res.remote_round_bytes = sum(h.total_round_bytes for h in helpers)
        res.remote_precopy_bytes = sum(h.total_precopy_bytes for h in helpers)
        res.rounds_behind = sum(h.rounds_behind for h in helpers)
        t_end = engine.now if self._end_time is None else self._end_time
        if helpers and t_end > 0:
            res.helper_utilization = sum(
                h.helper_utilization(t_end) for h in helpers
            ) / len(helpers)
        # fabric
        CKPT_KINDS = ["rckpt", "rprecopy", "rfetch"]
        res.fabric_peak_window_bytes = cluster.fabric.peak_window_usage(1.0, t_end)
        res.fabric_ckpt_peak_window_bytes = cluster.fabric.peak_window_usage(
            1.0, t_end, kinds=CKPT_KINDS
        )
        res.fabric_app_bytes = cluster.fabric.total_bytes(":app")
        res.fabric_ckpt_bytes = (
            cluster.fabric.total_bytes(":rckpt") + cluster.fabric.total_bytes(":rprecopy")
        )
        res.fabric_series = cluster.fabric.windowed_usage(
            max(1.0, t_end / 200), t_end, kinds=CKPT_KINDS
        )
        # failures
        res.soft_failures = self.soft_failures
        res.hard_failures = self.hard_failures
        res.recovery_time = self.recovery_time
        res.iterations_recomputed = self.iterations_recomputed
        return res
