"""Minimal MPI-like coordination for the simulated application:
a reusable barrier (coordinated checkpoints are barrier-synchronized
across all ranks, as with mvapich2 collectives in the paper's runs).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..sim.engine import Engine
from ..sim.events import Event

__all__ = ["Barrier"]


class Barrier:
    """A cyclic barrier over *parties* simulated processes.

    ``wait()`` returns an event that fires when the last party arrives;
    the barrier then resets for the next generation.  ``break_all``
    fails the current generation (failure recovery) so no waiter hangs.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError("barrier needs at least one party")
        self.engine = engine
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived = 0
        self._event: Optional[Event] = None

    def wait(self) -> Event:
        """Arrive at the barrier; yield the returned event."""
        if self._event is None:
            self._event = self.engine.event(name=f"{self.name}.gen{self.generation}")
        self._arrived += 1
        ev = self._event
        if self._arrived >= self.parties:
            self._release()
        return ev

    def _release(self) -> None:
        ev = self._event
        self._event = None
        self._arrived = 0
        self.generation += 1
        assert ev is not None
        ev.succeed(self.generation)

    def break_all(self, exc: Optional[BaseException] = None) -> int:
        """Fail the in-progress generation; returns how many parties
        were waiting.  Used when a failure interrupts a coordinated
        step."""
        waiting = self._arrived
        if self._event is not None and not self._event.triggered:
            self._event.fail(exc or SimulationError(f"{self.name} broken"))
        self._event = None
        self._arrived = 0
        self.generation += 1
        return waiting

    def reset(self, parties: Optional[int] = None) -> None:
        """Reset arrivals (and optionally resize) for a fresh start;
        any waiters are abandoned, so only call after killing them."""
        if parties is not None:
            if parties < 1:
                raise SimulationError("barrier needs at least one party")
            self.parties = parties
        self._event = None
        self._arrived = 0
        self.generation += 1
