"""Background re-sync of committed chunks to a (new) buddy.

After an orphan is re-paired by the
:class:`~repro.resilience.directory.BuddyDirectory`, every committed
chunk must be re-sent before the node is protected again.  The
:class:`ResyncTask` DES process drains the helper's (re-)filled stream
queue at the helper's paced rate (same pacing as the remote pre-copy
stream, so the re-sync does not flood the fabric), staging each chunk
on the new target and committing everything at the end — one atomic
buddy-side version flip, exactly like a coordinated round.

The helper's normal rounds are paused for the duration (the round and
the re-sync would race on the same queue); they resume when the task
finishes or aborts.  Chunks committed locally *during* the re-sync are
queued by the usual notify hooks and get drained too.

A task is generation-guarded: if the helper is retargeted again
mid-re-sync (the new buddy also died), the stale task stops silently
and leaves control to the task spawned for the newer pairing.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import TransferCancelled, TransferFailed
from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..metrics.trace import BUS, ResyncAbortedEvent

__all__ = ["ResyncTask"]


class ResyncTask:
    """One paced re-sync of a helper's committed chunks."""

    def __init__(
        self,
        helper,
        *,
        timeline: Optional[Timeline] = None,
        failure_limit: int = 25,
        retry_pause: float = 2.0,
        on_complete: Optional[Callable[["ResyncTask"], None]] = None,
        on_abort: Optional[Callable[["ResyncTask"], None]] = None,
    ) -> None:
        self.helper = helper
        self.timeline = timeline
        #: consecutive send failures before the task gives up
        self.failure_limit = failure_limit
        #: pause after a failed send before trying the next chunk
        self.retry_pause = retry_pause
        self.on_complete = on_complete
        #: fired only when the task gives up on its *failure budget*
        #: (not when a newer retarget makes it stale) — the node is
        #: still unprotected and callers must escalate, e.g. keep it
        #: in degraded mode
        self.on_abort = on_abort
        self.bytes_sent = 0
        self.chunks_sent = 0
        self.completed = False
        self.aborted = False
        #: the abort was a failure-budget exhaustion (vs. staleness)
        self.failure_limited = False
        self.start = None
        self.end = None
        #: pairing generation this task belongs to
        self.epoch = helper.epoch

    def _stale(self) -> bool:
        return self.helper.epoch != self.epoch

    def run(self):
        """Generator process: drain, stage, commit, hand back."""
        helper = self.helper
        engine = helper.ctx.engine
        helper.pause_rounds()
        self.start = engine.now
        failures = 0
        try:
            while not helper._stop and not self._stale():
                item = helper._pop()
                if item is None:
                    break
                pid, chunk = item
                t0 = engine.now
                helper._charge_cpu(chunk.nbytes, streamed=True)
                try:
                    yield from helper._deliver(pid, chunk, "resync")
                except (TransferCancelled, TransferFailed):
                    helper._queue.setdefault((pid, chunk.chunk_id), chunk)
                    failures += 1
                    if failures >= self.failure_limit:
                        self.aborted = True
                        self.failure_limited = True
                        if BUS.active:
                            BUS.emit(
                                ResyncAbortedEvent(
                                    t=engine.now,
                                    actor=helper.owner,
                                    failures=failures,
                                    bytes_sent=self.bytes_sent,
                                    chunks_sent=self.chunks_sent,
                                )
                            )
                        if self.on_abort is not None:
                            self.on_abort(self)
                        return self
                    yield engine.timeout(self.retry_pause)
                    continue
                failures = 0
                if self._stale():
                    # retargeted while this chunk was in flight: the
                    # payload went to the *old* ctx; the new task owns
                    # the queue now
                    break
                helper.targets[pid].stage(chunk)
                helper._record_replicated(pid, chunk)
                chunk.dirty_remote = False
                self.bytes_sent += chunk.nbytes
                self.chunks_sent += 1
                # pace like the stream: never faster than pace_rate
                target_duration = chunk.nbytes / helper.pace_rate
                elapsed = engine.now - t0
                if elapsed < target_duration:
                    yield engine.timeout(target_duration - elapsed)
            if helper._stop or self._stale():
                self.aborted = True
                return self
            # buddy-side commit: one atomic version flip per rank
            for target in helper.targets.values():
                if target._staged:
                    cost = target.commit()
                    if cost > 0:
                        yield engine.timeout(cost)
            self.completed = True
        finally:
            self.end = engine.now
            # record (not begin/end): overlapping stale/fresh tasks for
            # one helper must not race on the timeline's open-phase map
            if self.timeline is not None and self.end > self.start:
                self.timeline.record(helper.owner, tl.RESYNC, self.start, self.end)
            # only the task owning the current pairing unpauses
            if not self._stale():
                helper.resume_rounds()
            if self.completed and self.on_complete is not None:
                self.on_complete(self)
        return self

    @property
    def duration(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start
