"""Degraded-mode control: local-only checkpointing while a node has no
healthy remote target.

While a node's buddy is dead or unreachable, its second checkpoint
level does not exist: *every* failure in that window must be recovered
from the local level.  Following the §III model, the controller
re-solves the local checkpoint interval for the degraded regime —
:func:`degraded_local_interval` folds the remote-recoverable failure
rate into the local MTBF and re-runs
:func:`~repro.models.optimal.optimal_local_interval` over the
:class:`~repro.models.multilevel.MultilevelModel` with the remote level
effectively removed — and applies the (shorter) interval for the span
of the outage.  Once a re-sync to a healthy buddy completes (or the
transient outage heals), two-level operation and the original interval
are restored.

Spans are recorded on the :class:`~repro.metrics.timeline.Timeline`
(kind ``degraded``, actor ``n<id>``) and counted for metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..models.notation import ModelParams
from ..models.optimal import optimal_local_interval

__all__ = ["DegradedModeController", "DegradedSpan", "degraded_local_interval"]

#: stand-in MTBF for the (absent) remote level when re-solving the
#: degraded model: effectively "the remote level never helps".
_NO_REMOTE_MTBF = 1e15


def degraded_local_interval(
    params: ModelParams,
    *,
    min_interval: float = 5.0,
    hi: float = 3600.0,
) -> float:
    """The local checkpoint interval to run while the remote level is
    gone.

    All failures become local-recoverable-or-fatal; we model the
    degraded regime by combining both failure rates into the local MTBF
    (``1/M = 1/M_lcl + 1/M_rmt``) and removing the remote level, then
    minimizing model total time over the interval.  The result is
    clamped to ``[min_interval, params.local_interval]`` — the degraded
    interval never exceeds the healthy one.
    """
    lam = 1.0 / params.mtbf_local + 1.0 / params.mtbf_remote
    combined_mtbf = 1.0 / lam if lam > 0 else params.mtbf_local
    degraded = params.with_(
        mtbf_local=combined_mtbf,
        mtbf_remote=_NO_REMOTE_MTBF,
        remote_noise_fraction=0.0,
    )
    lo = max(1e-3, min(min_interval, params.local_interval * 0.5))
    hi = max(hi, params.local_interval)
    best, _ = optimal_local_interval(degraded, lo=lo, hi=hi)
    return max(min_interval, min(best, params.local_interval))


@dataclass
class DegradedSpan:
    """One contiguous window without a healthy remote target."""

    start: float
    reason: str
    end: Optional[float] = None
    interval: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


@dataclass
class DegradedStats:
    entries: int = 0
    exits: int = 0
    total_time: float = 0.0


class DegradedModeController:
    """Tracks one node's degraded/restored state and applies the
    re-solved interval through caller-provided hooks."""

    def __init__(
        self,
        node_id: int,
        *,
        clock: Callable[[], float],
        normal_interval: float,
        solve_interval: Optional[Callable[[], float]] = None,
        timeline: Optional[Timeline] = None,
        on_enter: Optional[Callable[[float], None]] = None,
        on_exit: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.actor = f"n{node_id}"
        self._clock = clock
        self.normal_interval = normal_interval
        #: computes the degraded interval; defaults to half the normal
        #: interval when no model inputs are available
        self._solve = solve_interval or (lambda: max(1.0, normal_interval / 2.0))
        self.timeline = timeline
        self.on_enter = on_enter
        self.on_exit = on_exit
        self.active = False
        self.degraded_interval: Optional[float] = None
        self.spans: List[DegradedSpan] = []
        self.stats = DegradedStats()

    # ------------------------------------------------------------------
    # Transitions (idempotent).
    # ------------------------------------------------------------------

    def enter(self, reason: str) -> bool:
        """Drop to local-only checkpointing.  Returns True on a real
        transition, False if already degraded."""
        if self.active:
            return False
        now = self._clock()
        self.active = True
        self.degraded_interval = self._solve()
        self.spans.append(
            DegradedSpan(start=now, reason=reason, interval=self.degraded_interval)
        )
        self.stats.entries += 1
        if self.timeline is not None:
            self.timeline.begin(self.actor, tl.DEGRADED, now)
        if self.on_enter is not None:
            self.on_enter(self.degraded_interval)
        return True

    def exit(self) -> bool:
        """Restore two-level operation and the original interval."""
        if not self.active:
            return False
        now = self._clock()
        self.active = False
        span = self.spans[-1]
        span.end = now
        self.stats.exits += 1
        self.stats.total_time += span.duration
        if self.timeline is not None:
            self.timeline.end(self.actor, tl.DEGRADED, now)
        if self.on_exit is not None:
            self.on_exit(self.normal_interval)
        return True

    def finalize(self) -> None:
        """Close a still-open span at job end (keeps the timeline and
        totals consistent if the run finishes degraded)."""
        if self.active:
            self.exit()

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def degraded_time(self) -> float:
        return self.stats.total_time

    @property
    def entries(self) -> int:
        return self.stats.entries
