"""Planned live migration of remote checkpoint copies (elastic buddies).

Failover re-pairing (:mod:`repro.resilience.resync`) is reactive: the
old buddy is *gone*, so everything is re-sent.  Planned membership
changes — a node joining the buddy pool, a node draining for
decommission — migrate copies **live**: the old pairing keeps
protecting the source while its chunks move, Megaphone-style, in
**bounded batches** that interleave with the ongoing pre-copy stream
under the shared bandwidth model.  Buddy ownership switches atomically
only after the final batch commit, and the switch is *incremental*: the
task's per-chunk replication records — kept private until cutover, so
an aborted move never claims copies it discarded — prove which chunks
the new buddy already holds, and only chunks re-committed during the
migration are re-queued.

Three pieces:

* :class:`MigrationPlanner` — derives per-node moves from the live
  :class:`~repro.resilience.directory.BuddyDirectory` (join -> offload
  sources from the most-loaded buddies onto the newcomer; drain ->
  evacuate every orphan of the draining node);
* :class:`SloGuard` — observes per-interval coordinated-checkpoint
  latencies and tells the executor to throttle (half pace) or pause
  batches while the configured latency SLO is at risk;
* :class:`MigrationTask` — the epoch-guarded DES process executing one
  plan: stage bounded batches on the new buddy, commit each batch
  (crash points in the ``migrate`` layer), then cut ownership over via
  ``helper.retarget(..., incremental=True)``.  On abort the pairing is
  untouched (the old buddy still protects the source); failover-driven
  callers fall back to a full :class:`~repro.resilience.resync.ResyncTask`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.remote import RemoteTarget
from ..errors import TransferCancelled, TransferFailed
from ..faults.crashpoints import fire
from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..metrics.trace import (
    BUS,
    MigrationAbortEvent,
    MigrationBatchEvent,
    MigrationCutoverEvent,
    MigrationPlannedEvent,
)
from ..net.rdma import rdma_put

__all__ = ["MigrationPlan", "MigrationPlanner", "SloGuard", "MigrationTask"]

#: plan reasons
REASON_JOIN = "join"
REASON_DRAIN = "drain"
REASON_FAILOVER = "failover"


@dataclass
class MigrationPlan:
    """Move one source node's remote copies between buddies."""

    node: int
    from_buddy: int
    to_buddy: int
    reason: str  # "join" | "drain" | "failover"
    #: filled in by the executor from the helper's live chunk state
    chunks: int = 0
    nbytes: int = 0


class MigrationPlanner:
    """Derives per-node migration plans from the live directory.

    The planner only *chooses* moves; it does not mutate the directory —
    pairings change at cutover, when the
    :class:`MigrationTask` actually owns the copies on the new buddy.
    """

    def __init__(
        self,
        directory,
        *,
        fits: Optional[Callable[[int, int, Sequence[int]], bool]] = None,
    ) -> None:
        self.directory = directory
        #: optional capacity gate ``fits(source, candidate, pending)``.
        #: Like the :meth:`BuddyDirectory.repair` predicate, but with a
        #: third argument: the source nodes this *sweep* already planned
        #: onto the candidate — their copies are in flight, so the gate
        #: must hold for the combined footprint, not each move alone.
        self.fits = fits

    def _fits(self, source: int, candidate: int, pending: Sequence[int] = ()) -> bool:
        return self.fits is None or self.fits(source, candidate, tuple(pending))

    def plan_join(self, newcomer: int) -> List[MigrationPlan]:
        """A node joined the buddy pool: offload sources from the
        most-loaded buddies onto it until the load spread is within one
        (moving another source would just shift the imbalance).
        Deterministic: most-loaded buddy first, then lowest source id,
        cross-rack sources preferred."""
        d = self.directory
        topo = d.topology
        plans: List[MigrationPlan] = []
        load: Dict[int, int] = {n: d._load(n) for n in d.nodes}
        #: sources already planned this sweep — the directory is not
        #: mutated until cutover, so without this a donor asked to
        #: donate twice would offer the same source again
        planned: Set[int] = set()
        while True:
            donors = [
                n
                for n in d.nodes
                if n != newcomer
                and d.is_healthy(n)
                and load.get(n, 0) >= load.get(newcomer, 0) + 2
            ]
            if not donors:
                break
            donors.sort(key=lambda n: (-load.get(n, 0), n))
            moved = False
            for donor in donors:
                sources = [
                    s
                    for s in d.orphans_of(donor)
                    if s != newcomer
                    and s not in planned
                    and d.is_healthy(s)
                    and self._fits(s, newcomer, tuple(planned))
                ]
                # prefer a source in a different rack from the newcomer
                # (keep the cross-rack placement rule), then lowest id
                sources.sort(
                    key=lambda s: (
                        0 if topo.rack_of(s) != topo.rack_of(newcomer) else 1,
                        s,
                    )
                )
                if not sources:
                    continue
                src = sources[0]
                plans.append(
                    MigrationPlan(
                        node=src,
                        from_buddy=donor,
                        to_buddy=newcomer,
                        reason=REASON_JOIN,
                    )
                )
                planned.add(src)
                load[donor] = load.get(donor, 0) - 1
                load[newcomer] = load.get(newcomer, 0) + 1
                moved = True
                break
            if not moved:
                break
        return plans

    def plan_drain(self, node: int) -> List[MigrationPlan]:
        """A node is draining: evacuate every orphan it hosts onto the
        best healthy candidate (the directory's usual repair ordering;
        the draining node is already retired, so it never self-selects).
        Orphans with no viable candidate are skipped — the drain stays
        incomplete and the caller must not depart the node."""
        d = self.directory
        plans: List[MigrationPlan] = []
        #: candidate -> sources this sweep already planned onto it, so
        #: the capacity gate sees the combined in-flight footprint
        planned_onto: Dict[int, List[int]] = {}
        for src in d.orphans_of(node):
            cands = [
                c
                for c in d.candidates_for(src)
                if c != node and self._fits(src, c, planned_onto.get(c, ()))
            ]
            if not cands:
                continue
            planned_onto.setdefault(cands[0], []).append(src)
            plans.append(
                MigrationPlan(
                    node=src,
                    from_buddy=node,
                    to_buddy=cands[0],
                    reason=REASON_DRAIN,
                )
            )
        return plans


class SloGuard:
    """Watches per-interval coordinated-checkpoint latencies against a
    configured SLO and tells migrations when to back off.

    Wire :meth:`observe` into the rank checkpointers' ``on_complete``
    hooks (the runner does this); the executor polls :attr:`at_risk` /
    :attr:`throttled` between batches.  The guard reacts to the
    **latest** interval only — deliberately twitchy: one breach pauses
    batches immediately, one clean interval resumes them (migration
    favors protecting the SLO over its own progress, and a pause costs
    nothing but migration time).
    """

    def __init__(
        self,
        *,
        latency_slo: float = float("inf"),
        risk_fraction: float = 0.8,
        throttle_fraction: float = 0.5,
    ) -> None:
        self.latency_slo = latency_slo
        self.risk_fraction = risk_fraction
        self.throttle_fraction = throttle_fraction
        #: most recent interval latency (0 until the first observation)
        self.latest = 0.0
        self.max_latency = 0.0
        self.observations = 0

    def observe(self, duration: float) -> None:
        self.latest = duration
        self.observations += 1
        if duration > self.max_latency:
            self.max_latency = duration

    @property
    def at_risk(self) -> bool:
        """Latency close enough to the SLO that batches must pause."""
        return self.latest >= self.risk_fraction * self.latency_slo

    @property
    def throttled(self) -> bool:
        """Latency elevated: batches run, but at half pace."""
        return self.latest >= self.throttle_fraction * self.latency_slo

    @property
    def within_slo(self) -> bool:
        """Did every observed interval stay within the SLO bound?"""
        return self.max_latency <= self.latency_slo


class MigrationTask:
    """One live migration of a source node's remote copies.

    Epoch-guarded like :class:`~repro.resilience.resync.ResyncTask`: any
    helper retarget (a concurrent failover, or another migration's
    cutover) makes this task stale and it aborts without touching the
    pairing.  The old buddy keeps receiving the normal stream/rounds
    throughout — protection never lapses during a planned move.
    """

    def __init__(
        self,
        helper,
        plan: MigrationPlan,
        to_ctx,
        *,
        batch_bytes: int,
        guard: Optional[SloGuard] = None,
        timeline: Optional[Timeline] = None,
        check_interval: float = 2.0,
        pace_fraction: float = 0.5,
        failure_limit: int = 10,
        retry_pause: float = 2.0,
        on_cutover: Optional[Callable[["MigrationTask"], None]] = None,
        on_abort: Optional[Callable[["MigrationTask"], None]] = None,
    ) -> None:
        self.helper = helper
        self.plan = plan
        self.to_ctx = to_ctx
        self.batch_bytes = batch_bytes
        self.guard = guard
        self.timeline = timeline
        self.check_interval = check_interval
        self.pace_fraction = pace_fraction
        self.failure_limit = failure_limit
        self.retry_pause = retry_pause
        self.on_cutover = on_cutover
        self.on_abort = on_abort
        #: pairing generation this task belongs to
        self.epoch = helper.epoch
        #: staging targets on the new buddy — adopted wholesale by the
        #: incremental retarget at cutover
        self.targets: Dict[str, RemoteTarget] = {
            a.pid: RemoteTarget(a.pid, to_ctx, two_versions=helper.config.two_versions)
            for a in helper.ranks
        }
        #: (pid, chunk_id) -> commit generation sent, recorded at stage
        #: time but published into the helper's ``_replicated`` map only
        #: at cutover: until then the staged copies live on this task's
        #: private targets, which an abort discards — claiming them
        #: early would let a later incremental retarget skip re-sending
        #: chunks the buddy does not actually hold
        self._staged_replicated: Dict[Tuple[str, int], int] = {}
        self.bytes_sent = 0
        self.chunks_sent = 0
        self.batches = 0
        self.slo_pauses = 0
        self.throttled_batches = 0
        self.completed = False
        self.aborted = False
        self.abort_reason = ""
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def _stale(self) -> bool:
        return self.helper.epoch != self.epoch or self.helper._stop

    def _deliver(self, pid: str, chunk):
        """One chunk across the fabric to the *new* buddy (the helper's
        own transport points at the old one)."""
        helper = self.helper
        tag = f"{pid}:migrate"
        if helper.resilience is not None and helper.compression is None:
            yield from helper.resilience.put(
                helper.fabric,
                helper.node_id,
                self.plan.to_buddy,
                chunk.nbytes,
                tag=tag,
                dst_nvm_bus=self.to_ctx.nvm_bus,
            )
            return
        yield rdma_put(
            helper.fabric,
            helper.node_id,
            self.plan.to_buddy,
            chunk.nbytes,
            tag=tag,
            dst_nvm_bus=self.to_ctx.nvm_bus,
        )

    def _abort(self, reason: str) -> None:
        self.aborted = True
        self.abort_reason = reason
        if BUS.active:
            BUS.emit(
                MigrationAbortEvent(
                    t=self.helper.ctx.engine.now,
                    actor=self.helper.owner,
                    reason=reason,
                    batches=self.batches,
                    nbytes=self.bytes_sent,
                )
            )
        if self.on_abort is not None:
            self.on_abort(self)

    def run(self):
        """Generator process: batch, stage, commit, cut over."""
        helper = self.helper
        engine = helper.ctx.engine
        self.start = engine.now
        # snapshot the work list: every committed chunk (later commits
        # bump generations and are swept up by the cutover's
        # enqueue_unreplicated + the normal stream)
        work = [
            (alloc.pid, chunk)
            for alloc in helper.ranks
            for chunk in alloc.persistent_chunks()
            if chunk.committed_version >= 0
        ]
        self.plan.chunks = len(work)
        self.plan.nbytes = sum(c.nbytes for _, c in work)
        if BUS.active:
            BUS.emit(
                MigrationPlannedEvent(
                    t=engine.now,
                    actor=helper.owner,
                    node=self.plan.node,
                    from_target=f"n{self.plan.from_buddy}",
                    to_target=f"n{self.plan.to_buddy}",
                    reason=self.plan.reason,
                    chunks=self.plan.chunks,
                    nbytes=self.plan.nbytes,
                )
            )
        failures = 0
        i = 0
        try:
            while i < len(work):
                if self._stale():
                    self._abort("stale")
                    return self
                # SLO gate: pause batches while latency is at risk
                while self.guard is not None and self.guard.at_risk:
                    self.slo_pauses += 1
                    yield engine.timeout(self.check_interval)
                    if self._stale():
                        self._abort("stale")
                        return self
                throttled = self.guard is not None and self.guard.throttled
                # carve the next bounded batch
                batch = []
                batch_nbytes = 0
                while i < len(work):
                    pid, chunk = work[i]
                    if batch and batch_nbytes + chunk.nbytes > self.batch_bytes:
                        break
                    batch.append((pid, chunk))
                    batch_nbytes += chunk.nbytes
                    i += 1
                t_batch = engine.now
                for pid, chunk in batch:
                    while True:
                        t0 = engine.now
                        helper._charge_cpu(chunk.nbytes, streamed=True)
                        fire(
                            "migrate.batch.before_send",
                            chunk=chunk,
                            pid=pid,
                            plan=self.plan,
                        )
                        try:
                            yield from self._deliver(pid, chunk)
                        except (TransferCancelled, TransferFailed):
                            failures += 1
                            if failures >= self.failure_limit:
                                self._abort("failure-limit")
                                return self
                            yield engine.timeout(self.retry_pause)
                            if self._stale():
                                self._abort("stale")
                                return self
                            continue
                        break
                    failures = 0
                    if self._stale():
                        # retargeted while in flight: payload landed on
                        # a pairing that no longer exists
                        self._abort("stale")
                        return self
                    self.targets[pid].stage(chunk)
                    key = (pid, chunk.chunk_id)
                    self._staged_replicated[key] = helper._dirty_epoch.get(key, 0)
                    fire(
                        "migrate.batch.after_stage",
                        chunk=chunk,
                        pid=pid,
                        target=self.targets[pid],
                    )
                    self.bytes_sent += chunk.nbytes
                    self.chunks_sent += 1
                    # pace *under* the pre-copy stream: migration gets a
                    # fraction of the helper's rate, halved when the SLO
                    # guard reports elevated latency
                    rate = helper.pace_rate * self.pace_fraction
                    if throttled:
                        rate *= 0.5
                    if rate > 0 and rate != float("inf"):
                        target_duration = chunk.nbytes / rate
                        elapsed = engine.now - t0
                        if elapsed < target_duration:
                            yield engine.timeout(target_duration - elapsed)
                # bounded-batch commit: the new buddy's copies become
                # durable *now*, while the old pairing still owns
                for target in self.targets.values():
                    if target._staged:
                        cost = target.commit()
                        if cost > 0:
                            yield engine.timeout(cost)
                fire("migrate.batch.commit", plan=self.plan, seq=self.batches)
                if throttled:
                    self.throttled_batches += 1
                if BUS.active:
                    BUS.emit(
                        MigrationBatchEvent(
                            t=engine.now,
                            actor=helper.owner,
                            seq=self.batches,
                            chunks=len(batch),
                            nbytes=batch_nbytes,
                            start=t_batch,
                            throttled=throttled,
                        )
                    )
                self.batches += 1
            if self._stale():
                self._abort("stale")
                return self
            # atomic cutover: ownership flips only after every batch
            # committed.  The incremental retarget adopts the staging
            # targets and re-queues just the chunks committed since
            # their migration send.
            fire("migrate.cutover.before", plan=self.plan)
            # publish what the new buddy holds, replacing any records
            # from an older pairing: those referred to copies on the
            # cached target set this cutover supersedes
            helper._replicated[self.plan.to_buddy] = dict(self._staged_replicated)
            helper._known_targets[self.plan.to_buddy] = self.targets
            helper.retarget(
                self.plan.to_buddy,
                self.to_ctx,
                incremental=True,
                reason=f"migrated ({self.plan.reason})",
            )
            self.completed = True
            fire("migrate.cutover.done", plan=self.plan)
            if BUS.active:
                BUS.emit(
                    MigrationCutoverEvent(
                        t=engine.now,
                        actor=helper.owner,
                        from_target=f"n{self.plan.from_buddy}",
                        to_target=f"n{self.plan.to_buddy}",
                        batches=self.batches,
                        nbytes=self.bytes_sent,
                    )
                )
            if self.on_cutover is not None:
                self.on_cutover(self)
        finally:
            self.end = engine.now
            if self.timeline is not None and self.end > self.start:
                self.timeline.record(helper.owner, tl.MIGRATION, self.start, self.end)
        return self

    @property
    def duration(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start
