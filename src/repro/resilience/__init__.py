"""Resilience layer: make the remote-checkpoint path survive failures.

The rest of the library assumes every ``rdma_put``/``rdma_get``
completes; this package turns the failure *schedule* the injector
produces into failure *behaviour* the runtime tolerates:

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` plus
  ``resilient_put``/``resilient_get``: deadline + capped exponential
  backoff with jitter from named RNG streams, per-attempt stall
  timeouts that cancel and re-issue flows;
* :mod:`~repro.resilience.health` — per-node :class:`HealthMonitor`
  DES process heartbeating the buddy, detecting a dead or unreachable
  peer mid-interval;
* :mod:`~repro.resilience.directory` — :class:`BuddyDirectory`
  tracking the live pairing, re-pairing orphans to healthy topology
  neighbors;
* :mod:`~repro.resilience.resync` — :class:`ResyncTask`, the paced
  background re-send of all committed chunks to a new buddy;
* :mod:`~repro.resilience.degraded` — :class:`DegradedModeController`,
  local-only checkpointing with the interval re-solved from the §III
  model while no healthy remote target exists;
* :mod:`~repro.resilience.migration` — :class:`MigrationPlanner`,
  :class:`MigrationTask` and :class:`SloGuard`: bounded-batch live
  migration of buddy-hosted copies for planned membership changes,
  throttled against a checkpoint-latency SLO.
"""

from .degraded import DegradedModeController, degraded_local_interval
from .directory import BuddyDirectory
from .health import HealthMonitor
from .migration import MigrationPlan, MigrationPlanner, MigrationTask, SloGuard
from .resync import ResyncTask
from .retry import (
    ResilientTransport,
    RetryPolicy,
    TransferStats,
    resilient_get,
    resilient_put,
)

__all__ = [
    "BuddyDirectory",
    "DegradedModeController",
    "HealthMonitor",
    "MigrationPlan",
    "MigrationPlanner",
    "MigrationTask",
    "ResilientTransport",
    "ResyncTask",
    "RetryPolicy",
    "SloGuard",
    "TransferStats",
    "degraded_local_interval",
    "resilient_get",
    "resilient_put",
]
