"""The buddy directory: who checkpoints to whom, *right now*.

:class:`~repro.net.topology.Topology` gives the static cross-rack
pairing; the directory layers live state on top — which nodes are
currently failed, which pairings have been repaired — and implements
the re-pairing policy for orphans (a node whose buddy died):

* prefer a **healthy** node in a **different rack** (the same placement
  rule the static pairing follows);
* fall back to any healthy node if no cross-rack candidate exists;
* never the node itself, never a failed node;
* among equals, prefer nodes serving the fewest source nodes (spread
  the re-paired load), then topology order — fully deterministic;
* optionally capacity-gated: hosting a second node's remote copies
  roughly doubles the buddy's NVM footprint, so callers pass a
  ``fits(orphan, candidate)`` predicate and candidates that cannot
  hold the orphan's copies are skipped.

``repair`` returns ``None`` when no healthy candidate exists (e.g. a
2-node cluster whose only peer is being replaced); callers re-try after
the replacement comes back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..net.topology import Topology

__all__ = ["BuddyDirectory"]


class BuddyDirectory:
    """Live buddy pairing over a static topology."""

    def __init__(self, topology: Topology, nodes: Optional[List[int]] = None) -> None:
        self.topology = topology
        #: nodes participating in buddy pairing (defaults to all)
        self.nodes: List[int] = list(nodes) if nodes is not None else list(
            range(topology.n_nodes)
        )
        node_set = set(self.nodes)
        self._buddy: Dict[int, int] = {}
        for n in self.nodes:
            b = topology.buddy_of(n)
            if b not in node_set:
                # static buddy not participating (n_nodes_used < n_nodes):
                # next participating node, cyclically
                others = [m for m in self.nodes if m != n]
                b = min(others, key=lambda m: (m - n) % topology.n_nodes) if others else n
            self._buddy[n] = b
        self._failed: Set[int] = set()
        #: re-pairings performed, as (orphan, old_buddy, new_buddy)
        self.repairs: List[tuple] = []
        #: draining nodes: still hosting copies, but no longer eligible
        #: as a re-pair / rebalance target
        self._retired: Set[int] = set()
        #: planned re-bindings performed, as (node, old_buddy, new_buddy)
        self.migrations: List[tuple] = []

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------

    def buddy_of(self, node: int) -> int:
        return self._buddy[node]

    def orphans_of(self, node: int) -> List[int]:
        """Nodes currently checkpointing *to* the given node."""
        return sorted(n for n, b in self._buddy.items() if b == node and n != node)

    def is_healthy(self, node: int) -> bool:
        return node not in self._failed

    def mark_failed(self, node: int) -> None:
        self._failed.add(node)

    def mark_recovered(self, node: int) -> None:
        self._failed.discard(node)

    # ------------------------------------------------------------------
    # Elastic membership (planned join / drain / depart).
    # ------------------------------------------------------------------

    def is_participant(self, node: int) -> bool:
        return node in self.nodes

    def is_retired(self, node: int) -> bool:
        return node in self._retired

    def admit(self, node: int) -> bool:
        """A planned join: the node becomes a healthy re-pair /
        rebalance target.  It hosts nothing yet and sources to nobody
        until a migration (or repair) binds it.  Returns False if the
        node already participates."""
        if node in self.nodes:
            self._retired.discard(node)
            return False
        self.nodes.append(node)
        self._failed.discard(node)
        return True

    def retire(self, node: int) -> None:
        """Begin a planned drain: the node stops being a candidate for
        new pairings, but keeps hosting its current orphans until they
        are migrated off."""
        self._retired.add(node)

    def depart(self, node: int) -> bool:
        """Complete a drain: remove the node from the pairing entirely.
        Refuses (returns False) while any other node still checkpoints
        to it — evacuate first."""
        if self.orphans_of(node):
            return False
        if node in self.nodes:
            self.nodes.remove(node)
        self._buddy.pop(node, None)
        self._retired.discard(node)
        self._failed.discard(node)
        return True

    def rebind(self, node: int, new_buddy: int) -> None:
        """Apply a *planned* pairing change (migration cutover) —
        unlike :meth:`repair`, the caller chose the target."""
        old = self._buddy.get(node)
        self._buddy[node] = new_buddy
        self.migrations.append((node, old, new_buddy))

    # ------------------------------------------------------------------
    # Re-pairing.
    # ------------------------------------------------------------------

    def _load(self, node: int) -> int:
        return sum(1 for b in self._buddy.values() if b == node)

    def candidates_for(self, node: int) -> List[int]:
        """Healthy re-pair candidates, best first."""
        topo = self.topology
        cands = [
            m
            for m in self.nodes
            if m != node and self.is_healthy(m) and m not in self._retired
        ]
        cands.sort(
            key=lambda m: (
                # cross-rack first (0 sorts before 1)
                0 if topo.rack_of(m) != topo.rack_of(node) else 1,
                self._load(m),
                (m - node) % topo.n_nodes,
            )
        )
        return cands

    def repair(self, node: int, fits=None) -> Optional[int]:
        """Re-pair *node* to the best healthy candidate; returns the new
        buddy id (possibly unchanged if the current buddy is healthy),
        or ``None`` when no healthy candidate exists (or none passes
        the optional ``fits(node, candidate)`` capacity gate)."""
        current = self._buddy.get(node)
        if current is not None and self.is_healthy(current) and current != node:
            return current
        cands = self.candidates_for(node)
        if fits is not None:
            cands = [c for c in cands if fits(node, c)]
        if not cands:
            return None
        new_buddy = cands[0]
        self.repairs.append((node, current, new_buddy))
        self._buddy[node] = new_buddy
        return new_buddy

    # ------------------------------------------------------------------
    # Invariants (the membership property test's oracle).
    # ------------------------------------------------------------------

    def check_invariants(self, max_load: Optional[int] = None) -> List[str]:
        """Structural invariants that must hold after any repair sweep:
        no node is its own buddy (unless alone), every *healthy,
        non-retired* node with a healthy candidate available is paired
        with a healthy buddy, and no target hosts more than *max_load*
        sources (when given).  Returns human-readable violations."""
        problems: List[str] = []
        healthy = [
            n for n in self.nodes if self.is_healthy(n) and n not in self._retired
        ]
        for n, b in self._buddy.items():
            if n not in self.nodes:
                problems.append(f"pairing for departed node {n}")
            if b == n and len(self.nodes) > 1:
                problems.append(f"node {n} is its own buddy")
        for n in healthy:
            b = self._buddy.get(n)
            if b is not None and self.is_healthy(b):
                continue
            # unpaired (e.g. a freshly-admitted spare) or paired with a
            # failed buddy: only a violation if a repair could fix it
            if self.candidates_for(n):
                problems.append(
                    f"healthy node {n} has no pairing"
                    if b is None
                    else f"healthy node {n} paired with failed buddy {b}"
                )
        if max_load is not None:
            for n in self.nodes:
                load = self._load(n)
                if load > max_load:
                    problems.append(
                        f"node {n} hosts {load} sources (capacity bound {max_load})"
                    )
        return problems
