"""Retrying wrappers around :func:`rdma_put`/:func:`rdma_get`.

A resilient transfer is a *generator* (multi-step DES fragment, used as
``yield from resilient_put(...)``) that re-issues the underlying RDMA
operation until it completes, the attempt budget runs out, or the
deadline passes:

* each attempt gets a unique tag prefix (``a<seq>~<tag>``) so a stalled
  attempt can be cancelled precisely without touching concurrent flows;
  the trailing ``:<kind>`` suffix is preserved, so per-kind fabric
  accounting (Fig. 10) still sees the traffic under its real kind;
* a per-attempt stall timeout cancels the in-flight flows and re-issues
  the transfer (the "cancel and re-issue stalled flows" half of the
  policy);
* backoff between attempts is capped exponential with jitter drawn from
  a *named RNG stream*, so retry schedules are a pure function of the
  seed and adding retries to one node never perturbs another node's
  randomness;
* a transfer that succeeds on its first attempt consumes **no** RNG
  draws and finishes at the same virtual time as a bare ``rdma_put`` —
  the success path is behaviour-identical.

Exhaustion raises :class:`~repro.errors.TransferFailed` (a
:class:`~repro.errors.NetworkError`), which callers treat as "this
peer is gone" rather than "one flow tore down".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TransferCancelled, TransferFailed
from ..metrics.trace import BUS, RetryEvent
from ..net.interconnect import Fabric
from ..net.rdma import cancel_rdma, rdma_get, rdma_put
from ..sim.resources import BandwidthResource
from ..sim.rng import RngStreams

__all__ = [
    "RetryPolicy",
    "TransferStats",
    "ResilientTransport",
    "resilient_put",
    "resilient_get",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + capped exponential backoff with jitter."""

    #: attempts before giving up with TransferFailed.
    max_attempts: int = 8
    #: first backoff delay (seconds).
    base_delay: float = 0.5
    #: cap on any single backoff delay.
    max_delay: float = 8.0
    #: multiplicative backoff growth per attempt.
    backoff: float = 2.0
    #: +/- fraction of each delay randomized (0 disables jitter).
    jitter: float = 0.25
    #: per-attempt stall timeout; ``None`` waits forever.
    timeout: Optional[float] = 60.0
    #: total virtual-time budget per transfer; ``None`` = unlimited.
    deadline: Optional[float] = 300.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_delay(self, attempt: int, rng, stream: str) -> float:
        """Delay before re-issuing after failed attempt *attempt*
        (0-based).  Jitter comes from the named stream on *rng*."""
        delay = min(self.max_delay, self.base_delay * self.backoff**attempt)
        if self.jitter > 0.0 and delay > 0.0:
            u = float(rng.stream(stream).random())  # uniform [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay

    @classmethod
    def from_config(cls, cfg) -> "RetryPolicy":
        """Build from a :class:`repro.config.ResilienceConfig`."""
        return cls(
            max_attempts=cfg.retry_max_attempts,
            base_delay=cfg.retry_base_delay,
            max_delay=cfg.retry_max_delay,
            backoff=cfg.retry_backoff,
            jitter=cfg.retry_jitter,
            timeout=cfg.transfer_timeout,
            deadline=cfg.transfer_deadline,
        )


@dataclass
class TransferStats:
    """Counters over one transport's resilient transfers."""

    transfers: int = 0
    delivered: int = 0
    retries: int = 0
    timeouts: int = 0
    cancelled: int = 0
    abandoned: int = 0
    retried_bytes: float = 0.0
    backoff_time: float = 0.0

    def merge(self, other: "TransferStats") -> None:
        for f in (
            "transfers",
            "delivered",
            "retries",
            "timeouts",
            "cancelled",
            "abandoned",
            "retried_bytes",
            "backoff_time",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass
class _Counter:
    """Shared attempt-sequence counter (unique tags across a node)."""

    value: int = 0

    def next(self) -> int:
        self.value += 1
        return self.value


def _resilient(
    op,
    cancel_bus_side: str,
    fabric: Fabric,
    src: int,
    dst: int,
    nbytes: float,
    *,
    tag: str,
    policy: RetryPolicy,
    rng: RngStreams,
    stream: str,
    stats: Optional[TransferStats] = None,
    nvm_bus: Optional[BandwidthResource] = None,
    nvm_bytes: Optional[float] = None,
    seq: Optional[_Counter] = None,
):
    """Common body of :func:`resilient_put`/:func:`resilient_get`.

    *nvm_bytes* (optional) decouples the NVM-bus volume from the wire
    volume — compressed sends move fewer bytes over the fabric than
    they land on the buddy's NVM.  Cancellation is by tag, so stalled
    attempts tear down both flows regardless of their byte counts."""
    engine = fabric.engine
    seq = seq or _Counter()
    stats = stats if stats is not None else TransferStats()
    stats.transfers += 1
    start = engine.now
    for attempt in range(policy.max_attempts):
        # every attempt gets a unique prefix so a stall can cancel
        # exactly this attempt's flows; aggregation by tag *suffix*
        # (endswith ":kind") is unaffected
        attempt_tag = f"a{seq.next()}~{tag}"
        failed = False
        fail_reason = ""
        try:
            op_kwargs = {cancel_bus_side: nvm_bus}
            if nvm_bytes is not None:
                op_kwargs[cancel_bus_side.replace("_bus", "_bytes")] = nvm_bytes
            ev = op(fabric, src, dst, nbytes, tag=attempt_tag, **op_kwargs)
            if policy.timeout is not None:
                idx, _ = yield engine.any_of([ev, engine.timeout(policy.timeout)])
                if idx == 1:
                    # stalled: tear the attempt's flows down precisely
                    # (unique tag) so a fresh attempt can be issued
                    cancel_rdma(fabric, src, dst, attempt_tag, nvm_bus=nvm_bus)
                    stats.timeouts += 1
                    failed = True
                    fail_reason = "timeout"
            else:
                yield ev
        except TransferCancelled:
            stats.cancelled += 1
            failed = True
            fail_reason = "cancelled"
        if not failed:
            stats.delivered += 1
            return engine.now - start
        elapsed = engine.now - start
        out_of_budget = (
            attempt + 1 >= policy.max_attempts
            or (policy.deadline is not None and elapsed >= policy.deadline)
        )
        if out_of_budget:
            stats.abandoned += 1
            raise TransferFailed(
                f"transfer {tag!r} n{src}->n{dst} gave up after "
                f"{attempt + 1} attempts ({elapsed:.1f}s elapsed)",
                src=src,
                dst=dst,
                tag=tag,
                attempts=attempt + 1,
                elapsed=elapsed,
            )
        delay = policy.backoff_delay(attempt, rng, stream)
        stats.retries += 1
        stats.retried_bytes += nbytes
        stats.backoff_time += delay
        if BUS.active:
            BUS.emit(
                RetryEvent(
                    t=engine.now,
                    actor=f"n{src}",
                    target=f"n{dst}",
                    attempt=attempt + 1,
                    delay=delay,
                    reason=fail_reason,
                )
            )
        if delay > 0:
            yield engine.timeout(delay)


def resilient_put(
    fabric: Fabric,
    src: int,
    dst: int,
    nbytes: float,
    *,
    tag: str = "",
    policy: RetryPolicy,
    rng: RngStreams,
    stream: str = "resilience.backoff",
    stats: Optional[TransferStats] = None,
    dst_nvm_bus: Optional[BandwidthResource] = None,
    dst_nvm_bytes: Optional[float] = None,
    seq: Optional[_Counter] = None,
):
    """Retrying :func:`rdma_put` (generator; ``yield from`` it).
    Returns the elapsed transfer time on success; raises
    :class:`TransferFailed` when the policy budget is exhausted."""
    return (
        yield from _resilient(
            rdma_put,
            "dst_nvm_bus",
            fabric,
            src,
            dst,
            nbytes,
            tag=tag,
            policy=policy,
            rng=rng,
            stream=stream,
            stats=stats,
            nvm_bus=dst_nvm_bus,
            nvm_bytes=dst_nvm_bytes,
            seq=seq,
        )
    )


def resilient_get(
    fabric: Fabric,
    src: int,
    dst: int,
    nbytes: float,
    *,
    tag: str = "",
    policy: RetryPolicy,
    rng: RngStreams,
    stream: str = "resilience.backoff",
    stats: Optional[TransferStats] = None,
    src_nvm_bus: Optional[BandwidthResource] = None,
    seq: Optional[_Counter] = None,
):
    """Retrying :func:`rdma_get` (generator; ``yield from`` it)."""
    return (
        yield from _resilient(
            rdma_get,
            "src_nvm_bus",
            fabric,
            src,
            dst,
            nbytes,
            tag=tag,
            policy=policy,
            rng=rng,
            stream=stream,
            stats=stats,
            nvm_bus=src_nvm_bus,
            seq=seq,
        )
    )


class ResilientTransport:
    """Per-node bundle of (policy, RNG stream, stats, tag sequence)
    offering :meth:`put`/:meth:`get` generators.

    One transport per node keeps attempt tags unique within the node
    and gives every node an independent jitter stream
    (``resilience.backoff.n<id>``), so retry randomness on one node
    never shifts another node's schedule.
    """

    def __init__(
        self,
        node_id: int,
        rng: RngStreams,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.node_id = node_id
        self.rng = rng
        self.policy = policy or RetryPolicy()
        self.stream = f"resilience.backoff.n{node_id}"
        self.stats = TransferStats()
        self._seq = _Counter()

    def put(
        self, fabric, src, dst, nbytes, *, tag="", dst_nvm_bus=None, dst_nvm_bytes=None
    ):
        return resilient_put(
            fabric,
            src,
            dst,
            nbytes,
            tag=tag,
            policy=self.policy,
            rng=self.rng,
            stream=self.stream,
            stats=self.stats,
            dst_nvm_bus=dst_nvm_bus,
            dst_nvm_bytes=dst_nvm_bytes,
            seq=self._seq,
        )

    def get(self, fabric, src, dst, nbytes, *, tag="", src_nvm_bus=None):
        return resilient_get(
            fabric,
            src,
            dst,
            nbytes,
            tag=tag,
            policy=self.policy,
            rng=self.rng,
            stream=self.stream,
            stats=self.stats,
            src_nvm_bus=src_nvm_bus,
            seq=self._seq,
        )
