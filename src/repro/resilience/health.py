"""Buddy health monitoring.

Each node runs one :class:`HealthMonitor` DES process that sends a tiny
heartbeat transfer to its buddy every ``interval`` seconds (tag kind
``hb`` — checkpoint-path traffic, so it rides the same RDMA queue
pairs as remote checkpoints and sees the same outages).  A beat that
is cancelled, fails fast, or stalls past ``timeout`` counts as a miss;
``miss_threshold`` consecutive misses flip the buddy to *down* and fire
``on_down`` — detection happens mid-interval, not at the next hard
failure.  A subsequent successful beat fires ``on_up``.

Callbacks must be idempotent: the cluster runner may already have
declared the buddy dead through its own (omniscient) failure handling
by the time the monitor notices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import TransferCancelled
from ..net.interconnect import Fabric

__all__ = ["HealthMonitor", "HeartbeatStats"]


@dataclass
class HeartbeatStats:
    beats: int = 0
    missed: int = 0
    #: down/up *transitions* observed (not individual misses)
    detections: int = 0
    recoveries: int = 0


class HealthMonitor:
    """Heartbeats from one node to its current buddy."""

    def __init__(
        self,
        node_id: int,
        buddy_id: int,
        fabric: Fabric,
        *,
        interval: float = 2.0,
        timeout: float = 1.0,
        miss_threshold: int = 2,
        payload_bytes: int = 64,
        on_down: Optional[Callable[[int], None]] = None,
        on_up: Optional[Callable[[int], None]] = None,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.node_id = node_id
        self.buddy_id = buddy_id
        self.fabric = fabric
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.payload_bytes = payload_bytes
        self.on_down = on_down
        self.on_up = on_up
        self.buddy_healthy = True
        self.misses = 0
        self.stats = HeartbeatStats()
        self._stop = False
        self._seq = 0
        #: pairing generation: bumped by :meth:`retarget` so a beat in
        #: flight to the *old* buddy cannot apply its outcome to the
        #: new pairing (it would spuriously flip ``buddy_healthy`` or
        #: fire ``on_down`` against a buddy it never probed)
        self._retarget_epoch = 0

    def stop(self) -> None:
        self._stop = True

    def retarget(self, new_buddy: int) -> None:
        """Point the monitor at a replacement buddy (assumed healthy
        until proven otherwise)."""
        self._retarget_epoch += 1
        self.buddy_id = new_buddy
        self.buddy_healthy = True
        self.misses = 0

    # ------------------------------------------------------------------
    # The DES process.
    # ------------------------------------------------------------------

    def run(self):
        engine = self.fabric.engine
        while not self._stop:
            yield engine.timeout(self.interval)
            if self._stop:
                break
            yield from self._beat()

    def _beat(self):
        engine = self.fabric.engine
        self._seq += 1
        tag = f"hb{self._seq}~n{self.node_id}:hb"
        # pin the pairing this beat probes: a retarget while the beat
        # is in flight makes its outcome meaningless for the new buddy
        epoch = self._retarget_epoch
        buddy = self.buddy_id
        ok = True
        try:
            ev = self.fabric.transfer(
                self.node_id, buddy, self.payload_bytes, tag=tag
            )
            idx, _ = yield engine.any_of([ev, engine.timeout(self.timeout)])
            if idx == 1:
                # stalled heartbeat: tear it down so it does not linger
                self.fabric.links[self.node_id].egress.cancel_tag(tag)
                self.fabric.links[buddy].ingress.cancel_tag(tag)
                ok = False
        except TransferCancelled:
            ok = False
        if epoch != self._retarget_epoch:
            # retargeted mid-beat: discard the stale outcome entirely
            return
        self.stats.beats += 1
        if ok:
            self.misses = 0
            if not self.buddy_healthy:
                self.buddy_healthy = True
                self.stats.recoveries += 1
                if self.on_up is not None:
                    self.on_up(self.buddy_id)
        else:
            self.misses += 1
            self.stats.missed += 1
            if self.misses >= self.miss_threshold and self.buddy_healthy:
                self.buddy_healthy = False
                self.stats.detections += 1
                if self.on_down is not None:
                    self.on_down(self.buddy_id)
