"""Payload representation layer: delta encoding + content-addressed dedup.

PR 5 made the copy path extent-granular, but every extent still ships
as raw full bytes.  This module changes the *unit of transfer*: the
dirty-chunk walk plans a :class:`Payload` — FULL raw bytes, a DELTA
against the committed shadow version, or DEDUP references into a
content-addressed :class:`BlockStore` — and the destination charges
the payload's *wire* bytes instead of the raw extent bytes.  Staging
still materializes full content into the NVM shadow regions (the same
"payloads are stored decompressed on the buddy" semantics the
compression model established), so the two-version crash protocol and
restart paths are untouched; the codec only changes what crosses the
bus/fabric plus the digest index used to prove identity.

Two operating modes share one codec implementation:

* **exact mode** (``encode_bytes`` / ``decode_bytes``): real byte
  buffers in, encoded representation out, byte-exact round trip.  Used
  by the property suite, restart digest verification and the demo.
* **planning mode** (``plan``): accounting over a chunk's dirty
  extents — works for phantom (size-only) chunks through the
  deterministic :class:`ContentModel` and for real chunks through
  blake2b block digests.  This is the DES hot path, so everything is
  vectorized numpy.

Calibration: the phantom content model's ``novelty`` fraction (the
probability a write actually changes a block's content) follows the
fine-grained-update literature — Cohen et al.'s in-cache-line logging
and the JASS technique menu both report that steady-state HPC writes
rewrite a large fraction of bytes with unchanged values — and mirrors
this repo's existing ``CompressionModel.phantom_ratio = 0.6`` style of
a single documented modeling constant per write pattern.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CheckpointError, CodecError, ConfigError
from ..faults.crashpoints import fire

__all__ = [
    "DEFAULT_BLOCK",
    "DIGEST_META_BYTES",
    "DELTA_HEADER_BYTES",
    "Payload",
    "BlockStore",
    "ContentModel",
    "EntropyProbe",
    "Codec",
    "RawCodec",
    "DeltaCodec",
    "DedupCodec",
    "AutoCodec",
    "CODECS",
    "codec_names",
    "resolve_codec",
    "blocks_of_extents",
    "covered_bytes",
    "block_digests",
    "content_digest",
    "current_digests",
    "ensure_content_model",
    "PATTERN_NOVELTY",
]

#: default content block (one page — staleness is page-granular, so
#: blocks and stale runs align except at the chunk tail)
DEFAULT_BLOCK = 4096
#: wire cost of one manifest entry (8B digest + chunk/offset/len
#: bookkeeping a real store would persist per referenced block)
DIGEST_META_BYTES = 48
#: wire cost of one delta run header (offset + length + base check)
DELTA_HEADER_BYTES = 16

# splitmix64 finalizer constants (vectorized deterministic hashing)
_K1 = np.uint64(0x9E3779B97F4A7C15)
_K2 = np.uint64(0xBF58476D1CE4E5B9)
_K3 = np.uint64(0x94D049BB133111EB)
_U0 = np.uint64(0)
_U1 = np.uint64(1)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wraps mod 2^64)."""
    x = np.asarray(x, dtype=np.uint64)
    x = (x ^ (x >> np.uint64(30))) * _K2
    x = (x ^ (x >> np.uint64(27))) * _K3
    return x ^ (x >> np.uint64(31))


def content_digest(data) -> int:
    """blake2b/8 digest of a full buffer as a nonzero uint64 int."""
    h = hashlib.blake2b(bytes(data), digest_size=8).digest()
    return int.from_bytes(h, "little") or 1


def block_digests(data, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """blake2b/8 digest per *block* of *data* as a uint64 array.

    Zero digests are remapped to 1 so 0 stays the "absent" sentinel in
    slot maps.
    """
    mv = memoryview(bytes(data))
    n = max(1, -(-len(mv) // block)) if len(mv) else 0
    out = np.empty(n, dtype=np.uint64)
    for i in range(n):
        h = hashlib.blake2b(mv[i * block : (i + 1) * block], digest_size=8).digest()
        out[i] = int.from_bytes(h, "little") or 1
    return out


def blocks_of_extents(
    extents: Optional[List[tuple]], block: int, nbytes: int
) -> np.ndarray:
    """Indices (int64) of the blocks touched by *extents* (``None`` =
    the whole chunk)."""
    nblocks = max(1, -(-nbytes // block))
    if extents is None:
        return np.arange(nblocks, dtype=np.int64)
    mask = np.zeros(nblocks, dtype=bool)
    for off, n in extents:
        if n <= 0:
            continue
        mask[off // block : -(-(off + n) // block)] = True
    return np.flatnonzero(mask).astype(np.int64)


def covered_bytes(
    extents: Optional[List[tuple]], block: int, nbytes: int
) -> np.ndarray:
    """Per-block byte coverage (int64, full length) of *extents*."""
    nblocks = max(1, -(-nbytes // block))
    cov = np.zeros(nblocks, dtype=np.int64)
    if extents is None:
        extents = [(0, nbytes)]
    for off, n in extents:
        if n <= 0:
            continue
        b0 = off // block
        b1 = -(-(off + n) // block)
        cov[b0:b1] += block
        cov[b0] -= off - b0 * block
        cov[b1 - 1] -= b1 * block - (off + n)
    return cov


# ---------------------------------------------------------------------------
# Deterministic content evolution for phantom chunks.
# ---------------------------------------------------------------------------

#: per-write-pattern novelty defaults (fraction of a write that lands
#: as genuinely new content).  write_once data is effectively static;
#: staged chunks rework the same slices with mostly-unchanged values;
#: hot result arrays churn hardest.
PATTERN_NOVELTY = {
    "write_once": 0.05,
    "per_iter": 0.55,
    "staged": 0.35,
    "hot": 0.70,
}
DEFAULT_NOVELTY = 0.5


class ContentModel:
    """Models *what the bytes are* for a phantom (size-only) chunk.

    Each block keeps a write counter and a content **epoch**; a write
    bumps the epoch with probability ``novelty`` (decided by a
    deterministic splitmix64 hash of ``(salt, block, write#)``, so runs
    are exactly reproducible).  A block's digest is a pure function of
    ``(salt, block, epoch)`` — two checkpoints of an unchanged block
    therefore yield the same digest, which is what dedup exploits.
    """

    __slots__ = ("nbytes", "block", "nblocks", "novelty", "salt", "_writes", "_epochs", "_threshold")

    def __init__(
        self,
        nbytes: int,
        *,
        block: int = DEFAULT_BLOCK,
        novelty: float = DEFAULT_NOVELTY,
        salt: int = 0,
    ) -> None:
        self.nbytes = nbytes
        self.block = block
        # clamp below 1.0 so a changed block's delta is always strictly
        # cheaper than re-shipping it raw
        self.novelty = min(max(float(novelty), 0.0), 0.95)
        self.nblocks = max(1, -(-nbytes // block))
        self.salt = np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
        self._writes = np.zeros(self.nblocks, dtype=np.uint64)
        self._epochs = np.zeros(self.nblocks, dtype=np.uint64)
        self._threshold = np.uint64(int(self.novelty * 2**32))

    def record_write(self, offset: int, nbytes: int) -> None:
        """Account an application write: every touched block's write
        counter bumps; its epoch bumps iff the hash says this write
        changed the content."""
        if nbytes <= 0:
            return
        b0 = offset // self.block
        b1 = min(self.nblocks, -(-(offset + nbytes) // self.block))
        if b1 <= b0:
            return
        idx = np.arange(b0, b1, dtype=np.uint64)
        w = self._writes[b0:b1] + _U1
        self._writes[b0:b1] = w
        u = _mix64(self.salt ^ (idx * _K1) ^ (w * _K3))
        changed = (u >> np.uint64(32)) < self._threshold
        self._epochs[b0:b1][changed] += _U1

    def digests(self, idx: np.ndarray) -> np.ndarray:
        """Current content digest (nonzero uint64) of each block in *idx*."""
        idx = np.asarray(idx, dtype=np.int64)
        u = idx.astype(np.uint64)
        d = _mix64(self.salt ^ ((u + _U1) * _K1) ^ ((self._epochs[idx] + _U1) * _K2))
        return np.where(d == _U0, _U1, d)


def current_digests(chunk, idx: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Content digests of *idx* blocks as of *now* (phantom: content
    model; real: blake2b over the DRAM bytes).

    Publishing paths call this at stage time rather than reusing the
    digests planned before the transfer: staging re-reads the stale
    runs, so writes that raced the copy land in the staged version and
    the published digests must describe what actually landed.
    """
    model = ensure_content_model(chunk, block=block)
    if model is not None:
        return model.digests(idx)
    assert chunk.dram is not None
    idx = np.asarray(idx, dtype=np.int64)
    out = np.empty(len(idx), dtype=np.uint64)
    mv = memoryview(chunk.dram)
    for j, i in enumerate(idx):
        lo = int(i) * block
        h = hashlib.blake2b(mv[lo : lo + block], digest_size=8).digest()
        out[j] = int.from_bytes(h, "little") or 1
    return out


def ensure_content_model(chunk, *, block: int = DEFAULT_BLOCK) -> Optional[ContentModel]:
    """Attach (lazily) a :class:`ContentModel` to a phantom chunk.

    Real chunks return ``None`` — their digests come from the actual
    DRAM bytes.  The novelty knob comes from ``chunk.content_novelty``
    (set by the application model from the chunk's write pattern) with
    a documented default.
    """
    if not chunk.phantom:
        return None
    model = getattr(chunk, "_content", None)
    if model is None or model.nbytes != chunk.nbytes or model.block != block:
        model = ContentModel(
            chunk.nbytes,
            block=block,
            novelty=getattr(chunk, "content_novelty", DEFAULT_NOVELTY),
            salt=content_digest(chunk.name.encode()),
        )
        chunk._content = model
    return model


# ---------------------------------------------------------------------------
# Entropy probe (shared compressibility measurement — satellite 1).
# ---------------------------------------------------------------------------


class EntropyProbe:
    """Measures (and caches) how compressible a chunk's bytes are.

    One zlib level-1 pass over a bounded sample, cached by
    ``(incarnation, total_mods)`` *per chunk id*: the incarnation
    counter bumps whenever a chunk's identity-to-content mapping breaks
    (free/realloc, restore-from-committed, lazy-restart migration,
    resize), so stale ratios can never outlive the buffer they
    measured — the bug the old ``(chunk_id, total_mods)`` cache in
    :class:`repro.core.compression.CompressionModel` had.
    """

    SAMPLE_BYTES = 256 * 1024

    def __init__(self, default_ratio: float = 0.6) -> None:
        self.default_ratio = default_ratio
        #: chunk_id -> ((incarnation, total_mods), measured ratio)
        self._cache: Dict[int, Tuple[Tuple[int, int], float]] = {}
        self.measurements = 0

    def ratio_for(self, chunk) -> float:
        if chunk.phantom or chunk.dram is None:
            return self.default_ratio
        key = (chunk.incarnation, chunk.total_mods)
        hit = self._cache.get(chunk.chunk_id)
        if hit is not None and hit[0] == key:
            return hit[1]
        sample = chunk.dram[: self.SAMPLE_BYTES]
        ratio = min(1.0, len(zlib.compress(sample.tobytes(), 1)) / max(1, len(sample)))
        self._cache[chunk.chunk_id] = (key, ratio)
        self.measurements += 1
        return ratio

    def forget(self, chunk_id: int) -> None:
        self._cache.pop(chunk_id, None)


# ---------------------------------------------------------------------------
# Content-addressed block store.
# ---------------------------------------------------------------------------


class BlockStore:
    """Refcounted content-addressed index over committed block digests.

    The store is pure metadata: full content lives in the NVM shadow
    regions as before; the index proves block identity so planning can
    skip bytes that are already resident.  It is double-buffering
    aware — one digest map per ``(chunk, version slot)`` — and commits
    transactionally: ``stage`` during a round, ``commit`` at the
    coordinated commit point (between the data flush and the metadata
    flush), ``abort``/``begin_round`` to discard a crashed round.

    Everything is vectorized: the global index is a sorted uint64
    digest array with a parallel refcount array, and commits merge via
    ``np.unique`` + ``searchsorted`` into freshly built arrays that are
    swapped in atomically (a crash mid-commit leaves either the old or
    a rebuildable state — see :meth:`rebuild`).
    """

    def __init__(self, *, block: int = DEFAULT_BLOCK) -> None:
        self.block = block
        self._digests = np.empty(0, dtype=np.uint64)  # sorted, unique
        self._counts = np.empty(0, dtype=np.int64)  # parallel, all > 0
        #: (chunk_name, slot) -> per-block committed digest (0 = absent)
        self._slots: Dict[Tuple[str, int], np.ndarray] = {}
        self._staged: List[Tuple[str, int, np.ndarray, np.ndarray]] = []
        #: digest -> raw block bytes (exact mode only; planning mode
        #: never stores content)
        self._payloads: Dict[int, bytes] = {}
        self.commits = 0

    # -- queries -----------------------------------------------------------

    @property
    def unique_blocks(self) -> int:
        return len(self._digests)

    @property
    def total_refs(self) -> int:
        return int(self._counts.sum()) if len(self._counts) else 0

    def has(self, digest: int) -> bool:
        return self.refcount(digest) > 0

    def refcount(self, digest: int) -> int:
        i = int(np.searchsorted(self._digests, np.uint64(digest)))
        if i < len(self._digests) and self._digests[i] == np.uint64(digest):
            return int(self._counts[i])
        return 0

    def contains(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized membership of *digests* in the committed index."""
        digests = np.asarray(digests, dtype=np.uint64)
        if len(self._digests) == 0 or len(digests) == 0:
            return np.zeros(len(digests), dtype=bool)
        pos = np.searchsorted(self._digests, digests)
        pos = np.minimum(pos, len(self._digests) - 1)
        return self._digests[pos] == digests

    def slot_digests(self, name: str, slot: int) -> Optional[np.ndarray]:
        """The committed digest map for ``(name, slot)`` or ``None``."""
        return self._slots.get((name, slot))

    # -- round lifecycle ---------------------------------------------------

    def begin_round(self) -> None:
        """Drop any staleness left by a crashed round."""
        self._staged.clear()

    def stage(self, name: str, slot: int, idx: np.ndarray, digests: np.ndarray) -> None:
        """Queue digest updates for *idx* blocks of ``(name, slot)``;
        applied (and refcounted) only at :meth:`commit`."""
        idx = np.asarray(idx, dtype=np.int64)
        digests = np.asarray(digests, dtype=np.uint64)
        if len(idx) != len(digests):
            raise CheckpointError("block-store stage: index/digest length mismatch")
        if len(idx):
            # last write wins when one stage names a block twice —
            # otherwise commit would refcount a digest the slot map
            # never holds
            _, last_rev = np.unique(idx[::-1], return_index=True)
            sel = len(idx) - 1 - last_rev
            self._staged.append((name, slot, idx[sel], digests[sel]))

    def abort(self) -> None:
        self._staged.clear()

    def commit(self) -> int:
        """Apply every staged update transactionally; returns the
        number of block entries committed.

        Fires the ``codec.store.commit.*`` crash points: ``before`` is
        clean (nothing applied), ``mid`` is torn (slot maps updated but
        the refcount index not yet swapped — :meth:`rebuild` recovers),
        ``done`` is clean-after.
        """
        fire("codec.store.commit.before")
        if not self._staged:
            fire("codec.store.commit.mid")
            fire("codec.store.commit.done")
            return 0
        inc: List[np.ndarray] = []
        dec: List[np.ndarray] = []
        n_entries = 0
        for name, slot, idx, digests in self._staged:
            cur = self._ensure_slot(name, slot, int(idx.max()) + 1)
            old = cur[idx]
            dec.append(old[old != _U0])
            inc.append(digests)
            cur[idx] = digests
            n_entries += len(idx)
        fire("codec.store.commit.mid")
        self._apply(np.concatenate(inc), np.concatenate(dec) if dec else np.empty(0, np.uint64))
        self._staged.clear()
        self.commits += 1
        fire("codec.store.commit.done")
        return n_entries

    def _ensure_slot(self, name: str, slot: int, nblocks: int) -> np.ndarray:
        cur = self._slots.get((name, slot))
        if cur is None:
            cur = np.zeros(nblocks, dtype=np.uint64)
            self._slots[(name, slot)] = cur
        elif len(cur) < nblocks:
            grown = np.zeros(nblocks, dtype=np.uint64)
            grown[: len(cur)] = cur
            cur = grown
            self._slots[(name, slot)] = cur
        return cur

    def _apply(self, inc: np.ndarray, dec: np.ndarray) -> None:
        u_inc, c_inc = np.unique(inc, return_counts=True)
        merged = np.union1d(self._digests, u_inc)
        counts = np.zeros(len(merged), dtype=np.int64)
        if len(self._digests):
            counts[np.searchsorted(merged, self._digests)] = self._counts
        counts[np.searchsorted(merged, u_inc)] += c_inc
        if len(dec):
            u_dec, c_dec = np.unique(dec, return_counts=True)
            pos = np.searchsorted(merged, u_dec)
            present = (pos < len(merged)) & (merged[np.minimum(pos, len(merged) - 1)] == u_dec)
            if not present.all():
                raise CheckpointError("block-store decref of an unknown digest")
            counts[pos] -= c_dec
        if (counts < 0).any():
            raise CheckpointError("block-store refcount went negative")
        keep = counts > 0
        # build-then-swap: both arrays replaced in one step
        self._digests, self._counts = merged[keep], counts[keep]

    def rebuild(self) -> None:
        """Crash recovery: re-derive the refcount index from the slot
        maps (the maps are the durable truth; the index is a cache)."""
        live = [v[v != _U0] for v in self._slots.values()]
        alld = np.concatenate(live) if live else np.empty(0, np.uint64)
        self._digests, self._counts = np.unique(alld, return_counts=True)
        self._counts = self._counts.astype(np.int64)
        self._staged.clear()

    def drop_chunk(self, name: str) -> None:
        """Free/realloc: dereference every slot of *name*."""
        gone = [k for k in self._slots if k[0] == name]
        if not gone:
            return
        dec = np.concatenate([self._slots[k][self._slots[k] != _U0] for k in gone])
        for k in gone:
            del self._slots[k]
        if len(dec):
            self._apply(np.empty(0, np.uint64), dec)

    # -- exact-mode content (property tests / demo / verification) --------

    def put_bytes(self, digest: int, data: bytes) -> None:
        self._payloads.setdefault(int(digest), bytes(data))

    def get_bytes(self, digest: int) -> bytes:
        try:
            return self._payloads[int(digest)]
        except KeyError:
            raise CodecError(f"block store has no content for digest {digest:#x}")


# ---------------------------------------------------------------------------
# Payload: the unit of transfer.
# ---------------------------------------------------------------------------


@dataclass
class Payload:
    """What one chunk's checkpoint round actually puts on the wire."""

    kind: str  # "full" | "delta" | "dedup"
    codec: str  # codec that produced it ("raw", "delta", "dedup", "auto")
    logical_bytes: int  # pre-codec bytes (what raw would have shipped)
    wire_bytes: int  # bytes actually charged to the bus/fabric
    extents: Optional[List[tuple]] = None
    blocks: int = 0  # blocks covered
    blocks_new: int = 0  # blocks whose content must ship
    blocks_ref: int = 0  # blocks satisfied by store references
    changed_bytes: int = 0  # delta: bytes that differ from the base
    slot: int = -1  # planning: version slot the digests publish into
    base_slot: int = -1  # delta: version slot used as the base
    base_digest: int = 0  # exact mode: digest of the base buffer
    data: Optional[bytes] = None  # exact mode: encoded representation
    block_index: Optional[np.ndarray] = None  # planning: covered block idx
    block_digests: Optional[np.ndarray] = None  # planning: their digests
    candidates: Optional[Dict[str, int]] = None  # auto: wire per candidate
    entropy: float = -1.0  # probe ratio at decision time (-1 = unmeasured)
    density: float = 0.0  # dirty density (logical / chunk bytes)

    @property
    def saved_bytes(self) -> int:
        return max(0, self.logical_bytes - self.wire_bytes)


# ---------------------------------------------------------------------------
# Codecs.
# ---------------------------------------------------------------------------


class Codec:
    """Base codec: both the exact byte transform and the DES planner."""

    name = "raw"

    # -- exact mode --------------------------------------------------------

    def encode_bytes(
        self,
        data,
        *,
        base=None,
        store: Optional[BlockStore] = None,
        block: int = DEFAULT_BLOCK,
    ) -> Payload:
        raise NotImplementedError

    def decode_bytes(
        self,
        payload: Payload,
        *,
        base=None,
        store: Optional[BlockStore] = None,
    ) -> bytes:
        raise NotImplementedError

    # -- planning mode -----------------------------------------------------

    def plan(
        self,
        chunk,
        extents: Optional[List[tuple]],
        *,
        store: BlockStore,
        slot: int,
        base_slot: int = -1,
        name: Optional[str] = None,
        probe: Optional[EntropyProbe] = None,
    ) -> Payload:
        raise NotImplementedError

    # shared planning helpers ---------------------------------------------

    def _coverage(self, chunk, extents, block):
        idx = blocks_of_extents(extents, block, chunk.nbytes)
        cov = covered_bytes(extents, block, chunk.nbytes)
        return idx, cov, int(cov.sum())

    def _digests_for(self, chunk, idx: np.ndarray, block: int) -> np.ndarray:
        """Current content digests of *idx* blocks at planning time."""
        return current_digests(chunk, idx, block)


class RawCodec(Codec):
    """Identity: wire == logical.  The default and golden baseline."""

    name = "raw"

    def encode_bytes(self, data, *, base=None, store=None, block=DEFAULT_BLOCK) -> Payload:
        raw = bytes(data)
        return Payload(
            kind="full", codec=self.name, logical_bytes=len(raw), wire_bytes=len(raw), data=raw
        )

    def decode_bytes(self, payload, *, base=None, store=None) -> bytes:
        if payload.data is None:
            raise CodecError("raw payload carries no data")
        return payload.data

    def plan(self, chunk, extents, *, store, slot, base_slot=-1, name=None, probe=None) -> Payload:
        logical = chunk.nbytes if extents is None else int(sum(n for _, n in extents))
        return Payload(
            kind="full",
            codec=self.name,
            logical_bytes=logical,
            wire_bytes=logical,
            extents=extents,
            density=logical / max(1, chunk.nbytes),
        )


class DeltaCodec(Codec):
    """XOR-delta against the committed shadow version.

    Exact mode packs changed runs as ``(u64 offset, u32 length)``
    headers plus the XOR bytes; decode verifies the base's digest
    before applying (delta-against-wrong-base must fail loudly, not
    corrupt silently).
    """

    name = "delta"
    _RUN = struct.Struct("<QI")

    def encode_bytes(self, data, *, base=None, store=None, block=DEFAULT_BLOCK) -> Payload:
        raw = bytes(data)
        if base is None:
            raise CodecError("delta encode requires a base buffer")
        base_b = bytes(base)
        if len(base_b) != len(raw):
            raise CodecError(
                f"delta base length {len(base_b)} != data length {len(raw)}"
            )
        a = np.frombuffer(raw, dtype=np.uint8)
        b = np.frombuffer(base_b, dtype=np.uint8)
        neq = a != b
        # run boundaries of the changed mask
        edges = np.flatnonzero(np.diff(neq.astype(np.int8)))
        starts = list((edges + 1)[~neq[edges]]) if len(edges) else []
        ends = list((edges + 1)[neq[edges]]) if len(edges) else []
        if len(neq) and neq[0]:
            starts.insert(0, 0)
        if len(neq) and neq[-1]:
            ends.append(len(neq))
        parts = []
        changed = 0
        for s, e in zip(starts, ends):
            parts.append(self._RUN.pack(s, e - s))
            parts.append((a[s:e] ^ b[s:e]).tobytes())
            changed += e - s
        packed = b"".join(parts)
        return Payload(
            kind="delta",
            codec=self.name,
            logical_bytes=len(raw),
            wire_bytes=len(packed) + DELTA_HEADER_BYTES,
            changed_bytes=changed,
            base_digest=content_digest(base_b),
            data=packed,
        )

    def decode_bytes(self, payload, *, base=None, store=None) -> bytes:
        if base is None:
            raise CodecError("delta decode requires the base buffer")
        base_b = bytes(base)
        if content_digest(base_b) != payload.base_digest:
            raise CodecError("delta base mismatch: digest differs from encode-time base")
        out = bytearray(base_b)
        data = payload.data or b""
        pos = 0
        while pos < len(data):
            off, n = self._RUN.unpack_from(data, pos)
            pos += self._RUN.size
            xor = data[pos : pos + n]
            pos += n
            for i in range(n):
                out[off + i] ^= xor[i]
        return bytes(out)

    def plan(self, chunk, extents, *, store, slot, base_slot=-1, name=None, probe=None) -> Payload:
        block = store.block
        cname = name or chunk.name
        idx, cov, logical = self._coverage(chunk, extents, block)
        digests = self._digests_for(chunk, idx, block)
        base = store.slot_digests(cname, base_slot) if base_slot >= 0 else None
        payload = Payload(
            kind="delta",
            codec=self.name,
            logical_bytes=logical,
            wire_bytes=logical,
            extents=extents,
            blocks=len(idx),
            base_slot=base_slot,
            block_index=idx,
            block_digests=digests,
            density=logical / max(1, chunk.nbytes),
        )
        if base is None or len(idx) == 0:
            # no committed base: ship full (but still publish digests
            # so the next round has a base)
            payload.kind = "full"
            return payload
        based = np.zeros(len(idx), dtype=np.uint64)
        inb = idx < len(base)
        based[inb] = base[idx[inb]]
        unchanged = based == digests
        changed_cov = cov[idx[~unchanged]]
        changed_bytes = self._changed_bytes(chunk, idx[~unchanged], changed_cov, block, base_slot)
        wire = int(changed_bytes + len(idx) * DELTA_HEADER_BYTES)
        payload.wire_bytes = min(wire, logical)
        payload.changed_bytes = int(changed_bytes)
        payload.blocks_ref = int(unchanged.sum())
        payload.blocks_new = int((~unchanged).sum())
        return payload

    def _changed_bytes(self, chunk, changed_idx, changed_cov, block, base_slot) -> int:
        """Bytes that actually differ within the changed blocks: exact
        XOR count for real chunks with a readable committed region,
        novelty-scaled coverage for phantom chunks."""
        if len(changed_idx) == 0:
            return 0
        model = getattr(chunk, "_content", None)
        if chunk.phantom:
            novelty = model.novelty if model is not None else DEFAULT_NOVELTY
            return int(round(float(changed_cov.sum()) * novelty))
        try:
            base = chunk.versions[base_slot].read(0, chunk.nbytes)
        except Exception:
            return int(changed_cov.sum())
        total = 0
        for i, covb in zip(changed_idx, changed_cov):
            lo = int(i) * block
            hi = min(lo + block, chunk.nbytes)
            total += int(np.count_nonzero(chunk.dram[lo:hi] != base[lo:hi]))
        return total


class DedupCodec(Codec):
    """Content-addressed dedup: blocks already in the store ship as
    digest references; only novel blocks ship bytes.

    Exact mode packs per block: ``flag(1) + digest(8)`` for a ref, or
    ``flag(1) + digest(8) + len(4) + bytes`` for a new block (which is
    also published to the store so later encodes can reference it).
    """

    name = "dedup"
    _HDR = struct.Struct("<BQI")

    def encode_bytes(self, data, *, base=None, store=None, block=DEFAULT_BLOCK) -> Payload:
        if store is None:
            raise CodecError("dedup encode requires a block store")
        raw = bytes(data)
        mv = memoryview(raw)
        parts = []
        new = ref = 0
        nblocks = max(1, -(-len(raw) // block)) if raw else 0
        for i in range(nblocks):
            blk = mv[i * block : (i + 1) * block]
            dg = content_digest(blk)
            if store.has(dg) or dg in store._payloads:
                parts.append(self._HDR.pack(1, dg, 0))
                ref += 1
            else:
                parts.append(self._HDR.pack(0, dg, len(blk)))
                parts.append(bytes(blk))
                store.put_bytes(dg, bytes(blk))
                new += 1
        packed = b"".join(parts)
        return Payload(
            kind="dedup",
            codec=self.name,
            logical_bytes=len(raw),
            wire_bytes=len(packed),
            blocks=nblocks,
            blocks_new=new,
            blocks_ref=ref,
            data=packed,
        )

    def decode_bytes(self, payload, *, base=None, store=None) -> bytes:
        if store is None:
            raise CodecError("dedup decode requires a block store")
        data = payload.data or b""
        out = bytearray()
        pos = 0
        while pos < len(data):
            flag, dg, n = self._HDR.unpack_from(data, pos)
            pos += self._HDR.size
            if flag:
                blk = store.get_bytes(dg)
            else:
                blk = data[pos : pos + n]
                pos += n
                if content_digest(blk) != dg:
                    raise CodecError("dedup block digest mismatch on decode")
            out += blk
        return bytes(out[: payload.logical_bytes])

    def plan(self, chunk, extents, *, store, slot, base_slot=-1, name=None, probe=None) -> Payload:
        block = store.block
        idx, cov, logical = self._coverage(chunk, extents, block)
        digests = self._digests_for(chunk, idx, block)
        hits = store.contains(digests)
        new_bytes = int(cov[idx[~hits]].sum())
        wire = new_bytes + len(idx) * DIGEST_META_BYTES
        return Payload(
            kind="dedup",
            codec=self.name,
            logical_bytes=logical,
            wire_bytes=min(int(wire), logical) if logical else int(wire),
            extents=extents,
            blocks=len(idx),
            blocks_new=int((~hits).sum()),
            blocks_ref=int(hits.sum()),
            base_slot=base_slot,
            block_index=idx,
            block_digests=digests,
            density=logical / max(1, chunk.nbytes),
        )


class AutoCodec(Codec):
    """The per-chunk policy axis: plan delta and dedup, score them
    against raw by wire bytes, pick the cheapest.  Observed entropy
    (real chunks, via the shared probe) and dirty density are recorded
    on the payload for the ``codec.decision`` trace event."""

    name = "auto"

    def __init__(self) -> None:
        self._delta = DeltaCodec()
        self._dedup = DedupCodec()
        self._raw = RawCodec()

    def encode_bytes(self, data, *, base=None, store=None, block=DEFAULT_BLOCK) -> Payload:
        options = [self._raw.encode_bytes(data, block=block)]
        if base is not None:
            options.append(self._delta.encode_bytes(data, base=base, block=block))
        if store is not None:
            options.append(self._dedup.encode_bytes(data, store=store, block=block))
        best = min(options, key=lambda p: p.wire_bytes)
        best.candidates = {p.codec: p.wire_bytes for p in options}
        return best

    def decode_bytes(self, payload, *, base=None, store=None) -> bytes:
        inner = {"raw": self._raw, "delta": self._delta, "dedup": self._dedup}[
            payload.codec if payload.codec != self.name else payload.kind
        ]
        return inner.decode_bytes(payload, base=base, store=store)

    def plan(self, chunk, extents, *, store, slot, base_slot=-1, name=None, probe=None) -> Payload:
        raw = self._raw.plan(chunk, extents, store=store, slot=slot)
        delta = self._delta.plan(
            chunk, extents, store=store, slot=slot, base_slot=base_slot, name=name
        )
        dedup = self._dedup.plan(
            chunk, extents, store=store, slot=slot, base_slot=base_slot, name=name
        )
        best = min((raw, delta, dedup), key=lambda p: p.wire_bytes)
        if best is raw and dedup.block_index is not None:
            # raw won this round, but publish the digests anyway so the
            # *next* round has a dedup/delta base to win against
            best = Payload(
                kind="full",
                codec="raw",
                logical_bytes=raw.logical_bytes,
                wire_bytes=raw.wire_bytes,
                extents=extents,
                blocks=dedup.blocks,
                base_slot=base_slot,
                block_index=dedup.block_index,
                block_digests=dedup.block_digests,
                density=raw.density,
            )
        best.candidates = {
            "raw": raw.wire_bytes,
            "delta": delta.wire_bytes,
            "dedup": dedup.wire_bytes,
        }
        if probe is not None:
            best.entropy = probe.ratio_for(chunk)
        return best


CODECS = {
    "raw": RawCodec,
    "delta": DeltaCodec,
    "dedup": DedupCodec,
    "auto": AutoCodec,
}


def codec_names() -> List[str]:
    return sorted(CODECS)


def resolve_codec(name: str) -> Codec:
    try:
        cls = CODECS[name]
    except KeyError:
        raise ConfigError(f"unknown codec {name!r}; expected one of {codec_names()}")
    return cls()
