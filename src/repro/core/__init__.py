"""The paper's primary contribution: the NVM-checkpoint runtime.

* :mod:`~repro.core.context` — the node-local execution context
  (engine, NVM bus, CPU cores, kernel manager) everything runs against;
* :mod:`~repro.core.prediction` — DCPCP prediction table + chunk
  modification state machine (Fig. 6);
* :mod:`~repro.core.threshold` — DCPC pre-copy threshold estimation;
* :mod:`~repro.core.precopy` — the background chunk pre-copy engine;
* :mod:`~repro.core.local` — coordinated local checkpoints (shadow
  buffering + two-version commit);
* :mod:`~repro.core.remote` — the per-node asynchronous helper doing
  remote (buddy-node) pre-copy checkpoints over RDMA;
* :mod:`~repro.core.restart` — restart/recovery with checksum checks
  and remote fetch;
* :mod:`~repro.core.api` — the synchronous Table-III facade
  (:class:`NVMCheckpoint`) for direct library use.
"""

from .context import NodeContext, make_standalone_context
from .prediction import ModificationStateMachine, PredictionTable
from .threshold import ThresholdEstimator
from .policy import (
    CheckpointPolicy,
    Decision,
    DelayedPrecopyPolicy,
    IntervalClock,
    NonePolicy,
    POLICIES,
    PredictivePolicy,
    policy_class,
    resolve_policy,
)
from .policy import PrecopyPolicy as PrecopyPolicyStrategy
from .destination import (
    Destination,
    NVMArenaDestination,
    PfsDestination,
    RamdiskDestination,
    RemoteBuddyDestination,
    TransferFnDestination,
)
from .precopy import PrecopyEngine
from .engine import CheckpointEngine, CheckpointStats
from .local import LocalCheckpointer
from .remote import RemoteCheckpointStats, RemoteHelper, RemoteTarget
from .restart import RestartManager, RestartReport
from .scrub import Scrubber, ScrubReport
from .erasure import XorParityGroup
from .transparent import TransparentCheckpointer
from .compression import CompressionModel
from .archive import ArchiveStats, ArchiveTier
from .autotune import IntervalTuner, OnlinePolicyTuner
from .api import NVMCheckpoint

__all__ = [
    "NodeContext",
    "make_standalone_context",
    "PredictionTable",
    "ModificationStateMachine",
    "ThresholdEstimator",
    "CheckpointPolicy",
    "Decision",
    "IntervalClock",
    "NonePolicy",
    "PrecopyPolicyStrategy",
    "DelayedPrecopyPolicy",
    "PredictivePolicy",
    "POLICIES",
    "policy_class",
    "resolve_policy",
    "Destination",
    "NVMArenaDestination",
    "PfsDestination",
    "RamdiskDestination",
    "RemoteBuddyDestination",
    "TransferFnDestination",
    "PrecopyEngine",
    "CheckpointEngine",
    "LocalCheckpointer",
    "CheckpointStats",
    "RemoteHelper",
    "RemoteTarget",
    "RemoteCheckpointStats",
    "RestartManager",
    "RestartReport",
    "Scrubber",
    "ScrubReport",
    "XorParityGroup",
    "TransparentCheckpointer",
    "CompressionModel",
    "ArchiveTier",
    "ArchiveStats",
    "IntervalTuner",
    "OnlinePolicyTuner",
    "NVMCheckpoint",
]
