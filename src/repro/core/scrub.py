"""Background checksum scrubbing (extension of the §V checksum
feature).

The paper computes per-chunk checksums at commit and verifies them at
restart.  With PCM's limited write endurance (1e8 cycles) and the long
residence times of checkpoint data, silent corruption discovered only
*at restart* is the worst possible moment — so this extension adds a
**scrubber** that sweeps committed chunks during idle time, verifies
their stored checksums against the NVM contents, and repairs corrupted
chunks from the buddy copy before they are ever needed.

``Scrubber.scan`` is the synchronous sweep; ``Scrubber.run`` is a DES
process performing periodic sweeps at a paced read rate (NVM reads are
near-DRAM speed, Table I, so scrubbing is cheap but still charged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..alloc.nvmalloc import NVAllocator
from ..errors import NoCheckpointAvailable, TransferCancelled, TransferFailed
from ..net.interconnect import Fabric
from ..net.rdma import rdma_get
from .context import NodeContext
from .remote import RemoteTarget

__all__ = ["Scrubber", "ScrubReport"]


@dataclass
class ScrubReport:
    """Outcome of one scrub sweep."""

    start: float = 0.0
    end: float = 0.0
    chunks_scanned: int = 0
    bytes_scanned: int = 0
    corrupted: List[str] = field(default_factory=list)
    repaired: List[str] = field(default_factory=list)
    unrepairable: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def clean(self) -> bool:
        return not self.corrupted


class Scrubber:
    """Sweeps an allocator's committed chunks, verifying and repairing."""

    def __init__(
        self,
        ctx: NodeContext,
        allocator: NVAllocator,
        *,
        fabric: Optional[Fabric] = None,
        node_id: Optional[int] = None,
        remote_target: Optional[RemoteTarget] = None,
        remote_node: Optional[int] = None,
        interval: float = 300.0,
        resilience=None,
    ) -> None:
        self.ctx = ctx
        self.allocator = allocator
        self.fabric = fabric
        self.node_id = node_id
        self.remote_target = remote_target
        self.remote_node = remote_node
        self.interval = interval
        #: optional ResilientTransport: repair fetches retry through
        #: transient outages instead of failing on the first cancel
        self.resilience = resilience
        self.reports: List[ScrubReport] = []
        self._stop = False

    # ------------------------------------------------------------------
    # One sweep.
    # ------------------------------------------------------------------

    def scan(self, repair: bool = True):
        """Generator process: verify every committed chunk, repairing
        corrupted ones from the buddy when possible.  Returns a
        :class:`ScrubReport`."""
        engine = self.ctx.engine
        report = ScrubReport(start=engine.now)
        for chunk in self.allocator.persistent_chunks():
            if chunk.committed_version < 0:
                continue
            # the verification read flows through the NVM bus (reads
            # are near-DRAM speed but not free)
            yield self.ctx.nvm_bus.transfer(chunk.nbytes, tag=f"{self.allocator.pid}:scrub")
            report.chunks_scanned += 1
            report.bytes_scanned += chunk.nbytes
            if chunk.verify_checksum():
                continue
            report.corrupted.append(chunk.name)
            if not repair:
                continue
            fixed = yield from self._repair(chunk)
            if fixed:
                report.repaired.append(chunk.name)
            else:
                report.unrepairable.append(chunk.name)
        report.end = engine.now
        self.reports.append(report)
        return report

    def _repair(self, chunk):
        """Fetch the buddy's committed copy, restore it into the local
        in-progress version and re-commit.  Returns True on success."""
        if (
            self.remote_target is None
            or self.fabric is None
            or self.node_id is None
            or self.remote_node is None
        ):
            return False
        if self.remote_target.committed.get(chunk.name, -1) < 0:
            return False
        # do not replace a corrupted local copy with a corrupted buddy
        # copy: verify the buddy's stored checksum first
        if not self.remote_target.verify(chunk.name):
            return False
        tag = f"{self.allocator.pid}:scrub-repair"
        try:
            if self.resilience is not None:
                yield from self.resilience.get(
                    self.fabric,
                    self.remote_node,
                    self.node_id,
                    chunk.nbytes,
                    tag=tag,
                    src_nvm_bus=self.remote_target.dst_ctx.nvm_bus,
                )
            else:
                yield rdma_get(
                    self.fabric,
                    self.remote_node,
                    self.node_id,
                    chunk.nbytes,
                    tag=tag,
                    src_nvm_bus=self.remote_target.dst_ctx.nvm_bus,
                )
        except (TransferCancelled, TransferFailed):
            # buddy unreachable (outage / dead node): leave the chunk
            # for a later sweep rather than raising out of the scan
            return False
        payload = self.remote_target.fetch(chunk.name)
        if not chunk.phantom:
            assert chunk.dram is not None
            # restore the buddy's payload into DRAM, then re-persist
            chunk.dram[:] = payload
        chunk.stage_to_nvm()
        self.ctx.nvmm.cache_flush()
        chunk.commit(with_checksum=True)
        self.allocator._persist_metadata()
        self.ctx.nvmm.cache_flush()
        return True

    def scan_sync(self, repair: bool = True) -> ScrubReport:
        """Run one sweep to completion on this context's own engine."""
        proc = self.ctx.engine.process(self.scan(repair=repair), name="scrub")
        self.ctx.engine.run()
        return proc.value

    # ------------------------------------------------------------------
    # Periodic background scrubbing.
    # ------------------------------------------------------------------

    def stop(self) -> None:
        self._stop = True

    def run(self, repair: bool = True):
        """Generator process: sweep every ``interval`` seconds until
        :meth:`stop`."""
        engine = self.ctx.engine
        while not self._stop:
            yield engine.timeout(self.interval)
            if self._stop:
                break
            yield from self.scan(repair=repair)
        return self.reports

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    @property
    def total_corruption_found(self) -> int:
        return sum(len(r.corrupted) for r in self.reports)

    @property
    def total_repaired(self) -> int:
        return sum(len(r.repaired) for r in self.reports)
