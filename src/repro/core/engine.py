"""The unified checkpoint engine (§IV/§V): one dirty-chunk walk, one
cache-flush/commit ordering, one stats struct — for every mode and
every backend.

:class:`CheckpointEngine` composes the two strategy axes of the
pipeline:

* a :class:`~repro.core.policy.CheckpointPolicy` deciding *when* each
  dirty chunk moves (naive / CPC / DCPC / DCPCP — resolved from the
  :class:`~repro.config.PrecopyPolicy` config's mode via the policy
  registry);
* a :class:`~repro.core.destination.Destination` deciding *where* and
  *how* the bytes land (NVM shadow arena, PFS, ramdisk, remote buddy).

The coordinated step (``nvchkptall``) is the paper's sequence: pause
pre-copy, copy every still-dirty chunk, flush, commit staged versions,
persist metadata, flush again (commit point).  ``LocalCheckpointer``,
``TransparentCheckpointer``, ``NVMCheckpoint`` and the baselines are
thin facades over this one engine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..alloc.chunk import Chunk, ChunkState
from ..alloc.nvmalloc import NVAllocator
from ..config import PrecopyPolicy as PrecopyConfig
from ..errors import CheckpointError
from ..faults.crashpoints import fire
from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..metrics.trace import (
    BUS,
    ChunkCopiedEvent,
    CodecDecisionEvent,
    CommitEvent,
    PolicyDecisionEvent,
)
from ..units import pages_of
from .codec import EntropyProbe, Payload, current_digests, resolve_codec
from .context import NodeContext
from .destination import Destination, NVMArenaDestination
from .policy import CheckpointPolicy, policy_class, resolve_policy
from .precopy import PrecopyEngine
from .prediction import PredictionTable
from .threshold import ThresholdEstimator

__all__ = ["CheckpointEngine", "CheckpointStats"]


@dataclass
class CheckpointStats:
    """Result of one coordinated local checkpoint."""

    start: float = 0.0
    end: float = 0.0
    bytes_copied: int = 0
    chunks_copied: int = 0
    chunks_skipped: int = 0
    flush_cost: float = 0.0
    #: chunk bytes NOT moved thanks to page-granular incremental
    #: extents (0 in whole-chunk mode) — pairs with ``bytes_copied``
    #: exactly like the ``chunk.copied`` trace event's field
    bytes_saved: int = 0
    #: the policy mode this coordinated step ran under (autotuned runs
    #: switch modes between intervals)
    policy: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class CheckpointEngine:
    """Per-rank coordinated checkpoint coordinator over one policy and
    one destination."""

    def __init__(
        self,
        ctx: NodeContext,
        allocator: NVAllocator,
        policy: Optional[PrecopyConfig] = None,
        *,
        destination: Optional[Destination] = None,
        decision_policy: Optional[CheckpointPolicy] = None,
        timeline: Optional[Timeline] = None,
        with_checksums: bool = True,
        tag: Optional[str] = None,
        tenant: str = "",
    ) -> None:
        self.ctx = ctx
        self.allocator = allocator
        self.policy = policy or PrecopyConfig()
        self.destination = destination or NVMArenaDestination(ctx, allocator)
        self.timeline = timeline
        self.with_checksums = with_checksums
        self.rank = allocator.pid
        self.tag = tag or self.rank
        #: owning tenant in multi-tenant runs; stamped on every
        #: chunk.copied/commit trace event so per-tenant metering can
        #: attribute the traffic ("" = untenanted)
        self.tenant = tenant
        self.last_checkpoint_end = ctx.engine.now
        self.checkpoints_done = 0
        self.history: List[CheckpointStats] = []
        #: observers called with each completed CheckpointStats (the
        #: remote helper hooks its per-rank pre-copy rhythm here)
        self.on_complete: List = []

        #: payload codec (None on the raw default path: no content
        #: models, no block store, no per-write overhead)
        self.codec = resolve_codec(self.policy.codec) if self.policy.codec_enabled else None
        self.entropy_probe = EntropyProbe() if self.codec is not None else None
        if self.codec is not None:
            self.destination.ensure_block_store(self.policy.codec_block)
        # codec wire accounting (aggregated into RunResult when on)
        self.codec_logical_bytes = 0
        self.codec_wire_bytes = 0
        self.codec_delta_bytes = 0
        self.codec_blocks_new = 0
        self.codec_blocks_ref = 0

        self.threshold: Optional[ThresholdEstimator] = None
        self.prediction: Optional[PredictionTable] = None
        self.precopy: Optional[PrecopyEngine] = None
        policy_cls = policy_class(self.policy.mode)
        if policy_cls.needs_threshold:
            self.threshold = ThresholdEstimator(
                bandwidth_per_core=ctx.effective_nvm_bw_per_core(),
                smoothing=self.policy.adapt_smoothing,
                margin=self.policy.threshold_margin,
                clock=lambda: self.ctx.engine.now,
                actor=str(self.rank),
            )
        if policy_cls.needs_prediction:
            self.prediction = PredictionTable(smoothing=self.policy.adapt_smoothing)
        #: the scheduling strategy — one registry lookup, shared with
        #: the background pre-copy engine so both walk one decision path
        self.decision_policy = decision_policy or resolve_policy(
            self.policy.mode, threshold=self.threshold, prediction=self.prediction
        )
        if self.decision_policy.precopies:
            self.precopy = PrecopyEngine(
                ctx,
                chunks=self.allocator.persistent_chunks,
                policy=self.policy,
                stream="local",
                tag=f"{self.tag}:precopy",
                threshold=self.threshold,
                prediction=self.prediction,
                decision_policy=self.decision_policy,
                codec_hooks=self if self.codec is not None else None,
                tenant=self.tenant,
            )
        self._precopy_proc = None
        self._background_started = False

    # ------------------------------------------------------------------
    # Background engine lifecycle.
    # ------------------------------------------------------------------

    @property
    def tracks_dirty(self) -> bool:
        """With pre-copy off, the baseline copies everything each time."""
        return self.decision_policy.precopies

    def start_background(self) -> None:
        """Spawn the pre-copy engine as a DES process (no-op for the
        no-pre-copy baseline)."""
        self._background_started = True
        if self.policy.granularity == "page":
            for chunk in self.allocator.chunks():
                chunk.page_granular_protection = True
        if self.precopy is not None and self._precopy_proc is None:
            self.precopy.wire_chunks()
            self._precopy_proc = self.ctx.engine.process(
                self.precopy.run(), name=f"{self.tag}:precopy"
            )

    def stop_background(self) -> None:
        self._background_started = False
        if self.precopy is not None:
            self.precopy.stop()
            self._precopy_proc = None

    # ------------------------------------------------------------------
    # Hot policy swap (online autotuning).
    # ------------------------------------------------------------------

    def set_policy(self, mode: str) -> CheckpointPolicy:
        """Swap the scheduling policy to *mode* between intervals.

        Estimators are created lazily on first need and *kept warm*
        across switches (a bandit cycling through modes must not
        re-learn the threshold every pull).  The pre-copy engine is
        created and spawned on the first switch to a pre-copying mode;
        switching to the no-pre-copy baseline leaves it attached but
        idle (the :class:`~repro.core.policy.NonePolicy` strategy makes
        no chunk eligible).  Only call between coordinated checkpoints
        — e.g. from an ``on_complete`` observer — never while one is in
        flight.
        """
        policy_cls = policy_class(mode)
        if mode == self.policy.mode:
            return self.decision_policy
        if policy_cls.needs_threshold and self.threshold is None:
            self.threshold = ThresholdEstimator(
                bandwidth_per_core=self.ctx.effective_nvm_bw_per_core(),
                smoothing=self.policy.adapt_smoothing,
                margin=self.policy.threshold_margin,
                clock=lambda: self.ctx.engine.now,
                actor=str(self.rank),
            )
        if policy_cls.needs_prediction and self.prediction is None:
            self.prediction = PredictionTable(smoothing=self.policy.adapt_smoothing)
        self.policy = dataclasses.replace(self.policy, mode=mode)
        self.decision_policy = resolve_policy(
            mode, threshold=self.threshold, prediction=self.prediction
        )
        if self.decision_policy.precopies and self.precopy is None:
            self.precopy = PrecopyEngine(
                self.ctx,
                chunks=self.allocator.persistent_chunks,
                policy=self.policy,
                stream="local",
                tag=f"{self.tag}:precopy",
                threshold=self.threshold,
                prediction=self.prediction,
                decision_policy=self.decision_policy,
                codec_hooks=self if self.codec is not None else None,
                tenant=self.tenant,
            )
            if self._background_started:
                self.precopy.wire_chunks()
                self._precopy_proc = self.ctx.engine.process(
                    self.precopy.run(), name=f"{self.tag}:precopy"
                )
        elif self.precopy is not None:
            self.precopy.adopt_policy(
                self.policy,
                self.decision_policy,
                threshold=self.threshold,
                prediction=self.prediction,
            )
        return self.decision_policy

    # ------------------------------------------------------------------
    # The coordinated checkpoint step (nvchkptall).
    # ------------------------------------------------------------------

    def _chunks_to_copy(self, only: Optional[Iterable[Chunk]] = None) -> List[Chunk]:
        chunks = list(only) if only is not None else self.allocator.persistent_chunks()
        if self.tracks_dirty:
            return [c for c in chunks if c.dirty_local]
        return chunks

    def checkpoint(
        self, only: Optional[Iterable[Chunk]] = None, *, blocking: bool = True
    ):
        """One coordinated local checkpoint (``nvchkptall``).

        With ``blocking=True`` (the default) the checkpoint runs to
        completion on this context's own engine and the
        :class:`CheckpointStats` is returned — the synchronous facade
        path, valid only from *outside* the simulation.  With
        ``blocking=False`` the call returns the checkpoint *generator*
        for DES embedding (``yield from ck.checkpoint(blocking=False)``
        inside a simulated process, or ``engine.process(...)``).

        ``only`` restricts the chunk set (``nvchkptid``); the commit
        still covers only what was staged.
        """
        if blocking:
            proc = self.ctx.engine.process(
                self._checkpoint_proc(only), name=f"{self.tag}:ckpt"
            )
            self.ctx.engine.run()
            return proc.value
        return self._checkpoint_proc(only)

    def _trace_decisions(self, all_persistent: List[Chunk], to_copy: List[Chunk]) -> None:
        now = self.ctx.engine.now
        copying = {c.chunk_id for c in to_copy}
        pname = self.decision_policy.name
        for chunk in all_persistent:
            BUS.emit(
                PolicyDecisionEvent(
                    t=now,
                    actor=str(self.rank),
                    chunk=chunk.name,
                    decision=(
                        "copy_at_checkpoint" if chunk.chunk_id in copying else "skip"
                    ),
                    policy=pname,
                )
            )

    # ------------------------------------------------------------------
    # Payload codec hooks (shared with the pre-copy engine).
    # ------------------------------------------------------------------

    def plan_payload(self, chunk: Chunk, extents) -> Optional[Payload]:
        """Plan what actually crosses the wire for *chunk*'s dirty
        extents; ``None`` on the raw path.  Emits the ``codec.decision``
        trace event when the auto policy axis made a choice."""
        if self.codec is None:
            return None
        slot, base_slot = self.destination.codec_slots(chunk)
        payload = self.codec.plan(
            chunk,
            extents,
            store=self.destination.block_store,
            slot=slot,
            base_slot=base_slot,
            probe=self.entropy_probe,
        )
        payload.slot = slot
        if payload.candidates is not None and BUS.active:
            BUS.emit(
                CodecDecisionEvent(
                    t=self.ctx.engine.now,
                    actor=str(self.rank),
                    chunk=chunk.name,
                    chosen=payload.codec,
                    raw_bytes=payload.candidates.get("raw", 0),
                    delta_bytes=payload.candidates.get("delta", 0),
                    dedup_bytes=payload.candidates.get("dedup", 0),
                    entropy=payload.entropy,
                    density=payload.density,
                )
            )
        return payload

    def account_payload(self, payload: Payload) -> None:
        """Wire accounting for a payload whose bytes moved (counted
        even for torn pre-copies, exactly like raw byte accounting)."""
        self.codec_logical_bytes += payload.logical_bytes
        self.codec_wire_bytes += payload.wire_bytes
        if payload.kind == "delta":
            self.codec_delta_bytes += payload.changed_bytes
        self.codec_blocks_new += payload.blocks_new
        self.codec_blocks_ref += payload.blocks_ref

    def publish_payload(self, chunk: Chunk, payload: Payload) -> None:
        """Stage the payload's block digests into the destination's
        store (refcounted at the coordinated commit).  Digests are
        re-derived at stage time: writes that raced a pre-copy transfer
        land in the staged version, and the index must describe what
        actually landed."""
        if payload.block_index is not None and len(payload.block_index):
            store = self.destination.block_store
            store.stage(
                chunk.name,
                payload.slot,
                payload.block_index,
                current_digests(chunk, payload.block_index, store.block),
            )

    @property
    def codec_saved_bytes(self) -> int:
        """Bytes the payload codec kept off the wire (on top of the
        incremental-extent savings already counted in bytes_saved)."""
        return max(0, self.codec_logical_bytes - self.codec_wire_bytes)

    def _checkpoint_proc(self, only: Optional[Iterable[Chunk]] = None):
        """The checkpoint generator body behind :meth:`checkpoint`."""
        engine = self.ctx.engine
        dest = self.destination
        stats = CheckpointStats(start=engine.now, policy=self.policy.mode)
        if self.precopy is not None:
            self.precopy.pause()
            yield from self.precopy.drain()
        if self.timeline is not None:
            self.timeline.begin(self.rank, tl.LOCAL_CKPT, engine.now)
        try:
            fire(
                "local.begin",
                allocator=self.allocator,
                store=self.ctx.nvmm.store,
                rank=self.rank,
            )
            all_persistent = list(
                only if only is not None else self.allocator.persistent_chunks()
            )
            to_copy = self._chunks_to_copy(only)
            stats.chunks_skipped = len(all_persistent) - len(to_copy)
            if BUS.active:
                self._trace_decisions(all_persistent, to_copy)
            for chunk in to_copy:
                if chunk.state_local is not ChunkState.IDLE:
                    raise CheckpointError(
                        f"chunk {chunk.name!r} busy ({chunk.state_local}) during coordinated step"
                    )
                fire("local.copy.before", chunk=chunk, rank=self.rank)
                chunk.state_local = ChunkState.CHECKPOINTING
                copy_start = engine.now
                # page-granular mode: ask the destination which stale
                # extents its next version slot needs, move only those
                extents = dest.pending_extents(chunk) if self.policy.incremental else None
                if extents is None:
                    nbytes_moved = chunk.nbytes
                    pages = pages_of(chunk.nbytes)
                else:
                    nbytes_moved = sum(n for _, n in extents)
                    pages = sum(pages_of(n) for _, n in extents)
                payload = self.plan_payload(chunk, extents)
                try:
                    if payload is not None:
                        yield dest.write_payload(chunk, payload, tag=f"{self.tag}:lckpt")
                    elif extents is None:
                        yield dest.write(chunk, tag=f"{self.tag}:lckpt")
                    else:
                        yield dest.write_at(chunk, extents, tag=f"{self.tag}:lckpt")
                finally:
                    chunk.state_local = ChunkState.IDLE
                fire("local.copy.after", chunk=chunk, rank=self.rank)
                if dest.two_version:
                    dest.stage(chunk, extents)
                    fire("local.stage.after", chunk=chunk, rank=self.rank)
                elif extents is not None:
                    # flat backends have no stage step; record the copy
                    # against the stale map here
                    chunk.mark_extents_copied("local", extents)
                wire_bytes = nbytes_moved
                if payload is not None:
                    wire_bytes = payload.wire_bytes
                    self.account_payload(payload)
                    self.publish_payload(chunk, payload)
                stats.bytes_copied += wire_bytes
                stats.bytes_saved += chunk.nbytes - nbytes_moved
                stats.chunks_copied += 1
                if BUS.active:
                    BUS.emit(
                        ChunkCopiedEvent(
                            t=engine.now,
                            actor=str(self.rank),
                            chunk=chunk.name,
                            nbytes=wire_bytes,
                            start=copy_start,
                            stream="local",
                            phase="coordinated",
                            destination=dest.name,
                            pages=pages,
                            bytes_saved=chunk.nbytes - nbytes_moved,
                            codec=payload.codec if payload is not None else "raw",
                            logical_bytes=nbytes_moved,
                            tenant=self.tenant,
                        )
                    )
                if self.tracks_dirty:
                    chunk.mark_precopied("local")
                else:
                    chunk.dirty_local = False
            # -- commit: flush data, flip versions, persist metadata,
            # flush.  The commit covers every chunk with staged data —
            # the ones this step copied AND the ones the pre-copy
            # engine staged during the interval ('All chunks are marked
            # as committed after the library ensures that data is
            # flushed to NVM', §V).
            fire("local.commit.before_data_flush", rank=self.rank)
            flush_cost = dest.flush()
            yield engine.timeout(flush_cost)
            fire("local.commit.after_data_flush", rank=self.rank)
            if dest.two_version:
                dest.commit(
                    all_persistent,
                    with_checksum=self.with_checksums,
                    on_commit=lambda chunk: fire(
                        "local.commit.after_flip", chunk=chunk, rank=self.rank
                    ),
                )
            if self.codec is not None and dest.block_store is not None:
                # the digest index commits with the data it describes:
                # after the version flip, before the metadata flush
                # (codec.store.commit.* crash points fire inside)
                dest.block_store.commit()
            dest.persist_metadata()
            fire("local.commit.before_meta_flush", rank=self.rank)
            flush_cost2 = dest.flush()
            yield engine.timeout(flush_cost2)
            stats.flush_cost = flush_cost + flush_cost2
            fire(
                "local.commit.done",
                allocator=self.allocator,
                store=self.ctx.nvmm.store,
                rank=self.rank,
            )
            if BUS.active:
                BUS.emit(
                    CommitEvent(
                        t=engine.now,
                        actor=str(self.rank),
                        chunks_committed=(
                            len(all_persistent) if dest.two_version else stats.chunks_copied
                        ),
                        bytes_committed=stats.bytes_copied,
                        flush_cost=stats.flush_cost,
                        destination=dest.name,
                        tenant=self.tenant,
                    )
                )
        finally:
            if self.timeline is not None:
                self.timeline.end(self.rank, tl.LOCAL_CKPT, engine.now)
        stats.end = engine.now
        self._finish_interval(stats)
        return stats

    # ------------------------------------------------------------------
    # Interval bookkeeping.
    # ------------------------------------------------------------------

    def _finish_interval(self, stats: CheckpointStats) -> None:
        # the pre-copy window closes when the *next coordinated step
        # begins*, so the threshold interval is compute-only time
        # (ckpt-end to next ckpt-start), not end-to-end
        interval = stats.start - self.last_checkpoint_end
        if self.threshold is not None:
            self.threshold.observe_interval(interval, self.allocator.checkpoint_bytes)
        if self.prediction is not None:
            self.prediction.end_interval()
        self.last_checkpoint_end = stats.end
        self.checkpoints_done += 1
        self.history.append(stats)
        if self.precopy is not None:
            self.precopy.begin_interval()
            self.precopy.resume()
        for fn in self.on_complete:
            fn(stats)

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def total_coordinated_bytes(self) -> int:
        return sum(s.bytes_copied for s in self.history)

    @property
    def total_precopy_bytes(self) -> int:
        return self.precopy.stats.bytes_copied if self.precopy is not None else 0

    @property
    def total_bytes_saved(self) -> int:
        """Coordinated-step bytes incremental extents did NOT move."""
        return sum(s.bytes_saved for s in self.history)

    @property
    def total_bytes_to_nvm(self) -> int:
        """All checkpoint traffic to NVM, incl. redundant pre-copies —
        the 'total data copied' series of Figs. 7/8."""
        return self.total_coordinated_bytes + self.total_precopy_bytes

    @property
    def total_checkpoint_time(self) -> float:
        """T_lcl: summed coordinated (blocking) checkpoint time."""
        return sum(s.duration for s in self.history)

    def fault_overhead(self) -> float:
        """Total protection-fault cost incurred by the application due
        to chunk protection (charged by the app model to compute)."""
        faults = sum(c.fault_count for c in self.allocator.chunks())
        return faults * self.policy.fault_cost
