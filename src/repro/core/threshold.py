"""DCPC: the delayed pre-copy threshold (§IV).

Starting pre-copy at the beginning of a compute interval is wasteful —
many chunks will be modified again before the checkpoint.  The paper
delays the start of pre-copy to

    ``T_c = D / NVMBW_core``       (time to move the checkpoint data)
    ``T_p = I - T_c``              (pre-copy threshold, from interval start)

where ``D`` is the per-process checkpoint size, ``I`` the checkpoint
interval and ``NVMBW_core`` the effective per-core NVM bandwidth.  Both
``D`` and ``I`` are *measured* during the first checkpoint interval
(the learning phase visible as the early spike in Fig. 10) and then
continuously adapted with exponential smoothing.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..metrics.trace import BUS, PolicyDecisionEvent

__all__ = ["ThresholdEstimator"]


class ThresholdEstimator:
    """Measures interval and checkpoint size, yields the pre-copy start
    offset ``T_p`` within each interval."""

    def __init__(
        self,
        bandwidth_per_core: float,
        smoothing: float = 0.5,
        margin: float = 1.25,
        *,
        clock: Callable[[], float] = lambda: 0.0,
        actor: str = "threshold",
    ) -> None:
        if bandwidth_per_core <= 0:
            raise ValueError("bandwidth_per_core must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if margin < 1.0:
            raise ValueError("margin must be >= 1 (safety factor on T_c)")
        self.bandwidth_per_core = bandwidth_per_core
        self.smoothing = smoothing
        self.margin = margin
        self._clock = clock
        self._actor = actor
        self._interval: Optional[float] = None
        self._data_size: Optional[float] = None
        self.observations = 0

    # -- learning --------------------------------------------------------------

    def observe_interval(self, interval: float, data_bytes: float) -> None:
        """Fold one completed checkpoint interval into the estimates
        (called by the coordinator after each coordinated checkpoint)."""
        if interval <= 0:
            return
        s = self.smoothing
        if self._interval is None:
            self._interval = interval
            self._data_size = float(data_bytes)
        else:
            self._interval = s * interval + (1 - s) * self._interval
            assert self._data_size is not None
            self._data_size = s * float(data_bytes) + (1 - s) * self._data_size
        self.observations += 1

    def update_bandwidth(self, bandwidth_per_core: float) -> None:
        """Fold a fresh bandwidth probe into the estimator and recompute
        the threshold.  A nonpositive probe is a broken measurement —
        silently keeping the stale value would freeze ``T_p`` forever,
        so it raises exactly like the constructor."""
        if bandwidth_per_core <= 0:
            raise ValueError("bandwidth_per_core must be positive")
        self.bandwidth_per_core = bandwidth_per_core
        if BUS.active:
            BUS.emit(
                PolicyDecisionEvent(
                    t=self._clock(),
                    actor=self._actor,
                    chunk="*",
                    decision="recompute_threshold",
                    policy="dcpc",
                )
            )

    def nudge_margin(
        self, delta: float, *, min_margin: float = 1.0, max_margin: float = 4.0
    ) -> float:
        """Shift the safety margin by *delta*, clamped to
        ``[min_margin, max_margin]`` — the online tuner's threshold
        knob.  A larger margin inflates ``T_c`` and so *advances* the
        pre-copy start; a smaller one defers it.  Returns the new
        margin and surfaces the recompute on the trace bus."""
        new = min(max_margin, max(min_margin, self.margin + delta))
        if new != self.margin:
            self.margin = new
            if BUS.active:
                BUS.emit(
                    PolicyDecisionEvent(
                        t=self._clock(),
                        actor=self._actor,
                        chunk="*",
                        decision="recompute_threshold",
                        policy="dcpc",
                    )
                )
        return self.margin

    # -- queries --------------------------------------------------------------------

    @property
    def learned(self) -> bool:
        """False until the first interval completes; pre-copy runs
        un-delayed during the learning phase."""
        return self.observations > 0

    @property
    def interval_estimate(self) -> Optional[float]:
        return self._interval

    @property
    def data_size_estimate(self) -> Optional[float]:
        return self._data_size

    def copy_time(self) -> float:
        """``T_c = D / NVMBW_core`` with the safety margin applied."""
        if self._data_size is None:
            return 0.0
        return self.margin * self._data_size / self.bandwidth_per_core

    def threshold(self) -> float:
        """``T_p``: seconds after interval start at which pre-copy may
        begin.  0 while learning (no delay), and never negative — if
        the copy takes longer than the interval, pre-copy must run the
        whole time."""
        if not self.learned or self._interval is None:
            return 0.0
        return max(0.0, self._interval - self.copy_time())
