"""Checkpoint destination backends: where checkpoint bytes land.

A :class:`Destination` answers the mechanism half of the pipeline the
policies (:mod:`repro.core.policy`) schedule: how a chunk's payload
moves (``write``), how staged data becomes the recoverable version
(``stage`` / ``commit``), what ordering barriers cost (``flush``), how
committed payloads come back at restart (``read``), and how much room
is left (``capacity``).  One :class:`~repro.core.engine.CheckpointEngine`
drives any destination through the same walk/flush/commit sequence:

* :class:`NVMArenaDestination` — the paper's two-version NVM shadow
  arena (the default);
* :class:`PfsDestination` — the parallel-file-system baseline (shared
  global I/O resource, no shadow versions);
* :class:`RamdiskDestination` — the tmpfs baseline of Table V (DRAM
  path cost model, no shadow versions);
* :class:`RemoteBuddyDestination` — the buddy node's remote arena, as
  used by the remote helper; local+remote multilevel checkpointing is
  the *composition* of two destinations, not a special-cased helper.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..alloc.chunk import Chunk, batch_commit
from ..alloc.nvmalloc import NVAllocator
from ..errors import CheckpointError
from .codec import DEFAULT_BLOCK, BlockStore, Payload
from .context import NodeContext

__all__ = [
    "Destination",
    "NVMArenaDestination",
    "PfsDestination",
    "RamdiskDestination",
    "RemoteBuddyDestination",
    "TransferFnDestination",
    "validate_extents",
]


def validate_extents(chunk: Chunk, extents: List[Tuple[int, int]]) -> None:
    """Shared range-write contract: every backend rejects out-of-range,
    overlapping or unsorted extents with the *same* error, so callers
    can switch destinations without re-learning edge behaviour."""
    prev_end = 0
    for off, n in extents:
        if n < 0 or off < 0 or off + n > chunk.nbytes:
            raise CheckpointError(
                f"extent [{off}, {off + n}) outside chunk "
                f"{chunk.name!r} ({chunk.nbytes} bytes)"
            )
        if off < prev_end:
            raise CheckpointError(
                f"overlapping or unsorted extent at offset {off} "
                f"in chunk {chunk.name!r}"
            )
        prev_end = off + n


class Destination:
    """Backend protocol for one checkpoint target.

    ``write`` returns a DES completion event (the data plane);
    ``stage``/``commit``/``persist_metadata`` are control-plane state
    flips (instantaneous — their cost is the ``flush`` barriers the
    engine charges around them).
    """

    #: short backend name, used in trace events and stats
    name: str = ""
    #: whether this backend keeps two shadow versions needing an
    #: explicit stage+commit flip (False for flat baselines)
    two_version: bool = True
    #: content-addressed digest index, attached when a payload codec is
    #: configured (``None`` on the raw path — zero overhead)
    block_store: Optional[BlockStore] = None

    def write(self, chunk: Chunk, *, tag: str = ""):
        """Move the chunk's payload to this destination; returns the
        completion event to ``yield`` on."""
        raise NotImplementedError

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        """Range write: move only the ``(offset, nbytes)`` byte runs in
        *extents* (the chunk's stale pages).  Backends without a range
        path fall back to a full :meth:`write`."""
        return self.write(chunk, tag=tag)

    def write_payload(self, chunk: Chunk, payload: Payload, *, tag: str = ""):
        """Move an encoded payload: charge its *wire* bytes on this
        backend's transport (the content still stages in full through
        :meth:`stage` — the codec changes the unit of transfer, not the
        recoverable representation)."""
        return self.write_at(chunk, [(0, min(payload.wire_bytes, chunk.nbytes))], tag=tag)

    def ensure_block_store(self, block: int = DEFAULT_BLOCK) -> BlockStore:
        """Attach (idempotently) the content-addressed block store a
        payload codec plans against."""
        if self.block_store is None or self.block_store.block != block:
            self.block_store = BlockStore(block=block)
        return self.block_store

    def codec_slots(self, chunk: Chunk) -> Tuple[int, int]:
        """``(write_slot, delta_base_slot)`` for this backend's digest
        maps.  Flat single-version backends overwrite slot 0 and delta
        against the previous checkpoint's content in that same slot."""
        return (0, 0)

    def pending_extents(self, chunk: Chunk) -> List[Tuple[int, int]]:
        """The coalesced stale extents an incremental copy of *chunk*
        to this destination must move (for the version slot this
        backend writes next)."""
        return chunk.copy_extents("local")

    def stage(self, chunk: Chunk, extents: Optional[List[Tuple[int, int]]] = None) -> None:
        """Record the just-written payload as this chunk's in-progress
        version (no-op for single-version backends).  With *extents*,
        only those byte runs are staged (page-granular mode)."""

    def flush(self) -> float:
        """Issue a persistence barrier; returns its simulated cost."""
        return 0.0

    def commit(
        self,
        chunks: Iterable[Chunk],
        *,
        with_checksum: bool = True,
        on_commit: Optional[Callable[[Chunk], None]] = None,
    ) -> float:
        """Flip every staged chunk's committed pointer (no-op for
        single-version backends).  Returns the simulated cost of any
        barriers the backend *bundles into* its commit (0.0 for
        backends whose barriers the engine charges via :meth:`flush`)."""
        return 0.0

    def persist_metadata(self) -> None:
        """Write the recovery metadata (chunk table, committed map)."""

    def read(self, chunk_name: str) -> np.ndarray:
        """The committed payload of *chunk_name* (restart path)."""
        raise NotImplementedError

    def capacity(self) -> float:
        """Bytes still available at this destination (``inf`` when the
        backend does not model capacity)."""
        return float("inf")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class NVMArenaDestination(Destination):
    """The local NVM shadow arena: DRAM→NVM through the node's shared
    NVM bus, two-version commit, allocator metadata persistence."""

    name = "nvm"
    two_version = True

    def __init__(self, ctx: NodeContext, allocator: NVAllocator) -> None:
        self.ctx = ctx
        self.allocator = allocator

    def write(self, chunk: Chunk, *, tag: str = ""):
        return self.ctx.copy_to_nvm(chunk.nbytes, tag=tag)

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        validate_extents(chunk, extents)
        return self.ctx.copy_to_nvm(sum(n for _, n in extents), tag=tag)

    def write_payload(self, chunk: Chunk, payload: Payload, *, tag: str = ""):
        return self.ctx.copy_to_nvm(payload.wire_bytes, tag=tag)

    def codec_slots(self, chunk: Chunk) -> Tuple[int, int]:
        return (chunk.inprogress_index(), chunk.committed_version)

    def stage(self, chunk: Chunk, extents: Optional[List[Tuple[int, int]]] = None) -> None:
        chunk.stage_to_nvm(extents)

    def flush(self) -> float:
        return self.ctx.nvmm.cache_flush()

    def commit(
        self,
        chunks: Iterable[Chunk],
        *,
        with_checksum: bool = True,
        on_commit: Optional[Callable[[Chunk], None]] = None,
    ) -> float:
        batch_commit(list(chunks), with_checksum=with_checksum, on_commit=on_commit)
        return 0.0

    def persist_metadata(self) -> None:
        self.allocator._persist_metadata()

    def read(self, chunk_name: str) -> np.ndarray:
        chunk = self.allocator.chunk(chunk_name)
        region = chunk.committed_region()
        return region.read(0, chunk.nbytes)

    def capacity(self) -> float:
        return float(self.ctx.nvm.free)


class PfsDestination(Destination):
    """The PFS baseline: every rank's coordinated step funnels through
    one globally shared I/O resource; no shadow versions on the node
    (the engine still runs its flush barriers — metadata and caches are
    persisted locally even when the data goes to the PFS)."""

    name = "pfs"
    two_version = False

    def __init__(self, pfs, rank: str, ctx: NodeContext, allocator: NVAllocator) -> None:
        self.pfs = pfs
        self.rank = rank
        self.ctx = ctx
        self.allocator = allocator

    def write(self, chunk: Chunk, *, tag: str = ""):
        # the PFS resource's accounting keys off the rank tag, not the
        # engine's step tag
        return self.pfs.write(chunk.nbytes, tag=f"{self.rank}:pfsckpt")

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        validate_extents(chunk, extents)
        return self.pfs.write(
            sum(n for _, n in extents), tag=f"{self.rank}:pfsckpt"
        )

    def write_payload(self, chunk: Chunk, payload: Payload, *, tag: str = ""):
        return self.pfs.write(payload.wire_bytes, tag=f"{self.rank}:pfsckpt")

    def flush(self) -> float:
        return self.ctx.nvmm.cache_flush()

    def persist_metadata(self) -> None:
        self.allocator._persist_metadata()

    def read(self, chunk_name: str) -> np.ndarray:
        raise CheckpointError(
            f"PFS baseline does not model restart reads (chunk {chunk_name!r})"
        )


class RamdiskDestination(Destination):
    """The tmpfs baseline: checkpoint writes priced by the DRAM path
    cost model (:class:`repro.baselines.ramdisk.RamdiskPathModel`); no
    persistence barriers, no shadow versions, DRAM-bounded capacity."""

    name = "ramdisk"
    two_version = False

    def __init__(self, ctx: NodeContext, model, *, writers: int = 1) -> None:
        self.ctx = ctx
        self.model = model
        self.writers = writers
        self._written: dict = {}

    def write(self, chunk: Chunk, *, tag: str = ""):
        cost = self.model.checkpoint_time(chunk.nbytes, writers=self.writers)
        self._written[chunk.name] = chunk.nbytes
        return self.ctx.engine.timeout(cost)

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        validate_extents(chunk, extents)
        cost = self.model.checkpoint_time(
            sum(n for _, n in extents), writers=self.writers
        )
        # the file keeps its full logical size; only the write shrinks
        self._written[chunk.name] = chunk.nbytes
        return self.ctx.engine.timeout(cost)

    def write_payload(self, chunk: Chunk, payload: Payload, *, tag: str = ""):
        cost = self.model.checkpoint_time(payload.wire_bytes, writers=self.writers)
        self._written[chunk.name] = chunk.nbytes
        return self.ctx.engine.timeout(cost)

    def read(self, chunk_name: str) -> np.ndarray:
        if chunk_name not in self._written:
            raise CheckpointError(f"no ramdisk copy of chunk {chunk_name!r}")
        return np.zeros(self._written[chunk_name], dtype=np.uint8)

    def capacity(self) -> float:
        return float(self.ctx.dram.free)


class RemoteBuddyDestination(Destination):
    """The buddy node's remote arena, wrapping one
    :class:`~repro.core.remote.RemoteTarget`.  ``write`` is the fabric
    send (injected by the remote helper, which owns pacing/compression/
    resilient retries); ``stage``/``commit``/``read`` are the target's
    own two-version protocol on the buddy's NVM."""

    name = "buddy"
    two_version = True

    def __init__(self, target, send_fn: Callable[..., object]) -> None:
        #: ``send_fn(chunk, extents=None)`` — the fabric transfer; with
        #: *extents* only those byte runs go over the wire.
        self.target = target
        self._send_fn = send_fn

    def retarget(self, target) -> None:
        """Point at a new buddy's :class:`RemoteTarget` after failover."""
        self.target = target

    @property
    def block_store(self) -> Optional[BlockStore]:  # type: ignore[override]
        # the digest index lives with the buddy's arena, so a failover
        # to a fresh target starts from an empty (honest) index
        return getattr(self.target, "block_store", None)

    def ensure_block_store(self, block: int = DEFAULT_BLOCK) -> BlockStore:
        return self.target.ensure_block_store(block)

    def codec_slots(self, chunk: Chunk) -> Tuple[int, int]:
        self.target.ensure_chunk(chunk)
        return self.target.codec_slots(chunk.name)

    def write(self, chunk: Chunk, *, tag: str = ""):
        return self._send_fn(chunk)

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        validate_extents(chunk, extents)
        return self._send_fn(chunk, extents)

    def write_payload(self, chunk: Chunk, payload: Payload, *, tag: str = ""):
        return self._send_fn(chunk, payload.extents, wire=payload.wire_bytes)

    def pending_extents(self, chunk: Chunk) -> List[Tuple[int, int]]:
        # ensure_chunk creates the buddy regions *and* the chunk's
        # remote stale map before the slot is consulted
        self.target.ensure_chunk(chunk)
        return chunk.copy_extents(
            "remote", slot=self.target._inprogress(chunk.name)
        )

    def stage(self, chunk: Chunk, extents: Optional[List[Tuple[int, int]]] = None) -> None:
        self.target.stage(chunk, extents)

    def flush(self) -> float:
        return self.target.dst_ctx.nvmm.cache_flush()

    def commit(
        self,
        chunks: Iterable[Chunk],
        *,
        with_checksum: bool = True,
        on_commit: Optional[Callable[[Chunk], None]] = None,
    ) -> float:
        # RemoteTarget.commit covers everything staged since the last
        # commit, bundling its own flush barriers + metadata put; the
        # returned cost is the caller's to charge.
        return self.target.commit()

    def persist_metadata(self) -> None:
        """Metadata is persisted inside :meth:`RemoteTarget.commit`."""

    def read(self, chunk_name: str) -> np.ndarray:
        return self.target.fetch(chunk_name)

    def capacity(self) -> float:
        return float(self.target.dst_ctx.nvm.free)


class TransferFnDestination(Destination):
    """Adapter for the legacy ``transfer_fn``/``stage_to_nvm``
    checkpointer parameters: an arbitrary per-chunk transfer callable,
    optionally composed with the local NVM arena's control plane."""

    name = "custom"

    def __init__(
        self,
        transfer_fn: Callable[[Chunk], object],
        ctx: NodeContext,
        allocator: NVAllocator,
        *,
        stage_to_nvm: bool = True,
    ) -> None:
        self.transfer_fn = transfer_fn
        self.ctx = ctx
        self.allocator = allocator
        self.two_version = stage_to_nvm

    def write(self, chunk: Chunk, *, tag: str = ""):
        return self.transfer_fn(chunk)

    def write_at(
        self, chunk: Chunk, extents: List[Tuple[int, int]], *, tag: str = ""
    ):
        # legacy transfer callables take whole chunks; charge the full
        # transfer rather than guess at their cost model
        return self.transfer_fn(chunk)

    def stage(self, chunk: Chunk, extents: Optional[List[Tuple[int, int]]] = None) -> None:
        if self.two_version:
            chunk.stage_to_nvm(extents)

    def flush(self) -> float:
        return self.ctx.nvmm.cache_flush()

    def commit(
        self,
        chunks: Iterable[Chunk],
        *,
        with_checksum: bool = True,
        on_commit: Optional[Callable[[Chunk], None]] = None,
    ) -> float:
        if self.two_version:
            batch_commit(list(chunks), with_checksum=with_checksum, on_commit=on_commit)
        return 0.0

    def persist_metadata(self) -> None:
        self.allocator._persist_metadata()

    def read(self, chunk_name: str) -> np.ndarray:
        chunk = self.allocator.chunk(chunk_name)
        return chunk.committed_region().read(0, chunk.nbytes)

    def capacity(self) -> float:
        return float(self.ctx.nvm.free)
