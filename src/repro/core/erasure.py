"""XOR-parity remote redundancy — the erasure-coding extension.

The paper's related work points at erasure coding (Plank et al.) as
the classic answer to replication's memory cost: instead of mirroring
every rank's checkpoint on a buddy (1x extra space and interconnect
volume), a *parity group* of K ranks stores one XOR parity block per
chunk set on a remote node (1/K extra space).  Recovery of a failed
member reads the K-1 survivors' committed data plus the parity.

This module implements chunk-aligned XOR parity groups on top of the
same NVM/RDMA substrate:

* :class:`XorParityGroup` — builds and maintains parity blocks over
  the member ranks' committed chunk versions, stores them in the
  parity node's NVM (two versions, crash-safe like everything else);
* :meth:`reconstruct` — rebuilds one member's chunk from the survivors
  and the parity (works on real payloads; phantom mode accounts sizes).

Trade-off quantified in ``benchmarks/bench_erasure_remote.py``: K x
less remote space and interconnect volume, at the cost of touching
K-1 survivors at recovery time (and a window in which a second failure
in the group is unrecoverable — the classic RAID-5 argument).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..alloc.chunk import Chunk
from ..alloc.nvmalloc import NVAllocator
from ..errors import CheckpointError
from .context import NodeContext

__all__ = ["XorParityGroup"]


class XorParityGroup:
    """One parity group: K member ranks + a parity store on a remote
    node's NVM."""

    def __init__(
        self,
        members: List[NVAllocator],
        parity_ctx: NodeContext,
        group_id: str = "pg0",
    ) -> None:
        if len(members) < 2:
            raise CheckpointError("a parity group needs at least 2 members")
        self.members = members
        self.parity_ctx = parity_ctx
        self.group_id = group_id
        self.pid = f"parity:{group_id}"
        self.n_versions = 2
        #: chunk name -> committed parity version (-1 = none)
        self.committed: Dict[str, int] = {}
        self._staged: Dict[str, int] = {}
        self.parity_bytes_written = 0

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    def _region_name(self, chunk_name: str, version: int) -> str:
        return f"{chunk_name}#p{version}"

    def _common_chunks(self) -> List[str]:
        """Chunk names present in every member (parity is computed per
        aligned chunk set; unaligned chunks fall back to replication)."""
        sets = [
            {c.name for c in m.persistent_chunks() if c.committed_version >= 0}
            for m in self.members
        ]
        return sorted(set.intersection(*sets)) if sets else []

    def _member_chunk(self, member: NVAllocator, name: str) -> Chunk:
        return member.chunk(name)

    def _chunk_size(self, name: str) -> int:
        return max(self._member_chunk(m, name).nbytes for m in self.members)

    def _inprogress(self, name: str) -> int:
        cur = self.committed.get(name, -1)
        return 1 - cur if cur >= 0 else 0

    def _parity_payload(self, name: str, exclude: Optional[NVAllocator] = None) -> np.ndarray:
        """XOR of the members' *committed* payloads for chunk *name*
        (optionally excluding one member — used by reconstruction)."""
        size = self._chunk_size(name)
        acc = np.zeros(size, dtype=np.uint8)
        for member in self.members:
            if member is exclude:
                continue
            chunk = self._member_chunk(member, name)
            if chunk.phantom:
                continue  # phantom mode: sizes only
            data = chunk.committed_region().read(0, chunk.nbytes)
            acc[: len(data)] ^= data
        return acc

    # ------------------------------------------------------------------
    # Parity build / commit.
    # ------------------------------------------------------------------

    @property
    def parity_bytes_per_round(self) -> int:
        """Remote volume of one parity round: one chunk-set, not K."""
        return sum(self._chunk_size(n) for n in self._common_chunks())

    def update_parity(self) -> int:
        """Recompute and stage parity blocks for every aligned chunk;
        returns bytes written to the parity node's NVM.  (Transfer
        *timing* is the caller's concern — benches charge the fabric
        with ``parity_bytes_per_round``.)"""
        nvmm = self.parity_ctx.nvmm
        written = 0
        for name in self._common_chunks():
            size = self._chunk_size(name)
            v = self._inprogress(name)
            rname = self._region_name(name, v)
            phantom = any(self._member_chunk(m, name).phantom for m in self.members)
            try:
                region = nvmm.region(self.pid, rname)
                if region.nbytes != size:
                    nvmm.nvmrealloc(self.pid, rname, size)
            except Exception:
                region = nvmm.nvmmap(self.pid, rname, size, phantom=phantom)
            if phantom:
                written += region.write_phantom(0, size)
            else:
                written += region.write(0, self._parity_payload(name))
            self._staged[name] = v
        self.parity_bytes_written += written
        return written

    def commit(self) -> float:
        """Flush the parity store and flip the committed pointers."""
        cost = self.parity_ctx.nvmm.cache_flush()
        for name, v in self._staged.items():
            self.committed[name] = v
        self._staged.clear()
        self.parity_ctx.nvmm.store.put_meta(
            f"parity/{self.group_id}", {"committed": dict(self.committed)}
        )
        cost += self.parity_ctx.nvmm.cache_flush()
        return cost

    # ------------------------------------------------------------------
    # Reconstruction.
    # ------------------------------------------------------------------

    def reconstruct(self, lost_member: NVAllocator, chunk_name: str) -> np.ndarray:
        """Rebuild *lost_member*'s committed payload of *chunk_name*
        from the K-1 survivors plus the committed parity block."""
        if lost_member not in self.members:
            raise CheckpointError(f"{lost_member.pid!r} is not in parity group {self.group_id!r}")
        v = self.committed.get(chunk_name, -1)
        if v < 0:
            raise CheckpointError(
                f"no committed parity for chunk {chunk_name!r} in group {self.group_id!r}"
            )
        region = self.parity_ctx.nvmm.region(self.pid, self._region_name(chunk_name, v))
        parity = region.read(0, region.nbytes)
        survivors = self._parity_payload(chunk_name, exclude=lost_member)
        out = parity.copy()
        out[: len(survivors)] ^= survivors
        size = self._member_chunk(lost_member, chunk_name).nbytes
        return out[:size]

    @property
    def recovery_read_bytes(self) -> int:
        """Bytes that must be read to reconstruct one member: the
        survivors' data plus the parity (the replication scheme reads
        only the member's own size — erasure's recovery tax)."""
        total = 0
        for name in self._common_chunks():
            total += self._chunk_size(name) * len(self.members)  # K-1 survivors + parity
        return total

    @property
    def space_per_member_ratio(self) -> float:
        """Remote space relative to full replication: 1/K."""
        return 1.0 / len(self.members)
