"""The synchronous Table-III facade: :class:`NVMCheckpoint`.

This is the entry point a downstream application uses directly (see
``examples/quickstart.py``): allocate persistent variables, compute on
them, call ``nvchkptall()``, crash, restart.  Everything runs on a
private single-node context whose virtual clock prices each operation
with the paper's device model — ``elapsed`` tells you what the
operation *would* cost on the modeled hardware.

Methods mirror Table III:

========================  ====================================================
``genid(varname)``        stable id from a variable name
``nvalloc(name, size)``   allocate an NVM-shadowed chunk (``pflg`` supported)
``nv2dalloc(d1, d2)``     2-D convenience wrapper
``nvattach(key, arr)``    shadow an existing DRAM array (re-attach by key)
``nvrealloc(key, size)``  grow/shrink
``nvdelete(key)``         drop chunk + metadata
``nvchkptall()``          coordinated local checkpoint of all chunks
``nvchkptid(key)``        checkpoint one chunk
========================  ====================================================

Every ``key`` is a :data:`ChunkKey` — either the integer chunk id
(``genid``) or the variable name — resolved through one shared
``_resolve_key`` helper, so all Table-III methods share a uniform
:class:`KeyError` on unknown keys.  The unified ``checkpoint()`` verb
(``checkpoint(key=None, *, blocking=True)``) backs both checkpoint
entries.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..alloc.chunk import Chunk
from ..alloc.nvmalloc import NVAllocator, genid
from ..config import CheckpointConfig, NodeConfig, PrecopyPolicy
from ..errors import UnknownChunkId
from ..memory.persistence import PersistentStore
from ..metrics.timeline import Timeline
from .context import NodeContext, make_standalone_context
from .engine import CheckpointStats
from .local import LocalCheckpointer
from .restart import RestartManager, RestartReport

__all__ = ["NVMCheckpoint"]

ChunkKey = Union[int, str]


class NVMCheckpoint:
    """Application-facing NVM checkpoint handle for one process."""

    def __init__(
        self,
        pid: str = "proc0",
        *,
        store: Optional[PersistentStore] = None,
        node_config: Optional[NodeConfig] = None,
        checkpoint_config: Optional[CheckpointConfig] = None,
        phantom: bool = False,
        ctx: Optional[NodeContext] = None,
    ) -> None:
        self.pid = pid
        self.config = checkpoint_config or CheckpointConfig()
        self.ctx = ctx or make_standalone_context(config=node_config, store=store, name=f"{pid}-node")
        self.timeline = Timeline()
        self.allocator = NVAllocator(
            pid,
            self.ctx.nvmm,
            self.ctx.dram,
            two_versions=self.config.two_versions,
            phantom=phantom,
            clock=lambda: self.ctx.engine.now,
        )
        self.checkpointer = LocalCheckpointer(
            self.ctx,
            self.allocator,
            self.config.precopy,
            timeline=self.timeline,
            with_checksums=self.config.checksums,
        )

    # ------------------------------------------------------------------
    # Key resolution: every Table-III method that names an existing
    # chunk funnels through here, so ``int | str`` keys behave the same
    # everywhere and unknown keys fail with one uniform KeyError.
    # ------------------------------------------------------------------

    def _resolve_key(self, key: ChunkKey) -> Chunk:
        """Resolve an ``int`` chunk id or ``str`` variable name to its
        :class:`Chunk`, raising a uniform :class:`KeyError`
        (:class:`~repro.errors.UnknownChunkId`) when absent."""
        if not isinstance(key, (int, str)) or isinstance(key, bool):
            raise TypeError(
                f"chunk key must be an int id or str name, got {type(key).__name__}"
            )
        try:
            return self.allocator.chunk(key)
        except UnknownChunkId:
            raise UnknownChunkId(
                f"no chunk with key {key!r} in process {self.pid!r} "
                "(pass the genid() integer or the variable name)"
            ) from None

    # ------------------------------------------------------------------
    # Table III: allocation.
    # ------------------------------------------------------------------

    @staticmethod
    def genid(varname: str) -> int:
        return genid(varname)

    def nvalloc(self, name: str, nbytes: int, pflag: bool = True) -> Chunk:
        return self.allocator.nvalloc(name, nbytes, pflag=pflag)

    def nv2dalloc(self, name: str, dim1: int, dim2: int, dtype=np.float64) -> Chunk:
        return self.allocator.nv2dalloc(name, dim1, dim2, dtype=dtype)

    def nvattach(self, key: ChunkKey, src: np.ndarray) -> Chunk:
        """Shadow an existing DRAM array under *key*.

        A ``str`` key that is not yet allocated creates the chunk (the
        §V path for dynamically-sized checkpoints).  A key naming an
        existing chunk *re-attaches*: the chunk is resized to fit and
        its working copy overwritten from *src* — the restart-time
        idiom for rebinding live arrays.  An ``int`` key must already
        exist (ids cannot allocate; they are one-way hashes of names).
        """
        if self.allocator.has_chunk(key):
            chunk = self._resolve_key(key)
            flat = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
            if chunk.nbytes != flat.nbytes:
                chunk = self.allocator.nvrealloc(chunk.chunk_id, flat.nbytes)
            if chunk.phantom:
                chunk.touch()
            else:
                chunk.write(0, flat)
            return chunk
        if isinstance(key, int):
            # creating by id alone is impossible — surface the same
            # uniform KeyError as every other unknown-key lookup
            self._resolve_key(key)
        return self.allocator.nvattach(key, src)

    def nvrealloc(self, key: ChunkKey, nbytes: int) -> Chunk:
        return self.allocator.nvrealloc(self._resolve_key(key).chunk_id, nbytes)

    def nvdelete(self, key: ChunkKey) -> None:
        self.allocator.nvdelete(self._resolve_key(key).chunk_id)

    def chunk(self, key: ChunkKey) -> Chunk:
        return self._resolve_key(key)

    # ------------------------------------------------------------------
    # Table III: checkpoint.
    # ------------------------------------------------------------------

    def checkpoint(self, key: Optional[ChunkKey] = None, *, blocking: bool = True):
        """The unified checkpoint verb.

        ``checkpoint()`` is a coordinated local checkpoint of every
        persistent chunk (``nvchkptall``); ``checkpoint(key)`` limits
        it to one chunk (``nvchkptid``).  ``blocking=True`` (default)
        returns the completed :class:`CheckpointStats`;
        ``blocking=False`` returns the DES generator for advanced
        embedding in an external simulation loop.
        """
        only = None if key is None else [self._resolve_key(key)]
        return self.checkpointer.checkpoint(only, blocking=blocking)

    def nvchkptall(self) -> CheckpointStats:
        """Coordinated local checkpoint of every persistent chunk."""
        return self.checkpoint()

    # ------------------------------------------------------------------
    # Background pre-copy (the paper's CPC/DCPC/DCPCP) for direct
    # library use: compute phases advance the virtual clock so the
    # pre-copy engine can overlap with them.
    # ------------------------------------------------------------------

    def start_background(self) -> None:
        """Start the pre-copy engine (no-op for ``mode='none'``)."""
        self.checkpointer.start_background()

    def stop_background(self) -> None:
        self.checkpointer.stop_background()

    def advance(self, seconds: float) -> float:
        """Advance the virtual clock by *seconds* of compute time,
        letting background machinery (pre-copy) run during it.  Call
        between your writes to model the compute phase; returns the
        new virtual time."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self.ctx.engine.run(until=self.ctx.engine.now + seconds)
        return self.ctx.engine.now

    def nvchkptid(self, key: ChunkKey) -> CheckpointStats:
        """Checkpoint a single chunk/variable."""
        return self.checkpoint(key)

    # ------------------------------------------------------------------
    # Crash / restart.
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate process death: volatile state (DRAM working copies,
        mapped-region objects, unflushed store writes) is lost; NVM
        committed state survives in the store."""
        self.ctx.nvmm.store.crash()
        self.ctx.nvmm.crash_process(self.pid)
        self.allocator = None  # type: ignore[assignment]
        self.checkpointer = None  # type: ignore[assignment]

    @classmethod
    def restart(
        cls,
        pid: str,
        store: PersistentStore,
        *,
        node_config: Optional[NodeConfig] = None,
        checkpoint_config: Optional[CheckpointConfig] = None,
        ctx: Optional[NodeContext] = None,
        lazy: bool = False,
    ) -> tuple["NVMCheckpoint", RestartReport]:
        """Rebuild a process from a store that survived a crash.

        Returns the new handle plus the :class:`RestartReport`
        (chunk counts, bytes, virtual restart time).  ``lazy=True``
        leaves verified chunks NVM-resident (§IV read path): restart
        is near-instant and each chunk migrates to DRAM on first write.
        """
        handle = cls.__new__(cls)
        handle.pid = pid
        handle.config = checkpoint_config or CheckpointConfig()
        handle.ctx = ctx or make_standalone_context(
            config=node_config, store=store, name=f"{pid}-node"
        )
        handle.timeline = Timeline()
        manager = RestartManager(handle.ctx, timeline=handle.timeline)
        report = manager.restart_process_sync(
            pid, two_versions=handle.config.two_versions, lazy=lazy
        )
        assert report.allocator is not None
        handle.allocator = report.allocator
        handle.checkpointer = LocalCheckpointer(
            handle.ctx,
            handle.allocator,
            handle.config.precopy,
            timeline=handle.timeline,
            with_checksums=handle.config.checksums,
        )
        return handle, report

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Virtual clock of the private context (seconds)."""
        return self.ctx.engine.now

    @property
    def checkpoint_bytes(self) -> int:
        return self.allocator.checkpoint_bytes

    def stats_summary(self) -> dict:
        ck = self.checkpointer
        return {
            "checkpoints": ck.checkpoints_done,
            "coordinated_bytes": ck.total_coordinated_bytes,
            "precopy_bytes": ck.total_precopy_bytes,
            "total_bytes_to_nvm": ck.total_bytes_to_nvm,
            "total_checkpoint_time": ck.total_checkpoint_time,
            "nvm_bytes_written": self.ctx.nvm.wear.bytes_written,
            "nvm_endurance_used": self.ctx.nvm.endurance_fraction_used(),
        }
