"""The node-local execution context the checkpoint runtime runs
against.

One :class:`NodeContext` models one compute node: its DES engine, its
DRAM and NVM devices, the processor-sharing NVM bus all cores contend
on, the CPU cores (helper-core accounting), and the NVM kernel
manager.  Cluster simulations build one per node; the synchronous
facade (:class:`repro.core.api.NVMCheckpoint`) builds a standalone one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import NodeConfig
from ..memory.bandwidth import CoreContentionModel, make_device_bus
from ..memory.device import MemoryDevice
from ..memory.nvmm import NVMKernelManager
from ..memory.persistence import PersistentStore
from ..sim.engine import Engine
from ..sim.resources import BandwidthResource, CpuCores

__all__ = ["NodeContext", "make_standalone_context"]


@dataclass
class NodeContext:
    """Everything node-local that checkpoint components need."""

    name: str
    engine: Engine
    config: NodeConfig
    dram: MemoryDevice
    nvm: MemoryDevice
    nvmm: NVMKernelManager
    #: processor-sharing bus in front of the NVM device; every
    #: DRAM->NVM copy flows through it.
    nvm_bus: BandwidthResource
    cpu: CpuCores
    contention: CoreContentionModel

    @property
    def now(self) -> float:
        return self.engine.now

    def copy_to_nvm(self, nbytes: int, tag: str):
        """Start a DRAM->NVM copy through the shared bus; returns the
        completion event.  Wear accounting happens when the caller
        stages the chunk."""
        return self.nvm_bus.transfer(nbytes, tag=tag)

    def effective_nvm_bw_per_core(self, active_writers: Optional[int] = None) -> float:
        """The paper's NVMBW_core for this node (used by the DCPC
        threshold): effective per-core NVM write bandwidth assuming
        *active_writers* concurrent writers (default: all cores)."""
        n = active_writers if active_writers is not None else self.config.cores
        return self.contention.per_core_rate(max(1, n))


def make_standalone_context(
    config: Optional[NodeConfig] = None,
    store: Optional[PersistentStore] = None,
    engine: Optional[Engine] = None,
    name: str = "node0",
    nvm_write_bandwidth: Optional[float] = None,
) -> NodeContext:
    """A self-contained single-node context (own engine unless given).

    ``nvm_write_bandwidth`` overrides the NVM device's peak write
    bandwidth — the knob swept on the x-axis of Figs. 7-9.
    """
    cfg = config or NodeConfig()
    if nvm_write_bandwidth is not None:
        cfg = NodeConfig(
            cores=cfg.cores,
            core_ghz=cfg.core_ghz,
            dram=cfg.dram,
            nvm=cfg.nvm.scaled(nvm_write_bandwidth),
            bandwidth_model=cfg.bandwidth_model,
        )
    eng = engine or Engine()
    dram = MemoryDevice(cfg.dram)
    nvm = MemoryDevice(cfg.nvm)
    nvmm = NVMKernelManager(device=nvm, store=store)
    bus = make_device_bus(eng, cfg.nvm, cfg.bandwidth_model, name=f"{name}.nvm-bus")
    cpu = CpuCores(eng, cfg.cores, name=f"{name}.cpu")
    contention = CoreContentionModel(cfg.nvm, cfg.bandwidth_model)
    return NodeContext(
        name=name,
        engine=eng,
        config=cfg,
        dram=dram,
        nvm=nvm,
        nvmm=nvmm,
        nvm_bus=bus,
        cpu=cpu,
        contention=contention,
    )
