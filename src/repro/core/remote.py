"""Remote (buddy-node) checkpointing: the per-node asynchronous helper
process with chunk-granular remote pre-copy (§IV/§V).

Design, following the paper:

* one **helper process per physical node** owns all remote-checkpoint
  work for the node's ranks, reading their chunk state through the
  shared-NVM interface and the per-NVM-page ``nvdirty`` bits the kernel
  patch adds (so it never takes protection faults);
* with **remote pre-copy**, the helper continuously *streams* chunks
  whose local checkpoint version changed since they were last sent —
  a coalescing work queue fed by local-checkpoint commits, drained at a
  **paced** rate of roughly one full checkpoint per remote interval.
  Reading committed NVM versions means streamed data is always
  consistent (no torn copies), re-commits of a still-queued chunk
  coalesce into one send, and pacing spreads the transfers across the
  whole timeline — the flat pre-copy profile and ~46% lower peak
  interconnect usage of Fig. 10;
* the coordinated **remote round** (every ``remote_interval``) drains
  whatever is still queued and commits the buddy-side versions — only
  the leftovers move at round time;
* the **asynchronous no-pre-copy baseline** skips the stream and pushes
  every rank's whole checkpoint at each round: still overlapped with
  compute, but the burst contends with application communication (the
  communication noise Fig. 9 quantifies);
* the buddy keeps **two versions** per chunk with its own committed
  pointers, so a crash mid-round never corrupts the recovery copy;
* helper CPU is charged per byte (plus dirty-tracking overhead on the
  streamed path), reproducing Table V's utilization numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..alloc.chunk import Chunk
from ..alloc.nvmalloc import NVAllocator
from ..config import CheckpointConfig
from ..errors import CheckpointError, ConfigError, TransferCancelled, TransferFailed
from ..faults.crashpoints import fire
from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..metrics.trace import (
    BUS,
    ChunkCopiedEvent,
    CodecDecisionEvent,
    FailoverEvent,
    PolicyDecisionEvent,
)
from ..net.interconnect import Fabric
from ..net.rdma import rdma_put
from ..sim.events import Event
from ..units import pages_of, usec
from .codec import (
    DEFAULT_BLOCK,
    BlockStore,
    EntropyProbe,
    Payload,
    blocks_of_extents,
    current_digests,
    resolve_codec,
)
from .context import NodeContext
from .destination import RemoteBuddyDestination

__all__ = ["RemoteTarget", "RemoteHelper", "RemoteCheckpointStats"]

#: helper CPU seconds per byte moved (RDMA descriptor setup, chunk
#: metadata handling); calibrated so a ~40 MB/s no-pre-copy stream
#: costs ~13% of a core (Table V).
HELPER_CPU_PER_BYTE = 3.5e-9
#: extra helper CPU per *streamed* byte: nvdirty queries, queue and
#: version bookkeeping.  Together with the stream's slightly larger
#: volume this doubles helper utilization (Table V's ~2x).
TRACKING_CPU_PER_BYTE = 3.0e-9
#: fixed helper cost per chunk transfer.
PER_CHUNK_CPU = usec(20.0)
#: stream pacing headroom: the stream aims to move `pace_factor` full
#: checkpoints per remote interval, so it finishes slightly early and
#: the round only carries stragglers.
PACE_FACTOR = 1.3


@dataclass
class RemoteCheckpointStats:
    """One coordinated remote round."""

    start: float = 0.0
    end: float = 0.0
    bytes_moved: int = 0
    chunks_moved: int = 0
    chunks_skipped: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class RemoteTarget:
    """One source rank's remote chunk copies, living on the buddy
    node's NVM with independent two-version commit state."""

    def __init__(self, src_pid: str, dst_ctx: NodeContext, two_versions: bool = True) -> None:
        self.src_pid = src_pid
        self.dst_ctx = dst_ctx
        self.pid = f"rmt:{src_pid}"
        self.n_versions = 2 if two_versions else 1
        #: chunk name -> committed version index (-1 = none)
        self.committed: Dict[str, int] = {}
        #: chunk name -> size, for restart sizing
        self.sizes: Dict[str, int] = {}
        self._staged: Dict[str, int] = {}
        #: chunk name -> payload crc32 of the *committed* copy (None for
        #: phantom chunks — their zeros are not a real payload).  Lets
        #: the scrubber detect a corrupted buddy copy before trusting it.
        self.checksums: Dict[str, Optional[int]] = {}
        self._staged_crc: Dict[str, Optional[int]] = {}
        #: the byte runs the most recent :meth:`stage` actually wrote
        #: (``None`` = whole chunk).  Staging re-reads the stale map, so
        #: raced writes land too; the codec publish path derives the
        #: digest coverage from this, not from its pre-transfer plan.
        self.last_staged_runs: Optional[List[Tuple[int, int]]] = None
        #: content-addressed digest index over the buddy-side versions
        #: (one store per target, so same-named chunks of different
        #: source ranks can never alias).  None until a codec asks.
        self.block_store: Optional[BlockStore] = None

    def ensure_block_store(self, block: int = DEFAULT_BLOCK) -> BlockStore:
        if self.block_store is None or self.block_store.block != block:
            self.block_store = BlockStore(block=block)
        return self.block_store

    def codec_slots(self, chunk_name: str) -> Tuple[int, int]:
        """(in-progress slot, committed base slot) for codec planning."""
        return self._inprogress(chunk_name), self.committed.get(chunk_name, -1)

    # -- region plumbing ------------------------------------------------------

    def _region_name(self, chunk_name: str, version: int) -> str:
        return f"{chunk_name}#v{version}"

    def ensure_chunk(self, chunk: Chunk) -> None:
        """Create (or grow) the remote regions mirroring *chunk*."""
        nvmm = self.dst_ctx.nvmm
        for v in range(self.n_versions):
            rname = self._region_name(chunk.name, v)
            try:
                region = nvmm.region(self.pid, rname)
            except Exception:
                nvmm.nvmmap(self.pid, rname, chunk.nbytes, phantom=chunk.phantom)
                continue
            if region.nbytes != chunk.nbytes:
                nvmm.nvmrealloc(self.pid, rname, chunk.nbytes)
        chunk.ensure_remote_slots(self.n_versions)
        if chunk.name not in self.committed:
            # first contact with this target (fresh pairing or a
            # post-failover replacement): its regions hold nothing, so
            # any remote stale-map state from an earlier buddy is void
            chunk.mark_all_stale("remote")
            self.committed[chunk.name] = -1
        self.sizes[chunk.name] = chunk.nbytes

    def _inprogress(self, chunk_name: str) -> int:
        cur = self.committed.get(chunk_name, -1)
        if self.n_versions <= 1:
            return 0
        return 1 - cur if cur >= 0 else 0

    def stage(self, chunk: Chunk, extents: Optional[List[Tuple[int, int]]] = None) -> int:
        """Write the chunk's current payload into the in-progress
        remote version (data plane of one RDMA put).

        With *extents* (page-granular mode) the definitive run list is
        re-read from the chunk's remote stale map at stage time: writes
        that raced the fabric transfer must land too, or the staged
        version would not match the DRAM state its checksum records.
        """
        self.ensure_chunk(chunk)
        v = self._inprogress(chunk.name)
        region = self.dst_ctx.nvmm.region(self.pid, self._region_name(chunk.name, v))
        if extents is None:
            if chunk.phantom:
                region.write_phantom(0, chunk.nbytes)
            else:
                assert chunk.dram is not None
                region.write(0, chunk.dram)
            moved = chunk.nbytes
            chunk.mark_extents_copied("remote", None, slot=v)
            self.last_staged_runs = None
        else:
            runs = chunk.copy_extents("remote", slot=v)
            moved = 0
            for off, n in runs:
                if chunk.phantom:
                    region.write_phantom(off, n)
                else:
                    assert chunk.dram is not None
                    region.write(off, chunk.dram[off : off + n])
                moved += n
            chunk.mark_extents_copied("remote", runs, slot=v)
            self.last_staged_runs = runs
        chunk.bytes_copied_remote += moved
        self._staged[chunk.name] = v
        self._staged_crc[chunk.name] = (
            None if chunk.phantom else chunk.payload_checksum()
        )
        return moved

    def commit(self) -> float:
        """Commit all staged chunks: flush the buddy store, flip the
        committed pointers, persist them.  Returns the flush cost."""
        cost = self.dst_ctx.nvmm.cache_flush()
        fire("remote.commit.before_flip", target=self, pid=self.src_pid)
        for name, v in self._staged.items():
            self.committed[name] = v
            self.checksums[name] = self._staged_crc.get(name)
        self._staged.clear()
        self._staged_crc.clear()
        if self.block_store is not None:
            # the digest index commits with the versions it describes:
            # after the pointer flip, before the metadata flush
            self.block_store.commit()
        fire("remote.commit.before_meta", target=self, pid=self.src_pid)
        self.dst_ctx.nvmm.store.put_meta(
            f"remote/proc:{self.src_pid}",
            {
                "committed": dict(self.committed),
                "sizes": dict(self.sizes),
                "checksums": dict(self.checksums),
            },
        )
        cost += self.dst_ctx.nvmm.cache_flush()
        fire(
            "remote.commit.done",
            target=self,
            pid=self.src_pid,
            store=self.dst_ctx.nvmm.store,
        )
        return cost

    # -- restart fetch ----------------------------------------------------------

    def committed_chunks(self) -> List[str]:
        return sorted(n for n, v in self.committed.items() if v >= 0)

    def fetch(self, chunk_name: str, offset: int = 0, nbytes: Optional[int] = None):
        """The committed remote payload of *chunk_name* (numpy uint8,
        zeros for phantom regions).  *offset*/*nbytes* select a byte
        range for extent-granular restart fetches (default: all)."""
        v = self.committed.get(chunk_name, -1)
        if v < 0:
            raise CheckpointError(
                f"no committed remote version of chunk {chunk_name!r} for {self.src_pid!r}"
            )
        region = self.dst_ctx.nvmm.region(self.pid, self._region_name(chunk_name, v))
        if nbytes is None:
            nbytes = region.nbytes - offset
        return region.read(offset, nbytes)

    def verify(self, chunk_name: str) -> bool:
        """Does the committed buddy copy still match its recorded
        checksum?  True when no checksum was recorded (phantom chunks,
        pre-checksum metadata)."""
        import zlib

        v = self.committed.get(chunk_name, -1)
        if v < 0:
            return False
        expect = self.checksums.get(chunk_name)
        if expect is None:
            return True
        region = self.dst_ctx.nvmm.region(self.pid, self._region_name(chunk_name, v))
        payload = region.read(0, region.nbytes)
        return (zlib.crc32(payload) & 0xFFFFFFFF) == expect

    @classmethod
    def reattach(cls, src_pid: str, dst_ctx: NodeContext, two_versions: bool = True) -> "RemoteTarget":
        """Rebuild a target from the buddy's persisted metadata (used
        when the *source* node died and restart must fetch)."""
        target = cls(src_pid, dst_ctx, two_versions=two_versions)
        meta = dst_ctx.nvmm.store.get_meta(f"remote/proc:{src_pid}", None)
        if meta is None:
            raise CheckpointError(f"buddy holds no remote checkpoint for {src_pid!r}")
        target.committed = {k: int(v) for k, v in meta["committed"].items()}
        target.sizes = {k: int(v) for k, v in meta["sizes"].items()}
        target.checksums = {
            k: (None if v is None else int(v))
            for k, v in meta.get("checksums", {}).items()
        }
        dst_ctx.nvmm.load_process(target.pid)
        return target


class RemoteHelper:
    """The per-node asynchronous remote-checkpoint process."""

    def __init__(
        self,
        node_id: int,
        ctx: NodeContext,
        fabric: Fabric,
        buddy_id: int,
        buddy_ctx: NodeContext,
        ranks: List[NVAllocator],
        config: Optional[CheckpointConfig] = None,
        *,
        timeline: Optional[Timeline] = None,
        compression=None,
        resilience=None,
        tenants: Optional[Dict[str, str]] = None,
    ) -> None:
        self.node_id = node_id
        self.ctx = ctx
        self.fabric = fabric
        self.buddy_id = buddy_id
        self.buddy_ctx = buddy_ctx
        self.ranks = ranks
        self.config = config or CheckpointConfig()
        self.timeline = timeline
        #: optional CompressionModel: payloads are compressed before
        #: crossing the fabric (mcrengine-style volume/CPU trade)
        self.compression = compression
        #: optional ResilientTransport: sends go through retry/backoff
        #: instead of one-shot RDMA (duck-typed to avoid an import
        #: cycle with repro.resilience)
        self.resilience = resilience
        #: rank pid -> owning tenant; stamps the helper's chunk.copied
        #: events so remote traffic is attributable in multi-tenant runs
        self.tenants: Dict[str, str] = dict(tenants or {})
        self.owner = f"n{node_id}:helper"
        self.targets: Dict[str, RemoteTarget] = {
            a.pid: RemoteTarget(a.pid, buddy_ctx, two_versions=self.config.two_versions)
            for a in ranks
        }
        #: per-rank Destination view of the buddy arena: stage/commit/
        #: read go through the same backend protocol as the local tiers
        #: (multilevel checkpointing = local destination + this one)
        self.destinations: Dict[str, RemoteBuddyDestination] = {
            pid: self._make_destination(pid, target)
            for pid, target in self.targets.items()
        }
        #: payload codec on the fabric path (None on the raw default).
        #: A codec *and* a compression model both want to own the wire
        #: volume — that combination used to be silently resolved in
        #: favour of compression, hiding the dropped codec from the
        #: operator; it is now an explicit configuration error.
        if compression is not None and self.config.precopy.codec_enabled:
            raise ConfigError(
                f"codec {self.config.precopy.codec!r} cannot be combined with a "
                "compression model on the remote stream: both define the wire "
                "volume; set precopy.codec='raw' or drop the compression model"
            )
        self.codec = (
            resolve_codec(self.config.precopy.codec)
            if self.config.precopy.codec_enabled
            else None
        )
        # incremental sends are still *auto*-disabled under compression
        # (whole-chunk wire volume is the compressor's business), but the
        # drop is now visible to replay/what-if as a policy decision
        if compression is not None and self.config.precopy.incremental and BUS.active:
            BUS.emit(
                PolicyDecisionEvent(
                    t=ctx.engine.now,
                    actor=self.owner,
                    chunk="*",
                    decision="incremental_disabled",
                    policy="compression",
                )
            )
        self.entropy_probe = EntropyProbe() if self.codec is not None else None
        if self.codec is not None:
            for dest in self.destinations.values():
                dest.ensure_block_store(self.config.precopy.codec_block)
        self.codec_logical_bytes = 0
        self.codec_wire_bytes = 0
        self.codec_delta_bytes = 0
        self.codec_blocks_new = 0
        self.codec_blocks_ref = 0
        self.history: List[RemoteCheckpointStats] = []
        self.rounds_behind = 0
        self._stop = False
        self._paused = False
        #: pairing generation: bumped by :meth:`retarget` so in-flight
        #: re-sync tasks for the old buddy can detect they are stale
        self.epoch = 0
        self._round_in_progress = False
        #: coalescing stream queue: (pid, chunk_id) -> Chunk, FIFO
        self._queue: Dict[Tuple[str, int], Chunk] = {}
        self._wake: Optional[Event] = None
        self.stream_bytes = 0
        self.stream_chunks = 0
        # -- replication bookkeeping (incremental failover/migration) --
        #: (pid, chunk_id) -> commit generation; bumped every time a
        #: local commit (re-)queues the chunk, so a buddy's copy is
        #: provably current iff its recorded generation matches.
        self._dirty_epoch: Dict[Tuple[str, int], int] = {}
        #: buddy node id -> {(pid, chunk_id) -> generation sent}; which
        #: content each buddy (past or present) actually holds.
        self._replicated: Dict[int, Dict[Tuple[str, int], int]] = {}
        #: buddy node id -> its RemoteTarget map from when it was (or is
        #: being prepared as) a pairing; valid for reuse only while the
        #: buddy's context is unchanged (hardware replacement voids it).
        self._known_targets: Dict[int, Dict[str, RemoteTarget]] = {}

    def _make_destination(self, pid: str, target: RemoteTarget) -> RemoteBuddyDestination:
        def send_fn(chunk: Chunk, extents=None, pid: str = pid, wire=None) -> Event:
            if wire is None:
                wire = chunk.nbytes if extents is None else sum(n for _, n in extents)
            return self._send(pid, chunk, "rckpt", nbytes=wire)

        return RemoteBuddyDestination(target, send_fn=send_fn)

    @property
    def incremental(self) -> bool:
        """Page-granular remote sends: on when the policy asks for it
        and no compression model is attached (compressed sends are
        whole-chunk — the wire volume is the compressor's business)."""
        return self.config.precopy.incremental and self.compression is None

    # ------------------------------------------------------------------
    # Stream queue (fed by local checkpoint commits).
    # ------------------------------------------------------------------

    @property
    def stream_window(self) -> float:
        """How long before each round the stream is active.

        The §IV delayed pre-copy for the remote stream: streaming is
        *delayed* within the remote interval so that only the last
        committed wave is sent (intermediate commits coalesce away in
        the queue, keeping total volume near one checkpoint per round).
        The window is one local-checkpoint interval — the period of the
        final wave — capped by the remote interval itself."""
        return min(self.config.remote_interval * 0.9, self.config.local_interval)

    @property
    def pace_rate(self) -> float:
        """Target stream rate: one node checkpoint (+headroom) spread
        across the stream window, which is what flattens the Fig.-10
        profile relative to the no-pre-copy burst."""
        node_bytes = sum(a.checkpoint_bytes for a in self.ranks)
        if node_bytes <= 0 or self.stream_window <= 0:
            return float("inf")
        return PACE_FACTOR * node_bytes / self.stream_window

    def notify_local_checkpoint(self, pid: str) -> None:
        """A rank's local checkpoint committed: queue every chunk whose
        committed version changed since it was last sent to the buddy
        (the nvdirty query).  Re-commits of a queued chunk coalesce."""
        if not self.config.remote_precopy:
            return
        for alloc in self.ranks:
            if alloc.pid != pid:
                continue
            for chunk in alloc.persistent_chunks():
                if chunk.dirty_remote and chunk.committed_version >= 0:
                    key = (pid, chunk.chunk_id)
                    self._queue.setdefault(key, chunk)
                    # a fresh commit changed the content to send, even
                    # if the chunk was already queued (coalesced)
                    self._dirty_epoch[key] = self._dirty_epoch.get(key, 0) + 1
            break
        self._kick()

    def enqueue_all(self) -> None:
        """Force-queue every committed chunk (used after the buddy was
        replaced and all remote copies were lost)."""
        for alloc in self.ranks:
            for chunk in alloc.persistent_chunks():
                chunk.dirty_remote = True
                chunk.mark_all_stale("remote")
                if chunk.committed_version >= 0:
                    self._queue.setdefault((alloc.pid, chunk.chunk_id), chunk)
        self._kick()

    def enqueue_unreplicated(self) -> None:
        """Queue only the committed chunks the *current* buddy does not
        already hold at their latest commit generation — the incremental
        alternative to :meth:`enqueue_all` when failing over (or cutting
        over) to a buddy that was streamed to before."""
        held = self._replicated.get(self.buddy_id, {})
        for alloc in self.ranks:
            for chunk in alloc.persistent_chunks():
                if chunk.committed_version < 0:
                    continue
                key = (alloc.pid, chunk.chunk_id)
                if held.get(key) == self._dirty_epoch.get(key, 0):
                    continue
                chunk.dirty_remote = True
                chunk.mark_all_stale("remote")
                self._queue.setdefault(key, chunk)
        self._kick()

    def _record_replicated(
        self, pid: str, chunk: Chunk, buddy_id: Optional[int] = None
    ) -> None:
        """Note that *buddy_id* (default: the current buddy) now holds
        this chunk at its current commit generation (call right after a
        successful stage)."""
        key = (pid, chunk.chunk_id)
        b = self.buddy_id if buddy_id is None else buddy_id
        self._replicated.setdefault(b, {})[key] = self._dirty_epoch.get(key, 0)

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None

    def _pop(self) -> Optional[Tuple[str, Chunk]]:
        """Next queued chunk (FIFO), skipping entries that went clean."""
        while self._queue:
            key, chunk = next(iter(self._queue.items()))
            del self._queue[key]
            if chunk.dirty_remote:
                return key[0], chunk
        return None

    @property
    def queued_bytes(self) -> int:
        return sum(c.nbytes for c in self._queue.values() if c.dirty_remote)

    # ------------------------------------------------------------------
    # Transfers.
    # ------------------------------------------------------------------

    def _plan_payload(self, pid: str, chunk: Chunk, extents) -> Optional[Payload]:
        """Plan what crosses the fabric for *chunk*'s pending extents;
        ``None`` on the raw path.  Digest state lives on the *current*
        buddy's target store, so a failover's fresh store honestly
        forgets what the old buddy held."""
        if self.codec is None:
            return None
        dest = self.destinations[pid]
        slot, base_slot = dest.codec_slots(chunk)
        payload = self.codec.plan(
            chunk,
            extents,
            store=dest.block_store,
            slot=slot,
            base_slot=base_slot,
            probe=self.entropy_probe,
        )
        payload.slot = slot
        if payload.candidates is not None and BUS.active:
            BUS.emit(
                CodecDecisionEvent(
                    t=self.ctx.engine.now,
                    actor=self.owner,
                    chunk=chunk.name,
                    chosen=payload.codec,
                    raw_bytes=payload.candidates.get("raw", 0),
                    delta_bytes=payload.candidates.get("delta", 0),
                    dedup_bytes=payload.candidates.get("dedup", 0),
                    entropy=payload.entropy,
                    density=payload.density,
                )
            )
        return payload

    def _account_payload(self, payload: Payload) -> None:
        self.codec_logical_bytes += payload.logical_bytes
        self.codec_wire_bytes += payload.wire_bytes
        if payload.kind == "delta":
            self.codec_delta_bytes += payload.changed_bytes
        self.codec_blocks_new += payload.blocks_new
        self.codec_blocks_ref += payload.blocks_ref

    def _publish_payload(self, pid: str, chunk: Chunk, payload: Payload) -> None:
        """Stage the payload's digests into the buddy target's store
        (refcounted at the next remote commit).

        Coverage and digests are re-derived from what the stage call
        actually wrote (:attr:`RemoteTarget.last_staged_runs`), not from
        the pre-transfer plan: writes that raced the fabric transfer
        land in the staged version too, and the index must describe
        what the buddy really holds."""
        store = self.destinations[pid].block_store
        if store is None or payload.block_index is None:
            return
        runs = self.targets[pid].last_staged_runs
        idx = blocks_of_extents(runs, store.block, chunk.nbytes)
        if len(idx):
            store.stage(
                chunk.name,
                payload.slot,
                idx,
                current_digests(chunk, idx, store.block),
            )

    def _charge_cpu(self, nbytes: int, streamed: bool) -> None:
        cost = nbytes * HELPER_CPU_PER_BYTE + PER_CHUNK_CPU
        if streamed:
            cost += nbytes * TRACKING_CPU_PER_BYTE
        self.ctx.cpu.charge(self.owner, cost)

    def _send(self, pid: str, chunk: Chunk, kind: str, nbytes: Optional[int] = None) -> Event:
        wire = chunk.nbytes if nbytes is None else nbytes
        if self.compression is not None:
            wire = self.compression.wire_bytes(chunk)
            # sender compresses, buddy decompresses; the decompressed
            # payload is what lands in the buddy's NVM, so the NVM bus
            # still carries the full size
            self.ctx.cpu.charge(self.owner, self.compression.compress_cost(chunk.nbytes))
            self.buddy_ctx.cpu.charge(
                f"{self.owner}:rx", self.compression.decompress_cost(chunk.nbytes)
            )
            net_ev = self.fabric.transfer(
                self.node_id, self.buddy_id, wire, tag=f"{pid}:{kind}"
            )
            nvm_ev = self.buddy_ctx.nvm_bus.transfer(chunk.nbytes, tag=f"{pid}:{kind}")
            return self.ctx.engine.all_of([net_ev, nvm_ev])
        return rdma_put(
            self.fabric,
            self.node_id,
            self.buddy_id,
            wire,
            tag=f"{pid}:{kind}",
            dst_nvm_bus=self.buddy_ctx.nvm_bus,
        )

    def _deliver(self, pid: str, chunk: Chunk, kind: str, nbytes: Optional[int] = None):
        """Send one chunk to the buddy, through the resilient transport
        when one is attached (plain one-shot send otherwise).  *nbytes*
        overrides the wire volume (extent sends move only the stale byte
        runs).  Compressed sends ride the same retry/stall-timeout
        transport as raw ones — the wire bytes cross the fabric while
        the full payload lands on the buddy's NVM bus — so a link flap
        retries instead of hard-failing the round."""
        if self.resilience is None:
            yield self._send(pid, chunk, kind, nbytes=nbytes)
            return
        if self.compression is not None:
            # compress once per delivery, not per retry attempt: the
            # sender keeps the compressed buffer across re-issues
            wire = self.compression.wire_bytes(chunk)
            self.ctx.cpu.charge(self.owner, self.compression.compress_cost(chunk.nbytes))
            self.buddy_ctx.cpu.charge(
                f"{self.owner}:rx", self.compression.decompress_cost(chunk.nbytes)
            )
            yield from self.resilience.put(
                self.fabric,
                self.node_id,
                self.buddy_id,
                wire,
                tag=f"{pid}:{kind}",
                dst_nvm_bus=self.buddy_ctx.nvm_bus,
                dst_nvm_bytes=chunk.nbytes,
            )
            return
        yield from self.resilience.put(
            self.fabric,
            self.node_id,
            self.buddy_id,
            chunk.nbytes if nbytes is None else nbytes,
            tag=f"{pid}:{kind}",
            dst_nvm_bus=self.buddy_ctx.nvm_bus,
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def pause_rounds(self) -> None:
        """Suspend streaming and coordinated rounds (degraded mode, or
        a re-sync owning the queue).  Local checkpoints keep committing;
        their chunks keep queueing for whoever drains next."""
        self._paused = True
        self._kick()

    def resume_rounds(self) -> None:
        self._paused = False
        self._kick()

    def retarget(
        self,
        new_buddy_id: int,
        new_buddy_ctx: NodeContext,
        *,
        incremental: bool = False,
        reason: str = "buddy replaced",
    ) -> None:
        """Re-point this helper at a new buddy node.

        Default (``incremental=False``): all remote copies on the new
        target count as lost, so every committed chunk is re-queued; a
        :class:`~repro.resilience.resync.ResyncTask` (or the next
        rounds) rebuilds protection from scratch.

        With ``incremental=True`` the helper reuses the new buddy's
        cached :class:`RemoteTarget` state when it is still valid (same
        node context — hardware replacement voids it) and re-queues
        *only* chunks whose commit generation moved past what that
        buddy holds: a migration cutover, or a failover back onto a
        previously-streamed buddy, re-sends just the delta."""
        old_buddy = self.buddy_id
        # keep the old pairing's targets: a later failover *back* onto
        # this buddy can reuse the copies still sitting on it
        self._known_targets[old_buddy] = self.targets
        self.epoch += 1
        self.buddy_id = new_buddy_id
        self.buddy_ctx = new_buddy_ctx
        cached = self._known_targets.get(new_buddy_id)
        reuse = (
            incremental
            and cached is not None
            and set(cached) == {a.pid for a in self.ranks}
            and all(t.dst_ctx is new_buddy_ctx for t in cached.values())
        )
        if reuse:
            self.targets = cached
        else:
            # fresh hardware (or never seen): whatever we thought the
            # buddy held is void
            self._replicated.pop(new_buddy_id, None)
            self._known_targets.pop(new_buddy_id, None)
            self.targets = {
                a.pid: RemoteTarget(
                    a.pid, new_buddy_ctx, two_versions=self.config.two_versions
                )
                for a in self.ranks
            }
        for pid, target in self.targets.items():
            dest = self.destinations.get(pid)
            if dest is not None:
                dest.retarget(target)
            else:
                self.destinations[pid] = self._make_destination(pid, target)
        if self.codec is not None:
            # a reused target keeps its digest index (its copies are
            # still resident); fresh hardware starts an empty one
            for dest in self.destinations.values():
                dest.ensure_block_store(self.config.precopy.codec_block)
        if BUS.active:
            BUS.emit(
                FailoverEvent(
                    t=self.ctx.engine.now,
                    actor=self.owner,
                    from_target=f"n{old_buddy}",
                    to_target=f"n{new_buddy_id}",
                    reason=reason,
                )
            )
        if reuse:
            self.enqueue_unreplicated()
        else:
            self.enqueue_all()

    def start_background(self) -> None:
        """The stream runs inside :meth:`run`; nothing extra to spawn.
        Kept for interface symmetry with the local checkpointer."""

    def stop(self) -> None:
        self._stop = True
        self._kick()

    def run(self):
        """Generator process: stream between rounds, then drain+commit
        at each remote interval, until :meth:`stop`.

        The first interval is the **learning phase** (§IV): the helper
        has not yet observed a checkpoint round, so the stream stays
        idle and the first round moves everything at once — the early
        usage spike visible in Fig. 10."""
        engine = self.ctx.engine
        interval = self.config.remote_interval
        while not self._stop:
            # rounds anchor to absolute multiples of the interval so a
            # long round does not drift the schedule into the local
            # checkpoint rhythm
            deadline = (int(engine.now / interval + 1e-9) + 1) * interval
            if self._paused:
                # degraded / re-syncing: sleep out the interval; queued
                # chunks wait for the re-sync or the next healthy round
                if deadline > engine.now:
                    yield engine.timeout(deadline - engine.now)
                continue
            if self.config.remote_precopy and self.history:
                yield from self._stream_until(deadline)
            elif deadline > engine.now:
                yield engine.timeout(deadline - engine.now)
            if self._stop:
                break
            if self._paused:
                continue
            yield from self.remote_checkpoint()
        return self.history

    # ------------------------------------------------------------------
    # The continuous stream (remote pre-copy).
    # ------------------------------------------------------------------

    def _stream_until(self, deadline: float):
        engine = self.ctx.engine
        # delayed start: idle through the intermediate local intervals
        # (their commits coalesce in the queue), stream the final wave
        start = deadline - self.stream_window
        if engine.now < start:
            yield engine.timeout(start - engine.now)
        while not self._stop and not self._paused and engine.now < deadline - 1e-9:
            item = self._pop()
            if item is None:
                self._wake = engine.event("helper.wake")
                yield engine.any_of([self._wake, engine.timeout(deadline - engine.now)])
                self._wake = None
                continue
            pid, chunk = item
            t0 = engine.now
            extents = (
                self.destinations[pid].pending_extents(chunk)
                if self.incremental
                else None
            )
            if extents is None:
                logical = chunk.nbytes
                pages = pages_of(chunk.nbytes)
            else:
                logical = sum(n for _, n in extents)
                pages = sum(pages_of(n) for _, n in extents)
            payload = self._plan_payload(pid, chunk, extents)
            wire = logical if payload is None else payload.wire_bytes
            self._charge_cpu(wire, streamed=True)
            fire("remote.stream.before_send", chunk=chunk, pid=pid)
            try:
                yield from self._deliver(pid, chunk, "rprecopy", nbytes=wire)
            except (TransferCancelled, TransferFailed):
                # failure tore the flow down (or retries ran out);
                # requeue so the chunk is retried or swept up later
                self._queue.setdefault((pid, chunk.chunk_id), chunk)
                continue
            self.destinations[pid].stage(chunk, extents)
            if payload is not None:
                self._account_payload(payload)
                self._publish_payload(pid, chunk, payload)
            self._record_replicated(pid, chunk)
            fire(
                "remote.stream.after_stage",
                chunk=chunk,
                pid=pid,
                target=self.targets[pid],
            )
            chunk.dirty_remote = False
            self.stream_bytes += wire
            self.stream_chunks += 1
            if self.timeline is not None:
                self.timeline.record(self.owner, tl.REMOTE_PRECOPY, t0, engine.now)
            if BUS.active:
                BUS.emit(
                    ChunkCopiedEvent(
                        t=engine.now,
                        actor=self.owner,
                        chunk=chunk.name,
                        nbytes=wire,
                        start=t0,
                        stream="remote",
                        phase="precopy",
                        destination=self.destinations[pid].name,
                        pages=pages,
                        bytes_saved=chunk.nbytes - logical,
                        codec=payload.codec if payload is not None else "raw",
                        logical_bytes=logical,
                        tenant=self.tenants.get(pid, ""),
                    )
                )
            # pacing: never run faster than pace_rate on average
            target_duration = wire / self.pace_rate
            elapsed = engine.now - t0
            if elapsed < target_duration and engine.now < deadline:
                yield engine.timeout(min(target_duration - elapsed, deadline - engine.now))

    # ------------------------------------------------------------------
    # One coordinated remote round.
    # ------------------------------------------------------------------

    def _chunks_for_round(self, alloc: NVAllocator) -> List[Chunk]:
        chunks = alloc.persistent_chunks()
        if self.config.remote_precopy:
            # only what is committed locally but not yet streamed: the
            # helper reads NVM versions, so chunks dirtied by *not yet
            # locally committed* writes have nothing new to send
            return [
                c
                for c in chunks
                if (alloc.pid, c.chunk_id) in self._queue and c.dirty_remote
            ]
        return list(chunks)

    def remote_checkpoint(self):
        """Move every rank's remaining dirty chunks to the buddy and
        commit.  Returns :class:`RemoteCheckpointStats`."""
        engine = self.ctx.engine
        self._round_in_progress = True
        stats = RemoteCheckpointStats(start=engine.now)
        if self.timeline is not None:
            self.timeline.begin(self.owner, tl.REMOTE_CKPT, engine.now)
        try:
            fire("remote.round.begin", node=self.node_id)
            for alloc in self.ranks:
                target = self.targets[alloc.pid]
                dest = self.destinations[alloc.pid]
                chunks = self._chunks_for_round(alloc)
                stats.chunks_skipped += len(alloc.persistent_chunks()) - len(chunks)
                aborted = False
                for chunk in chunks:
                    extents = (
                        dest.pending_extents(chunk) if self.incremental else None
                    )
                    if extents is None:
                        logical = chunk.nbytes
                        pages = pages_of(chunk.nbytes)
                    else:
                        logical = sum(n for _, n in extents)
                        pages = sum(pages_of(n) for _, n in extents)
                    payload = self._plan_payload(alloc.pid, chunk, extents)
                    wire = logical if payload is None else payload.wire_bytes
                    self._charge_cpu(wire, streamed=False)
                    fire("remote.round.before_send", chunk=chunk, pid=alloc.pid)
                    t0 = engine.now
                    try:
                        yield from self._deliver(alloc.pid, chunk, "rckpt", nbytes=wire)
                    except (TransferCancelled, TransferFailed):
                        # a failure interrupted the round (or retries
                        # ran out): abandon it; the previous committed
                        # remote version stands
                        aborted = True
                        break
                    dest.stage(chunk, extents)
                    if payload is not None:
                        self._account_payload(payload)
                        self._publish_payload(alloc.pid, chunk, payload)
                    self._record_replicated(alloc.pid, chunk)
                    fire(
                        "remote.round.after_stage",
                        chunk=chunk,
                        pid=alloc.pid,
                        target=target,
                    )
                    chunk.dirty_remote = False
                    self._queue.pop((alloc.pid, chunk.chunk_id), None)
                    stats.bytes_moved += wire
                    stats.chunks_moved += 1
                    if BUS.active:
                        BUS.emit(
                            ChunkCopiedEvent(
                                t=engine.now,
                                actor=self.owner,
                                chunk=chunk.name,
                                nbytes=wire,
                                start=t0,
                                stream="remote",
                                phase="coordinated",
                                destination=dest.name,
                                pages=pages,
                                bytes_saved=chunk.nbytes - logical,
                                codec=payload.codec if payload is not None else "raw",
                                logical_bytes=logical,
                                tenant=self.tenants.get(alloc.pid, ""),
                            )
                        )
                if aborted:
                    break
                flush_cost = dest.commit(chunks, with_checksum=self.config.checksums)
                yield engine.timeout(flush_cost)
        finally:
            self._round_in_progress = False
            if self.timeline is not None:
                self.timeline.end(self.owner, tl.REMOTE_CKPT, engine.now)
        stats.end = engine.now
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def codec_saved_bytes(self) -> int:
        """Fabric bytes the payload codec kept off the wire."""
        return max(0, self.codec_logical_bytes - self.codec_wire_bytes)

    @property
    def total_round_bytes(self) -> int:
        return sum(s.bytes_moved for s in self.history)

    @property
    def total_precopy_bytes(self) -> int:
        return self.stream_bytes

    @property
    def total_remote_bytes(self) -> int:
        return self.total_round_bytes + self.stream_bytes

    def helper_utilization(self, elapsed: float) -> float:
        """Fraction of the dedicated helper core used (Table V)."""
        if elapsed <= 0:
            return 0.0
        return self.ctx.cpu.busy_time(self.owner) / elapsed
