"""The third checkpoint level: periodic PFS archival.

§II describes the full multilevel hierarchy: "from local scratch
memory, to storage resources ... at remote neighbors ... and finally
to the PFS".  The paper's evaluation stops at the buddy level; this
extension adds the last hop — a per-cluster archiver that periodically
drains every rank's *remotely committed* checkpoint to the parallel
file system, protecting against failures that exceed the buddy
scheme's coverage (rack loss, correlated multi-node failures).

The archiver reads from the buddy copies (not the compute nodes), so
archival traffic loads the buddies' NVM read path and the shared PFS
pipe, never the application's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.pfs import PfsModel
from ..errors import TransferCancelled
from ..sim.engine import Engine
from .remote import RemoteHelper

__all__ = ["ArchiveTier", "ArchiveStats"]


@dataclass
class ArchiveStats:
    """One archival round."""

    start: float = 0.0
    end: float = 0.0
    bytes_archived: int = 0
    chunks_archived: int = 0
    ranks_covered: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class ArchiveTier:
    """Periodic buddy-to-PFS archival for a whole cluster."""

    def __init__(
        self,
        engine: Engine,
        helpers: List[RemoteHelper],
        pfs: PfsModel,
        interval: float = 600.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("archive interval must be positive")
        self.engine = engine
        self.helpers = helpers
        self.pfs = pfs
        self.interval = interval
        self.history: List[ArchiveStats] = []
        #: rank -> archived buddy-version per chunk (skip unchanged)
        self._archived: Dict[str, Dict[str, int]] = {}
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    # ------------------------------------------------------------------
    # One archival round.
    # ------------------------------------------------------------------

    def archive_round(self):
        """Generator process: ship every buddy-committed chunk version
        that changed since the last round to the PFS."""
        stats = ArchiveStats(start=self.engine.now)
        for helper in self.helpers:
            for pid, target in sorted(helper.targets.items()):
                seen = self._archived.setdefault(pid, {})
                covered = False
                for name in target.committed_chunks():
                    version = target.committed[name]
                    if seen.get(name) == version:
                        continue  # unchanged since the last archive
                    nbytes = target.sizes[name]
                    try:
                        # read from the buddy NVM (fast reads: 1/4 of
                        # the write-rate bus charge) and push through
                        # the shared PFS pipe
                        yield target.dst_ctx.nvm_bus.transfer(
                            nbytes / 4, tag=f"{pid}:archive-read"
                        )
                        yield self.pfs.write(nbytes, tag=f"{pid}:archive")
                    except TransferCancelled:
                        continue  # a failure tore it down; next round
                    seen[name] = version
                    stats.bytes_archived += nbytes
                    stats.chunks_archived += 1
                    covered = True
                if covered:
                    stats.ranks_covered += 1
        stats.end = self.engine.now
        self.history.append(stats)
        return stats

    def run(self):
        """Generator process: archive every ``interval`` seconds."""
        while not self._stop:
            yield self.engine.timeout(self.interval)
            if self._stop:
                break
            yield from self.archive_round()
        return self.history

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_archived for s in self.history)

    def archived_versions(self, pid: str) -> Dict[str, int]:
        """What the PFS holds for *pid* (chunk -> buddy version)."""
        return dict(self._archived.get(pid, {}))
