"""Checkpoint scheduling policies as strategy objects (§IV).

The paper's four modes are one copy mechanism under four *scheduling
policies*.  Each policy answers one question — given a dirty chunk and
the interval clock, should it be pre-copied now, left for the
coordinated step, or skipped — via :meth:`CheckpointPolicy.decide`:

* :class:`NonePolicy`   — never pre-copy (the blocking baseline);
* :class:`PrecopyPolicy` — pre-copy any dirty chunk immediately (CPC);
* :class:`DelayedPrecopyPolicy` — pre-copy only after the learned
  threshold ``T_p = I - T_c`` within the interval (DCPC);
* :class:`PredictivePolicy` — delayed, and additionally withheld until
  the prediction table expects no further writes (DCPCP).

Mechanism-level checks (is the chunk persistent, dirty, idle on this
stream) stay in the engine; the policy sees only chunks that *could*
be copied.  Policies are looked up by mode name through
:data:`POLICIES` / :func:`resolve_policy` — adding a fifth policy is
one class plus one registry entry, not a new pipeline fork.

Policies decide *when* a chunk moves; *how much* of it moves is the
orthogonal ``copy_granularity`` axis of the config (whole dirty chunks
vs stale dirty-page extents), applied by the engine after the
decision.  Threshold recomputes surface on the trace bus as
``policy.decision`` events with ``decision="recompute_threshold"``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Type

from ..alloc.chunk import Chunk
from ..config import PrecopyPolicy as PrecopyConfig
from ..errors import ConfigError
from .prediction import PredictionTable
from .threshold import ThresholdEstimator

__all__ = [
    "Decision",
    "IntervalClock",
    "CheckpointPolicy",
    "NonePolicy",
    "PrecopyPolicy",
    "DelayedPrecopyPolicy",
    "PredictivePolicy",
    "POLICIES",
    "policy_class",
    "resolve_policy",
    "valid_policy_names",
]

#: slack added to ``now`` before comparing against the threshold time,
#: so a wake-up scheduled *exactly at* the boundary is not lost to
#: float rounding (must match the pre-refactor eligibility check).
_EPS = 1e-12


class Decision(enum.Enum):
    """What to do with one dirty chunk right now."""

    #: copy it in the background immediately
    PRECOPY = "precopy"
    #: leave it for the coordinated checkpoint step
    COPY_AT_CHECKPOINT = "copy_at_checkpoint"
    #: do not copy it now (expected to be written again this interval)
    SKIP = "skip"


@dataclass(frozen=True)
class IntervalClock:
    """The policy's view of time: the current instant and the start of
    the open checkpoint interval."""

    now: float
    interval_start: float


class CheckpointPolicy:
    """Strategy protocol: when does a dirty chunk move?

    Subclasses override :meth:`decide` (and :meth:`ready_time` for
    delayed variants).  ``threshold``/``prediction`` are the shared
    estimators owned by the checkpointer; policies that do not use them
    leave them ``None``.
    """

    #: registry name (also the ``PrecopyConfig.mode`` string)
    name: str = ""
    #: does this policy consume a ThresholdEstimator?  The engine builds
    #: the shared estimators from these flags — registry-keyed, so a new
    #: policy never needs a mode-string branch in the pipeline.
    needs_threshold: bool = False
    #: does this policy consume a PredictionTable?
    needs_prediction: bool = False

    def __init__(
        self,
        threshold: Optional[ThresholdEstimator] = None,
        prediction: Optional[PredictionTable] = None,
    ) -> None:
        self.threshold = threshold
        self.prediction = prediction

    def decide(self, chunk: Chunk, clock: IntervalClock) -> Decision:
        raise NotImplementedError

    def ready_time(self, interval_start: float) -> float:
        """Absolute time from which this policy may return
        :data:`Decision.PRECOPY` in the interval opened at
        *interval_start* (used by the pre-copy engine to sleep until
        the boundary instead of polling)."""
        return interval_start

    @property
    def precopies(self) -> bool:
        """False only for the no-pre-copy baseline (drives the
        checkpointer's dirty-tracking switch)."""
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NonePolicy(CheckpointPolicy):
    """No pre-copy: every dirty chunk waits for the coordinated step."""

    name = PrecopyConfig.NONE

    def decide(self, chunk: Chunk, clock: IntervalClock) -> Decision:
        return Decision.COPY_AT_CHECKPOINT

    @property
    def precopies(self) -> bool:
        return False


class PrecopyPolicy(CheckpointPolicy):
    """CPC: pre-copy any dirty chunk as soon as it is seen.

    (Strategy counterpart of the ``mode="cpc"`` config; distinct from
    the :class:`repro.config.PrecopyPolicy` *config dataclass*.)
    """

    name = PrecopyConfig.CPC

    def decide(self, chunk: Chunk, clock: IntervalClock) -> Decision:
        return Decision.PRECOPY


class DelayedPrecopyPolicy(CheckpointPolicy):
    """DCPC: pre-copy only within ``T_p`` of the expected next
    checkpoint, where ``T_p = I - T_c`` comes from the threshold
    estimator.  Until the estimator has observed one full interval the
    policy never pre-copies ('our method waits for the first checkpoint
    step to complete', §IV).  Without an estimator the delay gate is
    open from the interval start (prediction-only remote streams).
    """

    name = PrecopyConfig.DCPC
    needs_threshold = True

    def ready_time(self, interval_start: float) -> float:
        if self.threshold is None:
            return interval_start
        if not self.threshold.learned:
            return float("inf")
        return interval_start + self.threshold.threshold()

    def decide(self, chunk: Chunk, clock: IntervalClock) -> Decision:
        if clock.now + _EPS < self.ready_time(clock.interval_start):
            return Decision.COPY_AT_CHECKPOINT
        return Decision.PRECOPY


class PredictivePolicy(DelayedPrecopyPolicy):
    """DCPCP: delayed pre-copy, plus the per-chunk prediction table —
    a chunk expected to be written again this interval is withheld
    (:data:`Decision.SKIP`) even after the threshold passes."""

    name = PrecopyConfig.DCPCP
    needs_prediction = True

    def decide(self, chunk: Chunk, clock: IntervalClock) -> Decision:
        if clock.now + _EPS < self.ready_time(clock.interval_start):
            return Decision.COPY_AT_CHECKPOINT
        if self.prediction is not None and not self.prediction.eligible(chunk):
            return Decision.SKIP
        return Decision.PRECOPY


#: mode name -> policy class; the single source of mode dispatch
POLICIES: Dict[str, Type[CheckpointPolicy]] = {
    NonePolicy.name: NonePolicy,
    PrecopyPolicy.name: PrecopyPolicy,
    DelayedPrecopyPolicy.name: DelayedPrecopyPolicy,
    PredictivePolicy.name: PredictivePolicy,
}


def valid_policy_names() -> list:
    return sorted(POLICIES)


def policy_class(mode: str) -> Type[CheckpointPolicy]:
    """The policy class registered under *mode* (without instantiating
    it) — for callers that need the class flags, e.g. the engine sizing
    its estimators.  Unknown names raise :class:`ConfigError`."""
    try:
        return POLICIES[mode]
    except KeyError:
        raise ConfigError(
            f"unknown checkpoint policy {mode!r}; valid policies: "
            f"{', '.join(valid_policy_names())}"
        ) from None


def resolve_policy(
    mode: str,
    *,
    threshold: Optional[ThresholdEstimator] = None,
    prediction: Optional[PredictionTable] = None,
) -> CheckpointPolicy:
    """Instantiate the policy registered under *mode*.

    Unknown names raise :class:`~repro.errors.ConfigError` carrying the
    valid-name list — never a silent fallback to the naive baseline.
    """
    return policy_class(mode)(threshold=threshold, prediction=prediction)
