"""The background chunk pre-copy engine (CPC / DCPC / DCPCP, §IV).

One engine instance serves one checkpoint *stream* ("local": DRAM->NVM
through the node's NVM bus; "remote": NVM->buddy over the fabric, used
by the remote helper).  It runs as a DES process that continuously:

1. finds a dirty, *eligible* chunk — eligibility depends on the policy
   (CPC: any dirty chunk; DCPC: only after the learned threshold
   ``T_p`` within the interval; DCPCP: additionally only once the
   prediction table expects no further modifications);
2. moves it through the injected transfer function (bus/fabric
   contention is charged there);
3. marks the chunk pre-copied: clean for this stream + write-protected,
   so the next application write faults and re-dirties it.

A copy that races with an application write is *stale*: the chunk
stays dirty and the moved bytes count as redundant work (the extra
data volume visible in Fig. 7's right axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..alloc.chunk import Chunk, ChunkState
from ..config import PrecopyPolicy
from ..errors import SimulationError, TransferCancelled
from ..faults.crashpoints import fire
from ..metrics.trace import BUS, ChunkCopiedEvent, PolicyDecisionEvent
from ..sim.events import Event
from ..units import pages_of
from .context import NodeContext
from .policy import CheckpointPolicy, Decision, IntervalClock, resolve_policy
from .prediction import PredictionTable
from .threshold import ThresholdEstimator

__all__ = ["PrecopyEngine", "PrecopyStats"]


@dataclass
class PrecopyStats:
    """Work accounting for one pre-copy engine."""

    bytes_copied: int = 0
    copies: int = 0
    stale_copies: int = 0  # overwritten mid-copy
    redundant_copies: int = 0  # re-dirtied after a completed pre-copy
    faults_induced: int = 0

    @property
    def wasted_bytes_estimate(self) -> int:
        total = self.stale_copies + self.redundant_copies
        if self.copies == 0:
            return 0
        return int(self.bytes_copied * total / self.copies)


class PrecopyEngine:
    """Background pre-copy worker for one rank (local stream) or one
    node helper (remote stream)."""

    def __init__(
        self,
        ctx: NodeContext,
        chunks: Callable[[], Iterable[Chunk]],
        policy: PrecopyPolicy,
        *,
        stream: str = "local",
        tag: str = "precopy",
        transfer_fn: Optional[Callable[[Chunk], Event]] = None,
        finalize_fn: Optional[Callable[[Chunk], None]] = None,
        threshold: Optional[ThresholdEstimator] = None,
        prediction: Optional[PredictionTable] = None,
        decision_policy: Optional[CheckpointPolicy] = None,
        codec_hooks=None,
        tenant: str = "",
    ) -> None:
        if stream not in ("local", "remote"):
            raise ValueError(f"unknown stream {stream!r}")
        self.ctx = ctx
        self._chunks = chunks
        self.policy = policy
        self.stream = stream
        self.tag = tag
        self.tenant = tenant
        self._transfer_fn = transfer_fn or self._default_transfer
        self._finalize_fn = finalize_fn or self._default_finalize
        #: page-granular incremental copy applies only to the default
        #: local DRAM→NVM path; injected transfer/finalize callables
        #: (remote helper, legacy facades) keep whole-chunk semantics
        self._incremental = (
            policy.incremental
            and stream == "local"
            and transfer_fn is None
            and finalize_fn is None
        )
        #: payload-codec hooks (plan/account/publish — duck-typed to
        #: the owning CheckpointEngine); like incremental extents, the
        #: codec applies only to the default local DRAM→NVM path
        self._codec = (
            codec_hooks
            if stream == "local" and transfer_fn is None and finalize_fn is None
            else None
        )
        self.threshold = threshold
        self.prediction = prediction
        if policy.mode == PrecopyPolicy.DCPC and threshold is None:
            raise SimulationError("DCPC requires a ThresholdEstimator")
        if policy.mode == PrecopyPolicy.DCPCP and prediction is None:
            raise SimulationError("DCPCP requires a PredictionTable")
        # DCPCP may run without a threshold (prediction-only gating):
        # the remote stream uses this to spread transfers across the
        # whole interval instead of compressing them into the tail.

        #: the scheduling strategy; shared with the owning checkpoint
        #: engine when one drives this pre-copy stream
        self.decision_policy = decision_policy or resolve_policy(
            policy.mode, threshold=threshold, prediction=prediction
        )

        self.stats = PrecopyStats()
        self.interval_start = ctx.engine.now
        self._running = False
        self._paused = False
        self._stop_requested = False
        self._wake: Optional[Event] = None
        self._resume: Optional[Event] = None
        #: chunks pre-copied this interval and not re-dirtied yet
        self._pending_clean: Dict[int, Chunk] = {}
        self._wired: set[int] = set()
        #: dirty-candidate index so eligibility scans touch only dirty
        #: chunks, not the whole chunk table (stale entries are dropped
        #: lazily — e.g. chunks cleaned by the coordinated step)
        self._dirty: Dict[int, Chunk] = {}
        self._inflight_chunk: Optional[Chunk] = None
        self._inflight_done: Optional[Event] = None

    # ------------------------------------------------------------------
    # Wiring into chunk dirty events.
    # ------------------------------------------------------------------

    def wire_chunks(self) -> None:
        """Attach dirty observers to every current chunk (idempotent;
        call again after new allocations)."""
        for chunk in self._chunks():
            if chunk.chunk_id in self._wired:
                continue
            chunk.on_dirty.append(self._on_dirty)
            self._wired.add(chunk.chunk_id)
            if chunk.persistent and self._is_dirty(chunk):
                self._dirty[chunk.chunk_id] = chunk

    def _on_dirty(self, chunk: Chunk, now: float) -> None:
        if chunk.persistent:
            self._dirty[chunk.chunk_id] = chunk
        if self.prediction is not None:
            self.prediction.observe(chunk)
        pending = self._pending_clean.pop(chunk.chunk_id, None)
        if pending is not None:
            # a completed pre-copy turned out redundant
            self.stats.redundant_copies += 1
            self.stats.faults_induced += 1
            if self.prediction is not None:
                self.prediction.record_outcome(chunk, was_redundant=True)
        self._kick()

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None

    def adopt_policy(
        self,
        policy: PrecopyPolicy,
        decision_policy: CheckpointPolicy,
        *,
        threshold: Optional[ThresholdEstimator] = None,
        prediction: Optional[PredictionTable] = None,
    ) -> None:
        """Swap the scheduling strategy mid-run (the checkpoint
        engine's hot policy switch).  The copy mechanism — stream,
        transfer fns, incremental extents — is untouched; only the
        when-does-a-chunk-move question changes.  Call between
        intervals (while no copy is in flight for a conflicting
        strategy); the wake kick re-evaluates eligibility immediately.
        """
        self.policy = policy
        self.decision_policy = decision_policy
        self.threshold = threshold
        self.prediction = prediction
        self._kick()

    # ------------------------------------------------------------------
    # Interval lifecycle (driven by the checkpoint coordinator).
    # ------------------------------------------------------------------

    def begin_interval(self) -> None:
        """New compute interval starts now: reset prediction walk,
        settle prediction outcomes for still-clean pre-copies."""
        self.interval_start = self.ctx.engine.now
        for chunk in self._pending_clean.values():
            if self.prediction is not None:
                self.prediction.record_outcome(chunk, was_redundant=False)
        self._pending_clean.clear()
        if self.prediction is not None:
            self.prediction.begin_interval()
        for chunk in self._chunks():
            chunk.begin_interval()
        self._kick()

    def pause(self) -> None:
        """Suspend background copying (entered for the coordinated
        checkpoint so pre-copy does not compete for the bus)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        if self._resume is not None and not self._resume.triggered:
            self._resume.succeed()
            self._resume = None
        self._kick()

    def drain(self):
        """Generator: wait for the in-flight copy (if any) to finish.
        Call after :meth:`pause` so a coordinated step never races a
        background copy of the same chunk."""
        if self._inflight_done is not None:
            yield self._inflight_done

    def stop(self) -> None:
        self._stop_requested = True
        self._kick()
        if self._resume is not None and not self._resume.triggered:
            self._resume.succeed()
            self._resume = None

    # ------------------------------------------------------------------
    # Eligibility.
    # ------------------------------------------------------------------

    def _is_dirty(self, chunk: Chunk) -> bool:
        return chunk.dirty_local if self.stream == "local" else chunk.dirty_remote

    def threshold_time(self) -> float:
        """Absolute time at which delayed pre-copy may start this
        interval.  CPC starts immediately; DCPC/DCPCP never pre-copy
        during the learning interval ('our method waits for the first
        checkpoint step to complete', §IV) — hence +inf until the
        estimator has one observation.  A DCPCP engine without a
        threshold estimator is prediction-gated only."""
        return self.decision_policy.ready_time(self.interval_start)

    def _eligible(self, chunk: Chunk, now: float) -> bool:
        # mechanism checks stay here; the scheduling question is the
        # policy strategy's
        if not chunk.persistent or not self._is_dirty(chunk):
            return False
        if chunk.get_state(self.stream) is not ChunkState.IDLE:
            return False
        clock = IntervalClock(now=now, interval_start=self.interval_start)
        return self.decision_policy.decide(chunk, clock) is Decision.PRECOPY

    def _next_eligible(self, now: float) -> Optional[Chunk]:
        # largest dirty chunk first: big chunks benefit most from being
        # out of the coordinated step (Table IV analysis)
        best: Optional[Chunk] = None
        stale = []
        for cid, chunk in self._dirty.items():
            if not self._is_dirty(chunk):
                stale.append(cid)
                continue
            if self._eligible(chunk, now) and (best is None or chunk.nbytes > best.nbytes):
                best = chunk
        for cid in stale:
            del self._dirty[cid]
        return best

    # ------------------------------------------------------------------
    # Default local-stream transfer.
    # ------------------------------------------------------------------

    def _default_transfer(self, chunk: Chunk) -> Event:
        return self.ctx.copy_to_nvm(chunk.nbytes, tag=self.tag)

    def _default_finalize(self, chunk: Chunk) -> None:
        chunk.stage_to_nvm()

    # ------------------------------------------------------------------
    # Main loop (DES process body).
    # ------------------------------------------------------------------

    def run(self):
        """Generator process: run until :meth:`stop`."""
        if self._running:
            raise SimulationError("pre-copy engine already running")
        self._running = True
        engine = self.ctx.engine
        self.wire_chunks()
        try:
            while not self._stop_requested:
                if self._paused:
                    self._resume = engine.event("precopy.resume")
                    yield self._resume
                    continue
                now = engine.now
                chunk = self._next_eligible(now)
                if chunk is None:
                    # sleep until a dirty event, or until the threshold
                    # boundary if one is pending
                    self._wake = engine.event("precopy.wake")
                    t_thresh = self.threshold_time()
                    waits: List[Event] = [self._wake]
                    if (
                        now < t_thresh < float("inf")
                        and any(self._is_dirty(c) for c in self._dirty.values())
                    ):
                        waits.append(engine.timeout(t_thresh - now))
                    yield engine.any_of(waits)
                    self._wake = None
                    continue
                yield from self._copy_one(chunk)
        finally:
            self._running = False
        return self.stats

    def _copy_one(self, chunk: Chunk):
        fire("precopy.copy.before", chunk=chunk, stream=self.stream)
        copy_start = self.ctx.engine.now
        if BUS.active:
            BUS.emit(
                PolicyDecisionEvent(
                    t=copy_start,
                    actor=self.tag,
                    chunk=chunk.name,
                    decision=Decision.PRECOPY.value,
                    policy=self.decision_policy.name,
                )
            )
        mods_before = chunk.total_mods
        # page-granular mode: move only the extents stale for the
        # in-progress slot (a post-pre-copy re-copy moves just the
        # re-dirtied pages, not the whole chunk)
        extents = chunk.copy_extents("local") if self._incremental else None
        if extents is None:
            nbytes_moved = chunk.nbytes
            pages = pages_of(chunk.nbytes)
        else:
            nbytes_moved = sum(n for _, n in extents)
            pages = sum(pages_of(n) for _, n in extents)
        payload = (
            self._codec.plan_payload(chunk, extents) if self._codec is not None else None
        )
        chunk.set_state(self.stream, ChunkState.PRECOPYING)
        self._inflight_chunk = chunk
        self._inflight_done = self.ctx.engine.event("precopy.inflight")
        cancelled = False
        try:
            if payload is not None:
                yield self.ctx.copy_to_nvm(payload.wire_bytes, tag=self.tag)
            elif extents is None:
                yield self._transfer_fn(chunk)
            else:
                yield self.ctx.copy_to_nvm(nbytes_moved, tag=self.tag)
        except TransferCancelled:
            # a failure tore the flow down; the chunk stays dirty and
            # the engine moves on (it may retry after recovery)
            cancelled = True
        finally:
            chunk.set_state(self.stream, ChunkState.IDLE)
            self._inflight_chunk = None
            self._inflight_done.succeed()
            self._inflight_done = None
        if cancelled:
            self.stats.stale_copies += 1
            return
        fire("precopy.copy.after", chunk=chunk, stream=self.stream)
        self.stats.copies += 1
        wire_bytes = nbytes_moved
        if payload is not None:
            wire_bytes = payload.wire_bytes
            self._codec.account_payload(payload)
        self.stats.bytes_copied += wire_bytes
        # the copy event fires for torn copies too: the bytes *did*
        # move (and count against the stats), the data just stayed
        # stale — replay accounting must see every byte the stats saw
        if BUS.active:
            BUS.emit(
                ChunkCopiedEvent(
                    t=self.ctx.engine.now,
                    actor=self.tag,
                    chunk=chunk.name,
                    nbytes=wire_bytes,
                    start=copy_start,
                    stream=self.stream,
                    phase="precopy",
                    pages=pages,
                    bytes_saved=chunk.nbytes - nbytes_moved,
                    codec=payload.codec if payload is not None else "raw",
                    logical_bytes=nbytes_moved,
                    tenant=self.tenant,
                )
            )
        if chunk.total_mods != mods_before:
            # torn copy: application wrote during the transfer (the
            # stale bits were never cleared, so a retry re-copies)
            self.stats.stale_copies += 1
            if self.prediction is not None:
                self.prediction.record_outcome(chunk, was_redundant=True)
            return
        if extents is None:
            self._finalize_fn(chunk)
        else:
            chunk.stage_to_nvm(extents)
        if payload is not None:
            # digests publish only for copies that actually staged —
            # a torn copy's digests describe content that never landed
            self._codec.publish_payload(chunk, payload)
        chunk.mark_precopied(self.stream)
        self._pending_clean[chunk.chunk_id] = chunk
        fire("precopy.finalize.after", chunk=chunk, stream=self.stream)
