"""Transparent (whole-address-space) checkpointing — the §VIII
generalization.

§II contrasts application-initiated checkpoints (only declared data
structures) with transparent ones (the entire process address space,
no application changes), and §VIII claims the NVM-as-virtual-memory
design "can be generalized to transparent checkpoint mechanisms".
This module is that generalization: a :class:`TransparentCheckpointer`
captures a process's full address space through the same NVM substrate
— shadow regions, two-version commit, restart metadata — with no
Table-III calls from the application.

What the paper warns about falls out measurably: the checkpoint volume
is the address-space size, not the (much smaller) set of live data
structures, and without application knowledge there is no chunk-level
modification schedule to exploit — every checkpoint copies everything
(or pays page-granular fault tracking, the §IV strawman).  The
``bench_transparent.py`` harness quantifies both against the
application-initiated path.
"""

from __future__ import annotations

from typing import List, Optional

from ..alloc.nvmalloc import NVAllocator
from ..config import PrecopyPolicy
from ..errors import CheckpointError
from ..metrics.timeline import Timeline
from ..units import MiB, align_up
from .context import NodeContext
from .engine import CheckpointStats
from .local import LocalCheckpointer

__all__ = ["TransparentCheckpointer"]

#: transparent snapshots are segmented so copies interleave with other
#: bus traffic the way a real pipelined address-space walk would.
SEGMENT_BYTES = 64 * MiB


class TransparentCheckpointer:
    """Checkpoints a whole simulated process address space.

    ``address_space_bytes`` is the process footprint (heap + stacks +
    globals + buffers) — typically a small multiple of the
    application's *declared* checkpoint size, which is exactly the
    paper's argument for the application-initiated approach.
    """

    def __init__(
        self,
        ctx: NodeContext,
        pid: str,
        address_space_bytes: int,
        *,
        two_versions: bool = True,
        page_tracking: bool = False,
        timeline: Optional[Timeline] = None,
    ) -> None:
        if address_space_bytes <= 0:
            raise CheckpointError("address space must be non-empty")
        self.ctx = ctx
        self.pid = pid
        self.address_space_bytes = address_space_bytes
        self.page_tracking = page_tracking
        # the address space is held as phantom segments: transparent
        # checkpointing never knows the application's data structures
        self._alloc = NVAllocator(
            f"{pid}/xparent",
            ctx.nvmm,
            ctx.dram,
            two_versions=two_versions,
            phantom=True,
            clock=lambda: ctx.engine.now,
        )
        n_segments = max(1, align_up(address_space_bytes, SEGMENT_BYTES) // SEGMENT_BYTES)
        seg_size = address_space_bytes // n_segments
        remainder = address_space_bytes - seg_size * n_segments
        self.segments = []
        for i in range(n_segments):
            size = seg_size + (remainder if i == n_segments - 1 else 0)
            seg = self._alloc.nvalloc(f"as_{i:04d}", size)
            seg.page_granular_protection = page_tracking
            self.segments.append(seg)
        # no pre-copy: there is no application modification schedule to
        # learn from; page tracking is the only (costly) alternative
        policy = PrecopyPolicy(
            mode=PrecopyPolicy.NONE,
            granularity="page" if page_tracking else "chunk",
        )
        self._ck = LocalCheckpointer(
            ctx, self._alloc, policy, timeline=timeline, tag=f"{pid}:xparent"
        )
        if page_tracking:
            # incremental transparent checkpointing re-protects the
            # whole space after every snapshot; the next interval's
            # writes then fault per page (the §IV cost)
            self._ck.on_complete.append(self._reprotect)

    def _reprotect(self, stats) -> None:
        for seg in self.segments:
            seg.protected = True

    # ------------------------------------------------------------------
    # The snapshot.
    # ------------------------------------------------------------------

    def mark_activity(self, written_bytes: Optional[int] = None) -> int:
        """Account application execution since the last snapshot: the
        process wrote *written_bytes* somewhere in its address space
        (default: everything — the conservative transparent
        assumption).  Returns protection faults taken (nonzero only
        with page tracking)."""
        if written_bytes is None:
            written_bytes = self.address_space_bytes
        remaining = written_bytes
        faults = 0
        for seg in self.segments:
            if remaining <= 0:
                break
            n = min(seg.nbytes, remaining)
            faults += seg.touch(n)
            remaining -= n
        return faults

    def checkpoint(self, *, blocking: bool = True):
        """Snapshot the full address space.  ``blocking=True`` (the
        default) runs to completion on the context's engine and returns
        :class:`CheckpointStats`; ``blocking=False`` returns the DES
        generator for embedding in a larger simulation."""
        return self._ck.checkpoint(blocking=blocking)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def checkpoint_bytes(self) -> int:
        return self._alloc.checkpoint_bytes

    @property
    def history(self) -> List[CheckpointStats]:
        return self._ck.history

    @property
    def total_bytes_to_nvm(self) -> int:
        return self._ck.total_bytes_to_nvm

    def fault_overhead(self) -> float:
        return self._ck.fault_overhead()
