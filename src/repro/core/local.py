"""Coordinated local checkpoints (§IV/§V): the historical per-rank
checkpointer, now a thin facade over the unified
:class:`~repro.core.engine.CheckpointEngine`.

:class:`LocalCheckpointer` preserves the original constructor surface —
including the legacy ``transfer_fn``/``stage_to_nvm`` parameters, which
it maps onto a :class:`~repro.core.destination.Destination` backend
(:class:`~repro.core.destination.NVMArenaDestination` by default,
:class:`~repro.core.destination.TransferFnDestination` when a custom
data path is injected, e.g. the PFS baseline).  All scheduling,
copy-walk, and commit-ordering logic lives in the engine; the paper's
four modes are :mod:`repro.core.policy` strategies selected by the
config's ``mode``.

``CheckpointStats`` is re-exported here for backward compatibility;
new code should import it from :mod:`repro.core.engine` (or
:mod:`repro.core`).
"""

from __future__ import annotations

from typing import Optional

from ..alloc.nvmalloc import NVAllocator
from ..config import PrecopyPolicy
from ..metrics.timeline import Timeline
from .context import NodeContext
from .destination import NVMArenaDestination, TransferFnDestination
from .engine import CheckpointEngine, CheckpointStats

__all__ = ["LocalCheckpointer", "CheckpointStats"]


class LocalCheckpointer(CheckpointEngine):
    """Per-rank local checkpoint coordinator (facade)."""

    def __init__(
        self,
        ctx: NodeContext,
        allocator: NVAllocator,
        policy: Optional[PrecopyPolicy] = None,
        *,
        destination=None,
        timeline: Optional[Timeline] = None,
        with_checksums: bool = True,
        tag: Optional[str] = None,
        tenant: str = "",
        transfer_fn=None,
        stage_to_nvm: bool = True,
    ) -> None:
        #: legacy override for the coordinated step's data path (e.g.
        #: the PFS baseline writes through the globally shared I/O
        #: resource); superseded by passing a Destination
        self._transfer_fn = transfer_fn
        #: legacy switch: stage into the NVM shadow regions (off for
        #: non-NVM targets); superseded by Destination.two_version
        self._stage_to_nvm = stage_to_nvm
        if destination is not None:
            pass
        elif transfer_fn is not None or not stage_to_nvm:
            destination = TransferFnDestination(
                transfer_fn
                or (lambda chunk: ctx.copy_to_nvm(chunk.nbytes, tag=f"{tag or allocator.pid}:lckpt")),
                ctx,
                allocator,
                stage_to_nvm=stage_to_nvm,
            )
        else:
            destination = NVMArenaDestination(ctx, allocator)
        super().__init__(
            ctx,
            allocator,
            policy,
            destination=destination,
            timeline=timeline,
            with_checksums=with_checksums,
            tag=tag,
            tenant=tenant,
        )
