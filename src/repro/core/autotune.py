"""Online checkpoint tuning (extension).

The paper takes its intervals from Dong et al.'s offline estimates
(30-100 s) and learns the DCPC(P) pre-copy threshold once, from the
first checkpoint interval.  This module closes both loops at runtime:

* :class:`IntervalTuner` estimates the failure rate from *observed*
  failures (exponential MLE with a prior, so the estimate is sane
  before the first failure) and the checkpoint cost from *measured*
  coordinated-step durations, then recommends Young's optimum
  ``I* = sqrt(2 * t_ckpt * MTBF)`` (or Daly's refinement), clamped to
  a configurable band;
* :class:`OnlinePolicyTuner` runs a small bandit (decaying
  epsilon-greedy or UCB1) over the four scheduling-policy modes and
  hot-swaps the :class:`~repro.core.engine.CheckpointEngine` policy
  between intervals, so a nonstationary workload is not stuck with a
  first-interval decision.  It consumes live statistics through the
  trace-bus subscriber API (pre-copy traffic per interval) plus the
  engine's ``on_complete`` stats, and surfaces every switch as an
  ``autotune.switch`` trace event.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from ..config import AutotuneConfig
from ..errors import ConfigError
from ..metrics.trace import BUS, AutotuneSwitchEvent, ChunkCopiedEvent
from ..models.optimal import daly_interval, young_interval

__all__ = ["IntervalTuner", "OnlinePolicyTuner"]


class IntervalTuner:
    """Adaptive checkpoint-interval recommendation."""

    def __init__(
        self,
        initial_interval: float,
        *,
        prior_mtbf: float = 3600.0,
        prior_weight: float = 1.0,
        min_interval: float = 5.0,
        max_interval: float = 600.0,
        smoothing: float = 0.3,
        use_daly: bool = False,
    ) -> None:
        if initial_interval <= 0:
            raise ValueError("initial_interval must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError("need 0 < min_interval <= max_interval")
        self.interval = initial_interval
        self.prior_mtbf = prior_mtbf
        self.prior_weight = prior_weight
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.smoothing = smoothing
        self.use_daly = use_daly
        self._ckpt_cost: Optional[float] = None
        self.failures: List[float] = []
        self._observed_time = 0.0

    # ------------------------------------------------------------------
    # Observations.
    # ------------------------------------------------------------------

    def observe_checkpoint(self, duration: float) -> None:
        """Fold one measured coordinated-checkpoint duration in."""
        if duration <= 0:
            return
        if self._ckpt_cost is None:
            self._ckpt_cost = duration
        else:
            s = self.smoothing
            self._ckpt_cost = s * duration + (1 - s) * self._ckpt_cost

    def observe_failure(self, now: float) -> None:
        """Record a failure at virtual time *now*."""
        self.failures.append(now)
        self._observed_time = max(self._observed_time, now)

    def observe_progress(self, now: float) -> None:
        """Record failure-free progress up to *now* (keeps the MTBF
        estimate honest when nothing goes wrong)."""
        self._observed_time = max(self._observed_time, now)

    # ------------------------------------------------------------------
    # Estimates.
    # ------------------------------------------------------------------

    @property
    def checkpoint_cost(self) -> Optional[float]:
        return self._ckpt_cost

    def mtbf_estimate(self) -> float:
        """Bayesian-flavoured exponential MLE: the prior contributes
        ``prior_weight`` pseudo-failures over ``prior_weight *
        prior_mtbf`` pseudo-time, so the estimate starts at the prior
        and converges to observed elapsed/failures."""
        pseudo_failures = self.prior_weight + len(self.failures)
        pseudo_time = self.prior_weight * self.prior_mtbf + self._observed_time
        return pseudo_time / pseudo_failures

    def recommended_interval(self) -> float:
        """Young/Daly optimum from the current estimates, clamped."""
        if self._ckpt_cost is None:
            return self.interval
        mtbf = self.mtbf_estimate()
        if self.use_daly:
            target = daly_interval(self._ckpt_cost, mtbf)
        else:
            target = young_interval(self._ckpt_cost, mtbf)
        target = min(self.max_interval, max(self.min_interval, target))
        # smooth the applied interval so the schedule does not thrash
        s = self.smoothing
        self.interval = s * target + (1 - s) * self.interval
        return self.interval


class OnlinePolicyTuner:
    """Per-rank bandit over the pre-copy policy modes.

    Each completed checkpoint interval is one bandit pull of the mode
    that ran it.  The pull's cost is

        ``blocking_duration + waste_weight * precopy_bytes / bandwidth``

    — the coordinated step's application stall plus the (weighted) bus
    seconds the background stream spent, so a mode that hides the
    checkpoint *and* a mode that floods the bus both pay their true
    price.  Blocking time comes from the engine's ``on_complete``
    stats; pre-copy traffic is metered live off the trace bus through
    the subscriber API (``chunk.copied`` events from this rank's
    pre-copy actor).

    After folding the cost in, the tuner picks the next interval's arm
    (decaying epsilon-greedy, or UCB1 with ``strategy="ucb"``) and
    hot-swaps the engine via
    :meth:`~repro.core.engine.CheckpointEngine.set_policy`, emitting an
    ``autotune.switch`` trace event.  With ``nudge_margin`` it also
    walks the DCPC threshold margin while a threshold arm is held.

    The tuner only needs ``policy.mode`` / ``set_policy`` /
    ``on_complete`` from its engine, so tests can drive it with a stub.
    """

    def __init__(
        self,
        engine,
        *,
        arms: Sequence[str] = ("none", "cpc", "dcpc", "dcpcp"),
        strategy: str = "epsilon",
        epsilon: float = 0.3,
        epsilon_decay: float = 0.95,
        ucb_c: float = 0.5,
        waste_weight: float = 0.5,
        nudge_margin: bool = False,
        margin_step: float = 0.1,
        seed: int = 0,
        bandwidth: Optional[float] = None,
        bus=BUS,
    ) -> None:
        if strategy not in ("epsilon", "ucb"):
            raise ConfigError(
                f"unknown autotune strategy {strategy!r}; expected 'epsilon' or 'ucb'"
            )
        if not arms:
            raise ConfigError("autotune needs at least one arm")
        self.engine = engine
        self.arms = tuple(arms)
        self.strategy = strategy
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.ucb_c = ucb_c
        self.waste_weight = waste_weight
        self.nudge_margin = nudge_margin
        self.margin_step = margin_step
        self.rng = random.Random(seed)
        self.bus = bus
        if bandwidth is None:
            try:
                bandwidth = engine.ctx.effective_nvm_bw_per_core()
            except AttributeError:
                bandwidth = 1.0
        self.bandwidth = max(1e-9, bandwidth)
        #: the arm the *open* interval is running under
        self.current: str = engine.policy.mode
        self.pulls: Dict[str, int] = {arm: 0 for arm in self.arms}
        self.mean_cost: Dict[str, float] = {arm: 0.0 for arm in self.arms}
        self.intervals_seen = 0
        #: applied switches as (t, from_mode, to_mode) tuples
        self.switches: List[tuple] = []
        self.nudges = 0
        self._interval_precopy_bytes = 0
        self._precopy_actor = f"{getattr(engine, 'tag', 'rank')}:precopy"
        self._subscription = None
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def attach(self) -> "OnlinePolicyTuner":
        """Hook the live run: subscribe to the trace bus and observe
        completed intervals.  Idempotent pairing with :meth:`detach`."""
        if self._attached:
            return self
        self._subscription = self.bus.subscribe(
            self._on_trace_event, kinds=("chunk.copied",)
        )
        self.engine.on_complete.append(self._on_interval_complete)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        if self._subscription is not None:
            self.bus.unsubscribe(self._subscription)
            self._subscription = None
        try:
            self.engine.on_complete.remove(self._on_interval_complete)
        except ValueError:
            pass
        self._attached = False

    # ------------------------------------------------------------------
    # Live statistics.
    # ------------------------------------------------------------------

    def _on_trace_event(self, event) -> None:
        if (
            isinstance(event, ChunkCopiedEvent)
            and event.phase == "precopy"
            and event.actor == self._precopy_actor
        ):
            self._interval_precopy_bytes += event.nbytes

    def _now(self) -> float:
        try:
            return self.engine.ctx.engine.now
        except AttributeError:
            return float(self.intervals_seen)

    def interval_cost(self, stats) -> float:
        """The closing interval's bandit cost (see class docstring)."""
        waste_s = self._interval_precopy_bytes / self.bandwidth
        return stats.duration + self.waste_weight * waste_s

    # ------------------------------------------------------------------
    # The bandit.
    # ------------------------------------------------------------------

    def observe(self, arm: str, cost: float) -> None:
        """Fold one pull's cost into the arm's running mean."""
        if arm not in self.pulls:
            self.pulls[arm] = 0
            self.mean_cost[arm] = 0.0
        n = self.pulls[arm] + 1
        self.pulls[arm] = n
        self.mean_cost[arm] += (cost - self.mean_cost[arm]) / n

    def choose(self) -> str:
        """Pick the next interval's arm."""
        unseen = [a for a in self.arms if self.pulls.get(a, 0) == 0]
        if unseen:
            # forced first tour: every arm gets one pull before the
            # exploit/explore trade-off starts
            return unseen[0]
        if self.strategy == "epsilon":
            if self.rng.random() < self.epsilon:
                return self.rng.choice(self.arms)
            return min(self.arms, key=lambda a: self.mean_cost[a])
        # UCB1 on costs: optimism = subtract the confidence radius
        total = max(1, sum(self.pulls[a] for a in self.arms))
        return min(
            self.arms,
            key=lambda a: self.mean_cost[a]
            - self.ucb_c * math.sqrt(2.0 * math.log(total) / self.pulls[a]),
        )

    # ------------------------------------------------------------------
    # Interval boundary: update, maybe switch, maybe nudge.
    # ------------------------------------------------------------------

    def _on_interval_complete(self, stats) -> None:
        cost = self.interval_cost(stats)
        self._interval_precopy_bytes = 0
        arm = self.current
        self.observe(arm, cost)
        self.intervals_seen += 1
        self.epsilon *= self.epsilon_decay
        nxt = self.choose()
        now = self._now()
        if nxt != arm:
            self.engine.set_policy(nxt)
            self.current = nxt
            self.switches.append((now, arm, nxt))
            if self.bus.active:
                self.bus.emit(
                    AutotuneSwitchEvent(
                        t=now,
                        actor=str(getattr(self.engine, "tag", "tuner")),
                        from_policy=arm,
                        to_policy=nxt,
                        reason="bandit",
                        reward=-cost,
                    )
                )
        elif self.nudge_margin:
            self._maybe_nudge(arm, cost, now)

    def _maybe_nudge(self, arm: str, cost: float, now: float) -> None:
        threshold = getattr(self.engine, "threshold", None)
        if threshold is None or not getattr(
            self.engine.decision_policy, "needs_threshold", False
        ):
            return
        # costlier-than-usual interval: start pre-copy earlier (larger
        # margin inflates T_c, pulling T_p forward); cheaper: back off
        delta = self.margin_step if cost > self.mean_cost[arm] else -self.margin_step
        before = threshold.margin
        after = threshold.nudge_margin(delta)
        if after != before:
            self.nudges += 1
            if self.bus.active:
                self.bus.emit(
                    AutotuneSwitchEvent(
                        t=now,
                        actor=str(getattr(self.engine, "tag", "tuner")),
                        from_policy=arm,
                        to_policy=arm,
                        reason="nudge",
                        reward=-cost,
                    )
                )

    # ------------------------------------------------------------------
    # Construction from config.
    # ------------------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        engine,
        config: AutotuneConfig,
        *,
        seed_offset: int = 0,
        bandwidth: Optional[float] = None,
    ) -> "OnlinePolicyTuner":
        return cls(
            engine,
            arms=config.arms,
            strategy=config.strategy,
            epsilon=config.epsilon,
            epsilon_decay=config.epsilon_decay,
            ucb_c=config.ucb_c,
            waste_weight=config.waste_weight,
            nudge_margin=config.nudge_margin,
            margin_step=config.margin_step,
            seed=config.seed + seed_offset,
            bandwidth=bandwidth,
        )
