"""Online checkpoint-interval tuning (extension).

The paper takes its intervals from Dong et al.'s offline estimates
(30-100 s).  This component closes the loop at runtime: it estimates
the failure rate from *observed* failures (exponential MLE with a
prior, so the estimate is sane before the first failure) and the
checkpoint cost from *measured* coordinated-step durations, then
recommends Young's optimum ``I* = sqrt(2 * t_ckpt * MTBF)`` (or Daly's
refinement), clamped to a configurable band.

Use it standalone or wire ``observe_checkpoint`` /
``observe_failure`` into a run loop and re-read
``recommended_interval()`` each interval.
"""

from __future__ import annotations

from typing import List, Optional

from ..models.optimal import daly_interval, young_interval

__all__ = ["IntervalTuner"]


class IntervalTuner:
    """Adaptive checkpoint-interval recommendation."""

    def __init__(
        self,
        initial_interval: float,
        *,
        prior_mtbf: float = 3600.0,
        prior_weight: float = 1.0,
        min_interval: float = 5.0,
        max_interval: float = 600.0,
        smoothing: float = 0.3,
        use_daly: bool = False,
    ) -> None:
        if initial_interval <= 0:
            raise ValueError("initial_interval must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError("need 0 < min_interval <= max_interval")
        self.interval = initial_interval
        self.prior_mtbf = prior_mtbf
        self.prior_weight = prior_weight
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.smoothing = smoothing
        self.use_daly = use_daly
        self._ckpt_cost: Optional[float] = None
        self.failures: List[float] = []
        self._observed_time = 0.0

    # ------------------------------------------------------------------
    # Observations.
    # ------------------------------------------------------------------

    def observe_checkpoint(self, duration: float) -> None:
        """Fold one measured coordinated-checkpoint duration in."""
        if duration <= 0:
            return
        if self._ckpt_cost is None:
            self._ckpt_cost = duration
        else:
            s = self.smoothing
            self._ckpt_cost = s * duration + (1 - s) * self._ckpt_cost

    def observe_failure(self, now: float) -> None:
        """Record a failure at virtual time *now*."""
        self.failures.append(now)
        self._observed_time = max(self._observed_time, now)

    def observe_progress(self, now: float) -> None:
        """Record failure-free progress up to *now* (keeps the MTBF
        estimate honest when nothing goes wrong)."""
        self._observed_time = max(self._observed_time, now)

    # ------------------------------------------------------------------
    # Estimates.
    # ------------------------------------------------------------------

    @property
    def checkpoint_cost(self) -> Optional[float]:
        return self._ckpt_cost

    def mtbf_estimate(self) -> float:
        """Bayesian-flavoured exponential MLE: the prior contributes
        ``prior_weight`` pseudo-failures over ``prior_weight *
        prior_mtbf`` pseudo-time, so the estimate starts at the prior
        and converges to observed elapsed/failures."""
        pseudo_failures = self.prior_weight + len(self.failures)
        pseudo_time = self.prior_weight * self.prior_mtbf + self._observed_time
        return pseudo_time / pseudo_failures

    def recommended_interval(self) -> float:
        """Young/Daly optimum from the current estimates, clamped."""
        if self._ckpt_cost is None:
            return self.interval
        mtbf = self.mtbf_estimate()
        if self.use_daly:
            target = daly_interval(self._ckpt_cost, mtbf)
        else:
            target = young_interval(self._ckpt_cost, mtbf)
        target = min(self.max_interval, max(self.min_interval, target))
        # smooth the applied interval so the schedule does not thrash
        s = self.smoothing
        self.interval = s * target + (1 - s) * self.interval
        return self.interval
