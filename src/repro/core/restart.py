"""Restart/recovery (§V restart component).

Two paths, matching the failure model of §III:

* **local restart** (soft failure — process/OS crash, node survives):
  rebuild the process from its node-local NVM metadata, verify each
  committed chunk's checksum, and load the data back into fresh DRAM
  working copies.  Chunks that fail verification (or never committed
  locally) are fetched from the buddy's remote copy.
* **remote restart** (hard failure — node unusable, local NVM
  inaccessible): rebuild the whole process on a replacement node
  entirely from the buddy's committed remote versions via RDMA reads.

Timing: NVM reads are near-DRAM speed (Table I) but still flow through
the node's NVM bus; remote fetches ride the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..alloc.nvmalloc import NVAllocator
from ..errors import (
    AllReplicasLost,
    ChecksumMismatch,
    NoCheckpointAvailable,
    TransferFailed,
)
from ..faults.crashpoints import fire
from ..metrics import timeline as tl
from ..metrics.timeline import Timeline
from ..net.interconnect import Fabric
from ..net.rdma import rdma_get
from .codec import BlockStore, block_digests
from .context import NodeContext
from .remote import RemoteTarget

__all__ = ["RestartManager", "RestartReport"]


@dataclass
class RestartReport:
    """What one restart did."""

    pid: str
    start: float = 0.0
    end: float = 0.0
    chunks_local: int = 0
    #: of chunks_local, how many stayed NVM-resident (lazy restart)
    chunks_lazy: int = 0
    chunks_remote: int = 0
    bytes_local: int = 0
    bytes_remote: int = 0
    #: bytes read for checksum verification of local committed
    #: versions (both eager and lazy paths pay this read)
    bytes_verified: int = 0
    #: content blocks checked against a codec block store's digest map
    #: (0 when no store was provided — the raw path)
    blocks_verified: int = 0
    #: of blocks_verified, how many did not match (each one also lands
    #: the chunk in corrupted_chunks or aborts the fetch)
    digest_failures: int = 0
    corrupted_chunks: List[str] = field(default_factory=list)
    allocator: Optional[NVAllocator] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class RestartManager:
    """Rebuilds processes after failures."""

    def __init__(
        self,
        ctx: NodeContext,
        *,
        fabric: Optional[Fabric] = None,
        node_id: Optional[int] = None,
        timeline: Optional[Timeline] = None,
        resilience=None,
        fetch_extent_bytes: Optional[int] = None,
    ) -> None:
        self.ctx = ctx
        self.fabric = fabric
        self.node_id = node_id
        self.timeline = timeline
        #: optional ResilientTransport: remote fetches retry/back off
        #: instead of failing on the first cancelled flow
        self.resilience = resilience
        #: when set, remote fetches move in page-aligned segments of at
        #: most this many bytes (extent-granular restart); ``None``
        #: keeps the one-transfer-per-chunk behaviour
        self.fetch_extent_bytes = fetch_extent_bytes

    def _check_digests(
        self,
        store: Optional[BlockStore],
        name: str,
        slot: int,
        data,
        offset: int,
        report: RestartReport,
    ) -> bool:
        """Decode-on-read verification: compare the blake2b block
        digests of *data* (a byte range starting at *offset* within the
        chunk) against the store's committed digest map for ``(name,
        slot)``.  Blocks the map never recorded (digest 0) are skipped;
        unaligned ranges and absent maps verify trivially."""
        if store is None or slot < 0 or offset % store.block:
            return True
        expect = store.slot_digests(name, slot)
        if expect is None:
            return True
        got = block_digests(data, store.block)
        b0 = offset // store.block
        hi = min(len(expect), b0 + len(got))
        if hi <= b0:
            return True
        exp = expect[b0:hi]
        got = got[: hi - b0]
        known = exp != 0
        report.blocks_verified += int(known.sum())
        failed = int((got[known] != exp[known]).sum())
        report.digest_failures += failed
        return failed == 0

    def _fetch_segments(self, nbytes: int) -> List[tuple]:
        """Split one chunk fetch into ``(offset, nbytes)`` segments."""
        seg = self.fetch_extent_bytes
        if seg is None or seg <= 0 or seg >= nbytes:
            return [(0, nbytes)]
        out = []
        off = 0
        while off < nbytes:
            n = min(seg, nbytes - off)
            out.append((off, n))
            off += n
        return out

    def _rfetch(self, remote_target, remote_node: int, nbytes: int, tag: str):
        """One remote fetch, resilient when a transport is attached."""
        if self.resilience is not None:
            yield from self.resilience.get(
                self.fabric,
                remote_node,
                self.node_id,
                nbytes,
                tag=tag,
                src_nvm_bus=remote_target.dst_ctx.nvm_bus,
            )
            return
        yield rdma_get(
            self.fabric,
            remote_node,
            self.node_id,
            nbytes,
            tag=tag,
            src_nvm_bus=remote_target.dst_ctx.nvm_bus,
        )

    # ------------------------------------------------------------------
    # Soft failure: restart from local NVM, remote as fallback.
    # ------------------------------------------------------------------

    def restart_process(
        self,
        pid: str,
        *,
        remote_target: Optional[RemoteTarget] = None,
        remote_node: Optional[int] = None,
        two_versions: bool = True,
        clock=None,
        lazy: bool = False,
        block_store: Optional[BlockStore] = None,
    ):
        """Generator process: local restart of *pid*.

        Chunks whose committed local version verifies are read back
        from node NVM; the rest fall back to the buddy (requires
        ``remote_target`` + ``remote_node`` + a fabric).  Returns a
        :class:`RestartReport` with the rebuilt allocator attached.

        With *block_store* (a checkpoint made through the payload codec
        layer), the store's staged state is first discarded and its
        refcount index rebuilt from the durable slot maps, then every
        real chunk's committed bytes are additionally verified against
        the committed digest map — a digest mismatch falls back to the
        buddy exactly like a checksum mismatch.

        With ``lazy=True`` (the §IV shadow-buffer read path / §VIII
        recovery optimization), verified chunks are *not* copied back:
        they stay NVM-resident, the application reads them in place at
        near-DRAM speed, and each chunk migrates to DRAM on its first
        write.  Restart time then covers only verification, and the
        copy cost is spread over the first compute interval.
        """
        engine = self.ctx.engine
        report = RestartReport(pid=pid, start=engine.now)
        if self.timeline is not None:
            self.timeline.begin(pid, tl.RESTART, engine.now)
        try:
            alloc = NVAllocator.restart(
                pid,
                self.ctx.nvmm,
                self.ctx.dram,
                two_versions=two_versions,
                clock=clock or (lambda: engine.now),
                load_data=False,
            )
            fire(
                "restart.begin",
                pid=pid,
                allocator=alloc,
                store=self.ctx.nvmm.store,
            )
            if block_store is not None:
                # a crash may have left a torn index (codec.store.
                # commit.mid): the slot maps are the durable truth
                block_store.rebuild()
            for chunk in alloc.persistent_chunks():
                ok = chunk.committed_version >= 0 and chunk.verify_checksum()
                if ok and block_store is not None and not chunk.phantom:
                    ok = self._check_digests(
                        block_store,
                        chunk.name,
                        chunk.committed_version,
                        chunk.committed_region().read(0, chunk.nbytes),
                        0,
                        report,
                    )
                if ok:
                    # the checksum verification reads the committed
                    # version once on either path; NVM reads run ~4x
                    # the write rate (Table I), charged on the bus
                    yield self.ctx.nvm_bus.transfer(
                        chunk.nbytes / 4, tag=f"{pid}:restart-verify"
                    )
                    report.bytes_verified += chunk.nbytes
                    if lazy:
                        chunk.restore_lazy()
                        # NVM-resident too: protected, so the first
                        # write faults and migrates the data to DRAM
                        chunk.protected = True
                        report.chunks_lazy += 1
                    else:
                        yield self.ctx.nvm_bus.transfer(
                            chunk.nbytes, tag=f"{pid}:restart"
                        )
                        chunk.restore_from_committed()
                        # DRAM now equals the committed version: clean
                        # for the local stream, protected so the next
                        # write faults; the remote copy may be stale,
                        # so leave the remote bit dirty
                        chunk.dirty_local = False
                        chunk.protected = True
                        report.bytes_local += chunk.nbytes
                    report.chunks_local += 1
                    fire("restart.chunk.verified", chunk=chunk, pid=pid)
                    continue
                if chunk.committed_version >= 0:
                    report.corrupted_chunks.append(chunk.name)
                yield from self._fetch_remote(chunk, pid, remote_target, remote_node, report)
            report.allocator = alloc
            fire("restart.done", pid=pid, allocator=alloc)
        finally:
            if self.timeline is not None:
                self.timeline.end(pid, tl.RESTART, engine.now)
        report.end = engine.now
        return report

    def _fetch_remote(self, chunk, pid, remote_target, remote_node, report):
        if remote_target is None or self.fabric is None or remote_node is None or self.node_id is None:
            raise AllReplicasLost(
                f"chunk {chunk.name!r} of {pid!r} has no usable local version and "
                "no remote target was provided",
                pid=pid,
                chunk=chunk.name,
                tried=("local",),
            )
        if chunk.name not in remote_target.committed or remote_target.committed[chunk.name] < 0:
            raise AllReplicasLost(
                f"chunk {chunk.name!r} of {pid!r} is not committed on the buddy either",
                pid=pid,
                chunk=chunk.name,
                tried=("local", "buddy"),
            )
        fire("restart.fetch_remote", chunk=chunk, pid=pid)
        if not chunk.phantom and (chunk.dram is None or len(chunk.dram) != chunk.nbytes):
            chunk.dram = np.zeros(chunk.nbytes, dtype=np.uint8)
        for off, n in self._fetch_segments(chunk.nbytes):
            try:
                yield from self._rfetch(
                    remote_target, remote_node, n, tag=f"{pid}:rfetch"
                )
            except TransferFailed as exc:
                raise AllReplicasLost(
                    f"chunk {chunk.name!r} of {pid!r}: local copy unusable and the "
                    f"buddy fetch gave up after {exc.attempts} attempts",
                    pid=pid,
                    chunk=chunk.name,
                    tried=("local", "buddy"),
                ) from exc
            payload = remote_target.fetch(chunk.name, off, n)
            if not chunk.phantom:
                # decode-on-read: a codec-era buddy copy carries a digest
                # map; each fetched range must prove its identity before
                # it is trusted as recovery state
                if not self._check_digests(
                    remote_target.block_store,
                    chunk.name,
                    remote_target.committed.get(chunk.name, -1),
                    payload,
                    off,
                    report,
                ):
                    raise ChecksumMismatch(
                        f"chunk {chunk.name!r} of {pid!r}: buddy fetch range "
                        f"[{off}, {off + n}) failed block-digest verification",
                        chunk_id=chunk.chunk_id,
                    )
                chunk.dram[off : off + n] = payload
        # the recovered data is not yet persisted locally: dirty it so
        # the next local checkpoint re-establishes the local copy
        chunk.dirty_local = True
        chunk.dirty_remote = False
        report.chunks_remote += 1
        report.bytes_remote += chunk.nbytes

    def restart_process_sync(self, pid: str, **kwargs) -> RestartReport:
        """Run :meth:`restart_process` on this context's own engine."""
        proc = self.ctx.engine.process(self.restart_process(pid, **kwargs), name=f"{pid}:restart")
        self.ctx.engine.run()
        return proc.value

    # ------------------------------------------------------------------
    # Hard failure: rebuild on a replacement node from the buddy only.
    # ------------------------------------------------------------------

    def restart_from_remote(
        self,
        pid: str,
        remote_target: RemoteTarget,
        remote_node: int,
        *,
        two_versions: bool = True,
        phantom: bool = False,
        clock=None,
    ):
        """Generator process: rebuild *pid* on this (replacement) node
        purely from the buddy's committed copies.  Returns a
        :class:`RestartReport`; every chunk counts as remote."""
        engine = self.ctx.engine
        report = RestartReport(pid=pid, start=engine.now)
        if self.fabric is None or self.node_id is None:
            raise NoCheckpointAvailable("remote restart requires a fabric and node id")
        if self.timeline is not None:
            self.timeline.begin(pid, tl.RESTART, engine.now)
        try:
            names = remote_target.committed_chunks()
            if not names:
                raise AllReplicasLost(
                    f"buddy holds no committed chunks for {pid!r}",
                    pid=pid,
                    tried=("buddy",),
                )
            alloc = NVAllocator(
                pid,
                self.ctx.nvmm,
                self.ctx.dram,
                two_versions=two_versions,
                phantom=phantom,
                clock=clock or (lambda: engine.now),
            )
            fire(
                "restart.begin",
                pid=pid,
                allocator=alloc,
                store=self.ctx.nvmm.store,
            )
            for name in names:
                size = remote_target.sizes[name]
                chunk = alloc.nvalloc(name, size, pflag=True)
                fire("restart.fetch_remote", chunk=chunk, pid=pid)
                for off, n in self._fetch_segments(size):
                    try:
                        yield from self._rfetch(
                            remote_target, remote_node, n, tag=f"{pid}:rfetch"
                        )
                    except TransferFailed as exc:
                        raise AllReplicasLost(
                            f"chunk {name!r} of {pid!r}: node is dead and the buddy "
                            f"fetch gave up after {exc.attempts} attempts",
                            pid=pid,
                            chunk=name,
                            tried=("buddy",),
                        ) from exc
                    payload = remote_target.fetch(name, off, n)
                    if not chunk.phantom:
                        chunk.write(off, payload)
                    else:
                        chunk.touch(n, offset=off)
                report.chunks_remote += 1
                report.bytes_remote += size
            report.allocator = alloc
            fire("restart.done", pid=pid, allocator=alloc)
        finally:
            if self.timeline is not None:
                self.timeline.end(pid, tl.RESTART, engine.now)
        report.end = engine.now
        return report
